"""Indexed query processing: interval tree + LSH + hybrid (Sec. VI).

This example builds a larger repository, indexes it with the hybrid strategy,
and compares the four query-processing modes of Table VIII on wall-clock time
and candidate-set size.  It demonstrates the key structural property of the
design: the interval tree prunes candidates *without* changing the result,
while LSH prunes harder at a small risk of missing candidates.

Run with::

    python examples/indexed_search_at_scale.py
"""

from __future__ import annotations

import time

from repro.charts import render_chart_for_table
from repro.data import CorpusConfig, DataRepository, filter_line_chart_records, generate_corpus
from repro.fcm import FCMConfig, FCMModel, FCMScorer
from repro.index import HybridQueryProcessor, LSHConfig


def main() -> None:
    print("== Building a repository of candidate tables ==")
    records = filter_line_chart_records(
        generate_corpus(CorpusConfig(num_records=80, min_rows=100, max_rows=200, seed=21))
    )
    repository = DataRepository([r.table for r in records])
    print(f"   {len(repository)} tables")

    print("== Encoding tables and building the indexes ==")
    config = FCMConfig(embed_dim=16, num_layers=1, data_segment_size=32, beta=2,
                       max_data_segments=4)
    scorer = FCMScorer(FCMModel(config))
    processor = HybridQueryProcessor(scorer, lsh_config=LSHConfig(num_bits=10, hamming_radius=1))
    start = time.perf_counter()
    stats = processor.index_repository(repository.tables)
    print(f"   encoded + indexed {stats.num_tables} tables in {time.perf_counter() - start:.1f}s "
          f"(interval tree {stats.interval_seconds:.2f}s, LSH {stats.lsh_seconds:.2f}s)")

    query_record = records[5]
    chart = render_chart_for_table(
        query_record.table,
        list(query_record.spec.y_columns),
        x_column=query_record.spec.x_column,
        spec=config.chart_spec,
    )
    print(f"== Query chart from {query_record.table.table_id} ({chart.num_lines} lines) ==")

    print(f"   {'strategy':<10s} {'candidates':>10s} {'time (s)':>10s} {'top-1':>16s}")
    reference_top = None
    for strategy in ("none", "interval", "lsh", "hybrid"):
        result = processor.query(chart, k=5, strategy=strategy)
        top1 = result.ranking[0][0] if result.ranking else "-"
        if strategy == "none":
            reference_top = set(result.top_k_ids(5))
        print(f"   {strategy:<10s} {result.candidates:>10d} {result.seconds:>10.3f} {top1:>16s}")

    interval_result = processor.query(chart, k=5, strategy="interval")
    assert set(interval_result.top_k_ids(5)) == reference_top, (
        "the interval tree must not change the retrieved set"
    )
    print("   interval-tree results verified identical to the linear scan")


if __name__ == "__main__":
    main()
