"""Serving: a long-lived, mutable, persistent chart-query index.

Where ``indexed_search_at_scale.py`` treats the hybrid index as a one-shot
batch build, this example runs it as a *service* (``repro.serving``):

1. train a small FCM and build a :class:`SearchService` over a repository,
   fanning table encoding across worker processes when CPUs allow;
2. serve queries — candidate verification runs on a persistent process-level
   worker pool (``query_workers``), and the second hit of the same chart
   comes from the LRU result cache;
3. mutate the live index: add newly arrived tables, retire old ones —
   no rebuild, results identical to one (the worker pool receives only the
   diff);
4. snapshot the index to disk, append the post-mutation delta as an
   append-only segment (O(delta), not O(index)), compact, and restart from
   it without re-encoding a single table.

Run with::

    PYTHONPATH=src python examples/serving.py

``REPRO_SERVING_EPOCHS`` overrides the training budget (CI runs this script
with 1 epoch so the serving path cannot rot).
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from pathlib import Path

from repro.charts import render_chart_for_table
from repro.data import CorpusConfig, filter_line_chart_records, generate_corpus
from repro.fcm import FCMConfig, TrainerConfig, train_fcm
from repro.index import LSHConfig
from repro.serving import SearchService, ServingConfig


def main() -> None:
    print("== 1. Corpus + a small trained FCM ==")
    records = filter_line_chart_records(
        generate_corpus(CorpusConfig(num_records=50, min_rows=100, max_rows=200, seed=11))
    )
    train_records = records[:24]
    epochs = int(os.environ.get("REPRO_SERVING_EPOCHS", "3"))
    config = FCMConfig()
    model, history, _ = train_fcm(
        train_records,
        config=config,
        trainer_config=TrainerConfig(epochs=epochs, batch_size=8, num_negatives=3),
    )
    print(f"   trained {epochs} epochs, final loss {history.final_loss:.3f}")

    print("== 2. Building the service (sharded encode when CPUs allow) ==")
    initial, arriving = records[:40], records[40:]
    workers = min(4, multiprocessing.cpu_count())
    service = SearchService(
        model,
        ServingConfig(lsh_config=LSHConfig(num_bits=10, hamming_radius=1),
                      num_workers=workers, build_timeout=300.0,
                      query_workers=max(2, workers), worker_timeout=300.0),
    )
    start = time.perf_counter()
    service.build([r.table for r in initial])
    report = service.last_shard_report
    mode = (
        f"{report.num_workers} worker processes"
        if report is not None and report.used_processes
        else "in-process"
    )
    print(f"   indexed {service.num_tables} tables in "
          f"{time.perf_counter() - start:.1f}s ({mode})")

    print("== 3. Serving queries (cold, then cached) ==")
    query_record = initial[5]
    chart = render_chart_for_table(
        query_record.table,
        list(query_record.spec.y_columns),
        x_column=query_record.spec.x_column,
        spec=config.chart_spec,
    )
    cold = service.query(chart, k=5)
    warm = service.query(chart, k=5)
    verify_mode = (
        f"worker pool ({service.config.query_workers} processes)"
        if service.stats.worker_queries
        else f"in-process ({service.worker_fallback_reason or 'pool not used'})"
    )
    print(f"   cold {cold.seconds * 1e3:.1f}ms over {cold.candidates} candidates "
          f"via {verify_mode}; warm query served from cache "
          f"(hits={service.stats.per_strategy['hybrid'].cache_hits})")
    print(f"   top-3: {[table_id for table_id, _ in cold.ranking[:3]]}")

    print("== 4. Snapshot the running index ==")
    tmp_dir = tempfile.TemporaryDirectory()
    snapshot = service.save_index(Path(tmp_dir.name) / "index.npz")
    base_kb = Path(snapshot).stat().st_size / 1024
    print(f"   base snapshot {base_kb:.0f} KiB ({service.num_tables} tables)")

    print("== 5. Mutating the live index ==")
    service.add_tables([r.table for r in arriving])
    retired = [initial[1].table.table_id, initial[2].table.table_id]
    service.remove_tables(retired)
    after = service.query(chart, k=5)
    print(f"   +{len(arriving)} tables, -{len(retired)} tables -> "
          f"{service.num_tables} live, result cache invalidated "
          f"({after.candidates} candidates now); worker pool synced the diff")

    print("== 6. Append-only snapshot delta + restart without re-encoding ==")
    with tmp_dir:
        segment = service.save_index(snapshot, append=True)
        seg_kb = Path(segment).stat().st_size / 1024
        print(f"   delta segment {Path(segment).name}: {seg_kb:.1f} KiB "
              f"(vs {base_kb:.0f} KiB base — O(delta), the base was not rewritten)")
        compacted = SearchService.compact_snapshot(snapshot)
        start = time.perf_counter()
        restarted = SearchService.load_index(model, compacted)
        load_seconds = time.perf_counter() - start
        again = restarted.query(chart, k=5)
        assert [t for t, _ in again.ranking] == [t for t, _ in after.ranking], (
            "restarted service must rank identically"
        )
        print(f"   compacted + restored {restarted.num_tables} tables "
              f"in {load_seconds * 1e3:.0f}ms; rankings identical")

    service.close()  # release the query worker pool

    print("== 7. Service statistics ==")
    for strategy, stats in service.stats.summary().items():
        print(f"   {strategy:<8s} queries={stats['queries']} "
              f"cache_hits={stats['cache_hits']} "
              f"mean={stats['mean_seconds'] * 1e3:.1f}ms "
              f"candidates~{stats['mean_candidates']:.0f}")
    print(f"   worker-pool queries={service.stats.worker_queries} "
          f"fallbacks={service.stats.worker_fallbacks}")


if __name__ == "__main__":
    main()
