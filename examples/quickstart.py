"""Quickstart: train a small FCM and discover datasets from a line chart query.

This script walks through the full pipeline of the paper on a synthetic
corpus sized for a laptop:

1. generate a Plotly-like corpus of (table, visualization spec) records;
2. train FCM on the training split;
3. render a line chart query from a held-out table;
4. rank every table in the repository and print the top matches.

Run with::

    PYTHONPATH=src python examples/quickstart.py

``REPRO_QUICKSTART_EPOCHS`` overrides the training budget (CI runs this
script with 2 epochs on every push so the README's quickstart cannot rot).
"""

from __future__ import annotations

import os
import time

from repro.charts import render_chart_for_table
from repro.data import CorpusConfig, DataRepository, filter_line_chart_records, generate_corpus
from repro.fcm import FCMConfig, FCMScorer, TrainerConfig, train_fcm


def main() -> None:
    print("== 1. Generating a synthetic Plotly-like corpus ==")
    records = filter_line_chart_records(
        generate_corpus(CorpusConfig(num_records=40, min_rows=100, max_rows=200, seed=42))
    )
    train_records, query_records = records[:28], records[28:34]
    print(f"   {len(records)} line-chart records: {len(train_records)} train, "
          f"{len(query_records)} held out for queries")

    print("== 2. Training FCM (scaled configuration) ==")
    config = FCMConfig()  # 32-dim, 2-layer transformers; see FCMConfig for knobs
    epochs = int(os.environ.get("REPRO_QUICKSTART_EPOCHS", "8"))
    start = time.perf_counter()
    model, history, _ = train_fcm(
        train_records,
        config=config,
        trainer_config=TrainerConfig(epochs=epochs, batch_size=8, num_negatives=3),
        aggregated_fraction=0.5,
    )
    print(f"   trained for {len(history.epochs)} epochs in {time.perf_counter() - start:.0f}s; "
          f"final loss {history.final_loss:.3f}")

    print("== 3. Indexing the repository ==")
    repository = DataRepository([r.table for r in records])
    scorer = FCMScorer(model)
    scorer.index_repository(repository)
    print(f"   {len(repository)} candidate tables encoded")

    print("== 4. Querying with a line chart from a held-out table ==")
    query_record = query_records[0]
    chart = render_chart_for_table(
        query_record.table,
        list(query_record.spec.y_columns),
        x_column=query_record.spec.x_column,
        spec=config.chart_spec,
    )
    print(f"   query chart has {chart.num_lines} line(s); "
          f"true source table is {query_record.table.table_id}")

    top = scorer.rank(chart, k=5)
    print("   top-5 retrieved tables:")
    for rank, (table_id, score) in enumerate(top, start=1):
        marker = "  <-- source table" if table_id == query_record.table.table_id else ""
        print(f"     {rank}. {table_id:<14s} relevance={score:.3f}{marker}")


if __name__ == "__main__":
    main()
