"""HTTP serving: the search service behind a network boundary.

Where ``serving.py`` drives :class:`~repro.serving.SearchService` as a
Python object, this example runs it the way an operator would deploy it —
behind the stdlib-only HTTP front-end (``repro.serving.http``) — and walks
the full client surface:

1. boot a :class:`~repro.serving.http.server.ChartSearchServer` over a demo
   corpus on an ephemeral loopback port;
2. ``POST /query`` a chart's underlying data as JSON and read the ranking
   back — then verify it is **byte-identical** to the in-process answer;
3. mutate the live index over the wire (``POST /tables``,
   ``DELETE /tables/<id>``) and snapshot it (``POST /snapshot``);
4. saturate the admission bound and watch overload degrade to immediate
   **429 + Retry-After** responses — never hangs, never 5xx;
5. read the operator's view (``GET /healthz``, ``GET /metrics``) and shut
   down with a graceful drain.

Run with::

    PYTHONPATH=src python examples/http_serving.py

Everything is loopback and ephemeral; nothing listens beyond the script's
lifetime.  For a long-running server use ``python -m repro.serving.http``,
and for sustained load numbers see ``benchmarks/load_gen.py``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.serving import ChartSearchServer, HTTPServingConfig
from repro.serving.http.demo import build_demo_service, demo_query_payloads
from repro.serving.http.protocol import table_payload_from_table
from repro.data import Column, Table

import numpy as np


def call(url: str, method: str = "GET", body: dict | None = None):
    """One JSON request → (status, parsed body); 4xx/5xx are not raised."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    print("== 1. Boot a demo server (untrained model, 30 tables) ==")
    service, records = build_demo_service(num_tables=30, seed=7)
    server = ChartSearchServer(
        service,
        HTTPServingConfig(port=0, max_inflight=2, close_service=False),
    ).start()
    base = server.url
    print(f"   serving {service.num_tables} tables at {base}")
    status, health = call(f"{base}/healthz")
    print(f"   GET /healthz -> {status} {health}")

    print("== 2. POST /query, and parity with the in-process service ==")
    payload = demo_query_payloads(records, limit=1)[0]
    status, body = call(f"{base}/query", "POST", {"chart": payload, "k": 5})
    print(f"   status {status}; top-3 of {len(body['ranking'])}:")
    for table_id, score in body["ranking"][:3]:
        print(f"     {table_id}  {score:.6f}")
    from repro.serving.http.protocol import parse_chart_payload

    chart = parse_chart_payload(payload, service.model.config.chart_spec)
    expected = [[t, float(s)] for t, s in service.query(chart, 5).ranking]
    print(f"   byte-identical to service.query: {body['ranking'] == expected}")

    print("== 3. Mutate the live index over the wire ==")
    n = 64
    t = np.linspace(0.0, 1.0, n)
    newcomer = Table(
        "tbl_wire_added",
        [
            Column("step", np.arange(n, dtype=float), role="x"),
            Column("ramp", 3.0 * t + 0.5, role="y"),
            Column("pulse", np.sin(2 * np.pi * 5 * t), role="y"),
        ],
    )
    status, body = call(
        f"{base}/tables",
        "POST",
        {"tables": [table_payload_from_table(newcomer)]},
    )
    print(f"   POST /tables -> {status} added={body['added']} "
          f"({body['num_tables']} total)")
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "http_index.npz"
        status, body = call(f"{base}/snapshot", "POST", {"path": str(snap)})
        print(f"   POST /snapshot -> {status} "
              f"({snap.stat().st_size} bytes, {body['num_tables']} tables)")
    status, body = call(f"{base}/tables/{newcomer.table_id}", "DELETE")
    print(f"   DELETE /tables/{newcomer.table_id} -> {status} "
          f"({body['num_tables']} total)")

    print("== 4. Overload: admission control sheds load as 429s ==")
    gate, entered = threading.Event(), threading.Event()
    original_query = service.query

    def slow_query(chart, k, strategy="hybrid"):
        entered.set()
        gate.wait(timeout=30.0)
        return original_query(chart, k, strategy=strategy)

    service.query = slow_query  # hold the service busy on purpose
    statuses: list[int] = []

    def one_query():
        statuses.append(call(f"{base}/query", "POST",
                             {"chart": payload, "k": 3})[0])

    threads = [threading.Thread(target=one_query) for _ in range(6)]
    for thread in threads:
        thread.start()
        time.sleep(0.02)
    entered.wait(timeout=30.0)
    time.sleep(0.2)  # let the rest pile into (and past) the bound
    gate.set()
    for thread in threads:
        thread.join()
    service.query = original_query
    counts = {code: statuses.count(code) for code in sorted(set(statuses))}
    print(f"   6 concurrent queries vs max_inflight=2 -> {counts}")
    print("   (the 429s carried Retry-After; nothing hung, nothing 5xx'd)")

    print("== 5. Operator's view, then a graceful drain ==")
    status, metrics = call(f"{base}/metrics")
    query_metrics = metrics["endpoints"]["POST /query"]
    print(f"   POST /query: {query_metrics['requests']} requests, "
          f"statuses {query_metrics['status_counts']}, "
          f"p95 {query_metrics['latency_ms']['p95']:.1f}ms")
    print(f"   admission: {metrics['admission']}")
    server.close()
    print("   drained and stopped; service still usable in-process: "
          f"{len(service.query(chart, 3).ranking)} results")


if __name__ == "__main__":
    main()
