"""Aggregation-based queries: the scenario motivating the DA layers (Sec. V).

A business analyst has a chart of *monthly* totals but the data lake stores
*daily* records.  This example renders a query chart through a sum
aggregation with a 30-row window and shows that:

* the ground-truth relevance still identifies the daily source table, and
* FCM's Mixture-of-Experts gate shifts probability mass toward the correct
  aggregation operator for the aggregated data.

Run with::

    python examples/aggregation_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.charts import render_chart_for_table
from repro.data import (
    AggregationSpec,
    Column,
    CorpusConfig,
    DataRepository,
    Table,
    filter_line_chart_records,
    generate_corpus,
)
from repro.fcm import (
    FCMConfig,
    FCMModel,
    FCMScorer,
    column_segments,
    ground_truth_relevance,
)


def build_daily_sales_table(num_days: int = 360, seed: int = 3) -> Table:
    """A synthetic daily-sales table with weekly/seasonal cycles and a trend.

    The seasonal (180-day) swing gives the series a distinctive shape that
    survives both the 30-day aggregation of the query chart and the
    resampling inside the DTW ground truth; the weekly ripple is kept small
    for the same reason (a dominant ripple turns the daily series into noise
    at monthly resolution and no shape-based relevance could recover it).
    """
    rng = np.random.default_rng(seed)
    day = np.arange(num_days, dtype=float)
    weekly = 1.0 + 0.1 * np.sin(2 * np.pi * day / 7.0)
    trend = 1.0 + day / num_days + 0.8 * np.sin(2 * np.pi * day / 180.0)
    sales = 100.0 * weekly * trend + rng.normal(0, 5, size=num_days)
    marketing = 20.0 + 10.0 * np.sin(2 * np.pi * day / 90.0) + rng.normal(0, 1, size=num_days)
    return Table(
        "daily_sales",
        [
            Column("day", day, role="x"),
            Column("sales", sales, role="y"),
            Column("marketing_spend", marketing, role="y"),
        ],
    )


def main() -> None:
    print("== Scenario: a chart of monthly sales, a lake of daily tables ==")
    sales_table = build_daily_sales_table()
    aggregation = AggregationSpec(operator="sum", window=30)
    chart = render_chart_for_table(
        sales_table, ["sales"], x_column="day", aggregation=aggregation
    )
    print(f"   query chart: {chart.num_lines} line, aggregation={aggregation.describe()}, "
          f"{len(chart.underlying[0])} aggregated points from {sales_table.num_rows} daily rows")

    print("== Ground-truth relevance still finds the daily source ==")
    distractors = [
        record.table
        for record in filter_line_chart_records(
            generate_corpus(CorpusConfig(num_records=12, seed=9))
        )
    ]
    repository = DataRepository([sales_table] + distractors)
    scored = sorted(
        (
            (table.table_id, ground_truth_relevance(chart.underlying, table, max_points=48))
            for table in repository
        ),
        key=lambda item: item[1],
        reverse=True,
    )
    for rank, (table_id, score) in enumerate(scored[:3], start=1):
        print(f"     {rank}. {table_id:<14s} Rel(D,T)={score:.3f}")
    assert scored[0][0] == "daily_sales"

    print("== FCM with DA layers: MoE gate inspection ==")
    config = FCMConfig()  # DA layers enabled by default
    model = FCMModel(config)
    segments = column_segments(sales_table["sales"].values, config)
    gates = model.dataset_encoder.moe_gate_weights(segments)
    operator_names = ("avg", "sum", "max", "min", "identity")
    mean_gates = gates.mean(axis=0)
    print("   (untrained) expert mixture over", operator_names, "=",
          np.round(mean_gates, 3).tolist())
    print("   After training on a corpus with DA charts, the gate learns to favour")
    print("   the operator that actually produced the chart (see Table VI bench).")

    print("== Scoring the repository with FCM ==")
    scorer = FCMScorer(model)
    scorer.index_repository(repository)
    top = scorer.rank(chart, k=3)
    for rank, (table_id, score) in enumerate(top, start=1):
        print(f"     {rank}. {table_id:<14s} Rel'(V,T)={score:.3f}")
    print("   (an untrained model scores near 0.5 everywhere; train it as in")
    print("    examples/quickstart.py for meaningful rankings)")


if __name__ == "__main__":
    main()
