"""Clinical streaming scenario: arrhythmia alerts on a live ECG feed (Sec. I).

The paper motivates dataset discovery via line charts with, among others, a
clinical use case: a doctor has an ECG *chart* and needs the raw recordings
that produced it (or recordings with the same morphology).  Earlier versions
of this example treated the feed as a batch corpus and re-indexed the whole
recording on every poll; this version uses the streaming serving API
instead — the live recording grows through
:meth:`~repro.serving.SearchService.append_rows` (only the window segments a
batch touches are re-encoded) and a standing subscription on an arrhythmia
pattern chart fires an alert the moment a freshly ingested window starts
matching.

The script doubles as the CI ingest soak (see the ``streaming-smoke`` job):
it asserts zero errors across the ingest batches, that tail appends re-encode
a strict subset of the stream's segments, that the subscription fires within
one ingest batch of the synthesized onset (with the alert visible in a trace
span), and that the streamed index ranks exactly like a from-scratch rebuild.
Any violated assertion exits non-zero.

Run with::

    python examples/ecg_pattern_lookup.py

``REPRO_ECG_EPOCHS`` overrides the (tiny) training epoch count.
"""

from __future__ import annotations

import os

import numpy as np

from repro.charts import render_chart_for_table
from repro.data import Column, CorpusRecord, Table, VisualizationSpec
from repro.fcm import FCMConfig, FCMScorer, TrainerConfig, train_fcm
from repro.index.lsh import LSHConfig
from repro.nn import default_dtype
from repro.serving import SearchService, ServingConfig, StreamingConfig

#: Streaming window size; the feed below is batch-aligned so the arrhythmia
#: onset fills exactly one window.
WINDOW = 64
#: Rows per normal-rhythm ingest batch (deliberately not a window multiple,
#: so appends straddle window boundaries and exercise tail re-encoding).
NORMAL_BATCH = 48
#: Normal batches before the onset (192 rows = 3 sealed windows).
NORMAL_BATCHES = 4


def synthetic_ecg(
    num_samples: int, heart_rate_hz: float, amplitude: float, noise: float, seed: int
) -> np.ndarray:
    """A crude ECG-like waveform: sharp QRS-like spikes on a smooth baseline."""
    rng = np.random.default_rng(seed)
    t = np.arange(num_samples, dtype=float)
    period = int(round(60.0 / heart_rate_hz))
    baseline = 0.1 * np.sin(2 * np.pi * t / (4 * period))
    signal = baseline.copy()
    for beat_start in range(0, num_samples, period):
        center = beat_start + period // 2
        idx = np.arange(num_samples)
        signal += amplitude * np.exp(-0.5 * ((idx - center) / 2.0) ** 2)
        signal -= 0.3 * amplitude * np.exp(-0.5 * ((idx - center - 5) / 3.0) ** 2)
    return signal + rng.normal(0.0, noise, size=num_samples)


def build_ecg_lake(num_patients: int = 8, num_samples: int = 240) -> list[CorpusRecord]:
    """One table per patient, each with two leads of the same rhythm."""
    records = []
    rng = np.random.default_rng(7)
    for patient in range(num_patients):
        heart_rate = float(rng.uniform(2.0, 9.0))
        amplitude = float(rng.uniform(0.8, 1.6))
        noise = float(rng.uniform(0.01, 0.06))
        lead_i = synthetic_ecg(num_samples, heart_rate, amplitude, noise, seed=patient)
        lead_ii = synthetic_ecg(num_samples, heart_rate, 0.8 * amplitude, noise, seed=100 + patient)
        table = Table(
            f"ecg_patient_{patient:02d}",
            [
                Column("sample", np.arange(num_samples, dtype=float), role="x"),
                Column("lead_i", lead_i, role="y"),
                Column("lead_ii", lead_ii, role="y"),
            ],
        )
        spec = VisualizationSpec(
            table_id=table.table_id, y_columns=("lead_i", "lead_ii"), x_column="sample"
        )
        records.append(CorpusRecord(table=table, spec=spec))
    return records


def live_feed() -> list[np.ndarray]:
    """The simulated live recording: normal batches, then an onset window.

    The normal rhythm is a regular spiky QRS train; the arrhythmia that
    arrives as the final batch is ventricular flutter, which on an ECG is a
    smooth high-amplitude sinusoid — morphologically unmistakable from the
    beats before it.  The onset batch is window-aligned so the flutter fills
    exactly one streaming segment.
    """
    normal = synthetic_ecg(
        NORMAL_BATCH * NORMAL_BATCHES, heart_rate_hz=7.0, amplitude=1.0,
        noise=0.02, seed=42,
    )
    batches = [
        normal[i * NORMAL_BATCH : (i + 1) * NORMAL_BATCH]
        for i in range(NORMAL_BATCHES)
    ]
    t = np.arange(WINDOW, dtype=float)
    flutter = 3.0 * np.sin(2 * np.pi * t / 32.0)
    flutter += np.random.default_rng(43).normal(0.0, 0.02, WINDOW)
    return batches + [flutter]


def window_states(batch_sizes: list[int]) -> list[tuple[int, int, int]]:
    """Replay the stream's window partitioning: (window, lo, hi) per dirty
    window per batch — every segment state the subscription will score."""
    states = []
    total = 0
    for size in batch_sizes:
        new_total = total + size
        for window in range(total // WINDOW, (new_total - 1) // WINDOW + 1):
            states.append((window, window * WINDOW, min((window + 1) * WINDOW, new_total)))
        total = new_total
    return states


def span_names(tree: dict) -> list[str]:
    return [tree["name"]] + [
        name for child in tree.get("children", []) for name in span_names(child)
    ]


def main() -> None:
    print("== Building a lake of synthetic ECG recordings ==")
    records = build_ecg_lake()
    print(f"   {len(records)} patient recordings, 2 leads each")

    epochs = int(os.environ.get("REPRO_ECG_EPOCHS", "4"))
    config = FCMConfig(
        embed_dim=16, num_layers=1, data_segment_size=32, beta=2, max_data_segments=4
    )
    print(f"== Training a small FCM ({epochs} epochs) ==")
    model, history, _ = train_fcm(
        records,
        config=config,
        trainer_config=TrainerConfig(epochs=epochs, batch_size=6, num_negatives=2),
        aggregated_fraction=0.0,
    )
    print(f"   final loss {history.final_loss:.3f}")

    serving = ServingConfig(
        lsh_config=LSHConfig(num_bits=8, hamming_radius=1),
        streaming=StreamingConfig(segment_rows=WINDOW),
        tracing=True,
    )
    service = SearchService(model, serving)
    service.build([r.table for r in records])

    batches = live_feed()
    onset = batches[-1]
    onset_start = NORMAL_BATCH * NORMAL_BATCHES
    stream_id = "ecg_live"
    feed = np.concatenate(batches)

    # The standing query: a chart of the flutter morphology the ward is
    # watching for, over the samples where it may appear.
    pattern_table = Table(
        "flutter_pattern",
        [
            Column("sample", np.arange(onset_start, onset_start + WINDOW, dtype=float), role="x"),
            Column("lead", onset, role="y"),
        ],
    )
    pattern_chart = render_chart_for_table(
        pattern_table, ["lead"], x_column="sample", spec=config.chart_spec
    )

    # Calibrate the alert threshold by replaying the stream's window
    # partitioning on a throwaway scorer: every segment state the
    # subscription will score gets a preview score, and the threshold sits
    # halfway between the normal rhythm's ceiling and the flutter window.
    preview = FCMScorer(model)
    chart_input = preview.prepare_query(pattern_chart)
    onset_window = onset_start // WINDOW
    preview_ids: dict[str, int] = {}
    for window, lo, hi in window_states([b.size for b in batches]):
        table_id = f"preview-w{window}-{hi - lo}"
        preview.index_table(
            Table(
                table_id,
                [
                    Column("sample", np.arange(lo, hi, dtype=float), role="x"),
                    Column("lead", feed[lo:hi], role="y"),
                ],
            )
        )
        preview_ids[table_id] = window
    scores = preview.score_encoded_batch(chart_input, list(preview_ids))
    max_normal = max(s for i, s in scores.items() if preview_ids[i] != onset_window)
    onset_score = min(s for i, s in scores.items() if preview_ids[i] == onset_window)
    assert onset_score > max_normal, (
        f"calibration failed: flutter morphology ({onset_score:.3f}) does not "
        f"stand out from normal rhythm (max {max_normal:.3f})"
    )
    threshold = 0.5 * (max_normal + onset_score)
    print(
        f"== Standing subscription: threshold {threshold:.3f} "
        f"(normal ceiling {max_normal:.3f}, flutter {onset_score:.3f}) =="
    )
    alerts: list = []
    subscription_id = service.subscribe(
        pattern_chart, k=1, threshold=threshold, callback=alerts.append
    )

    print("== Streaming the live recording: normal rhythm must stay quiet ==")
    start = 0
    for batch_index, batch in enumerate(batches[:-1]):
        result = service.append_rows(
            stream_id,
            {"sample": np.arange(start, start + batch.size, dtype=float),
             "lead": batch},
            roles={"sample": "x"} if batch_index == 0 else None,
        )
        start += batch.size
        assert result.events_fired == 0, (
            f"false alert on normal batch {batch_index}: "
            f"{[e.to_dict() for e in service.poll(subscription_id)]}"
        )
        if result.segments_total > 2:
            assert result.reencode_fraction < 1.0, (
                "a tail append re-encoded every segment of the stream"
            )
        print(
            f"   batch {batch_index}: +{result.rows_appended} rows, quiet, "
            f"{len(result.dirty_segments)}/{result.segments_total} segments "
            f"re-encoded"
        )

    print("== Ventricular flutter onset arrives ==")
    result = service.append_rows(
        stream_id,
        {"sample": np.arange(onset_start, onset_start + WINDOW, dtype=float),
         "lead": onset},
    )
    assert result.reencode_fraction < 1.0
    assert result.events_fired >= 1, "subscription did not fire on the onset batch"
    events = service.poll(subscription_id)
    alert = events[0]
    assert alert.segment_id in result.dirty_segments, (
        "alert fired for a segment outside the onset batch"
    )
    assert alerts and alerts[0].segment_id == alert.segment_id
    names = span_names(service.last_trace)
    assert "subscription" in names, f"no subscription span in trace: {names}"
    print(
        f"   ALERT: {alert.table_id} window {alert.segment_id} scored "
        f"{alert.score:.3f} >= {threshold:.3f} (within one ingest batch; "
        f"trace spans: {names})"
    )

    print("== Parity: streamed index vs from-scratch rebuild ==")
    rebuilt = SearchService(model, serving)
    rebuilt.build([r.table for r in records])
    history_rows = feed
    rebuilt.append_rows(
        stream_id,
        {"sample": np.arange(history_rows.size, dtype=float), "lead": history_rows},
        roles={"sample": "x"},
    )
    tolerance = 5e-5 if np.dtype(default_dtype()) == np.float32 else 1e-8
    for strategy in ("none", "interval", "lsh", "hybrid"):
        streamed = service.query(pattern_chart, 5, strategy=strategy).ranking
        reference = rebuilt.query(pattern_chart, 5, strategy=strategy).ranking
        assert [t for t, _ in streamed] == [t for t, _ in reference], (
            f"{strategy}: ranking order diverged: {streamed} vs {reference}"
        )
        assert all(
            abs(a - b) <= tolerance
            for (_, a), (_, b) in zip(streamed, reference)
        ), f"{strategy}: scores diverged beyond {tolerance}"
        print(f"   {strategy:<8s} rankings match (top: {streamed[0][0]})")
    print("== Done: alert fired within one ingest batch, streamed index "
          "matches a full rebuild ==")


if __name__ == "__main__":
    main()
