"""Clinical-trial scenario: find the raw ECG recordings behind a chart (Sec. I).

The paper motivates dataset discovery via line charts with, among others, a
clinical use case: a doctor has an ECG *chart* and needs the raw recordings
that produced it (or recordings with the same morphology) for downstream
analytics.  This example builds a small lake of synthetic ECG-like recordings
(different heart rates, amplitudes and noise levels), takes a chart of one
recording as the query, and retrieves the most compatible recordings using
both the exact ground-truth relevance and a trained FCM.

Run with::

    python examples/ecg_pattern_lookup.py
"""

from __future__ import annotations

import numpy as np

from repro.charts import render_chart_for_table
from repro.data import Column, CorpusRecord, DataRepository, Table, VisualizationSpec
from repro.fcm import FCMConfig, FCMScorer, TrainerConfig, train_fcm
from repro.fcm.training import ground_truth_relevance


def synthetic_ecg(
    num_samples: int, heart_rate_hz: float, amplitude: float, noise: float, seed: int
) -> np.ndarray:
    """A crude ECG-like waveform: sharp QRS-like spikes on a smooth baseline."""
    rng = np.random.default_rng(seed)
    t = np.arange(num_samples, dtype=float)
    period = int(round(60.0 / heart_rate_hz))
    baseline = 0.1 * np.sin(2 * np.pi * t / (4 * period))
    signal = baseline.copy()
    for beat_start in range(0, num_samples, period):
        center = beat_start + period // 2
        idx = np.arange(num_samples)
        signal += amplitude * np.exp(-0.5 * ((idx - center) / 2.0) ** 2)
        signal -= 0.3 * amplitude * np.exp(-0.5 * ((idx - center - 5) / 3.0) ** 2)
    return signal + rng.normal(0.0, noise, size=num_samples)


def build_ecg_lake(num_patients: int = 12, num_samples: int = 240) -> list[CorpusRecord]:
    """One table per patient, each with two leads of the same rhythm."""
    records = []
    rng = np.random.default_rng(7)
    for patient in range(num_patients):
        heart_rate = float(rng.uniform(50, 110))
        amplitude = float(rng.uniform(0.8, 1.6))
        noise = float(rng.uniform(0.01, 0.06))
        lead_i = synthetic_ecg(num_samples, heart_rate, amplitude, noise, seed=patient)
        lead_ii = synthetic_ecg(num_samples, heart_rate, 0.8 * amplitude, noise, seed=100 + patient)
        table = Table(
            f"ecg_patient_{patient:02d}",
            [
                Column("sample", np.arange(num_samples, dtype=float), role="x"),
                Column("lead_i", lead_i, role="y"),
                Column("lead_ii", lead_ii, role="y"),
            ],
        )
        spec = VisualizationSpec(
            table_id=table.table_id, y_columns=("lead_i", "lead_ii"), x_column="sample"
        )
        records.append(CorpusRecord(table=table, spec=spec))
    return records


def main() -> None:
    print("== Building a lake of synthetic ECG recordings ==")
    records = build_ecg_lake()
    repository = DataRepository([r.table for r in records])
    print(f"   {len(repository)} patient recordings, 2 leads each")

    query_record = records[3]
    chart = render_chart_for_table(
        query_record.table, ["lead_i", "lead_ii"], x_column="sample"
    )
    print(f"== Query: the chart of {query_record.table.table_id} "
          f"({chart.num_lines} lines) ==")

    print("== Exact ground-truth relevance Rel(D, T) (DTW + bipartite matching) ==")
    scored = sorted(
        ((t.table_id, ground_truth_relevance(chart.underlying, t, max_points=64)) for t in repository),
        key=lambda item: item[1],
        reverse=True,
    )
    for rank, (table_id, score) in enumerate(scored[:3], start=1):
        marker = "  <-- query's own recording" if table_id == query_record.table.table_id else ""
        print(f"     {rank}. {table_id:<16s} Rel={score:.3f}{marker}")

    print("== Training a small FCM on the other recordings and querying ==")
    train_records = [r for r in records if r.table.table_id != query_record.table.table_id]
    config = FCMConfig(embed_dim=16, num_layers=1, data_segment_size=32, beta=2,
                       max_data_segments=4)
    model, history, _ = train_fcm(
        train_records,
        config=config,
        trainer_config=TrainerConfig(epochs=6, batch_size=6, num_negatives=2),
        aggregated_fraction=0.0,
    )
    print(f"   trained {len(history.epochs)} epochs, final loss {history.final_loss:.3f}")

    scorer = FCMScorer(model)
    scorer.index_repository(repository)
    query_chart = render_chart_for_table(
        query_record.table, ["lead_i", "lead_ii"], x_column="sample", spec=config.chart_spec
    )
    top = scorer.rank(query_chart, k=3)
    print("   FCM top-3 recordings:")
    for rank, (table_id, score) in enumerate(top, start=1):
        marker = "  <-- query's own recording" if table_id == query_record.table.table_id else ""
        print(f"     {rank}. {table_id:<16s} Rel'={score:.3f}{marker}")


if __name__ == "__main__":
    main()
