#!/usr/bin/env python
"""Check the relative links in README.md and docs/*.md actually resolve.

Scans every markdown link / image target in the repo's top-level markdown
files and the ``docs/``, ``benchmarks/`` and ``examples/`` trees.  External
targets (``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``)
are ignored; everything else is resolved relative to the file it appears in
and must exist on disk.  Exits 1 listing every broken link — the CI
``docs-check`` job runs this next to the ``gen_api_docs.py --check`` diff.

Usage::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where markdown worth checking lives.
SEARCH_GLOBS = (
    "*.md",
    "docs/*.md",
    "benchmarks/*.md",
    "examples/*.md",
    ".github/**/*.md",
)

#: Machine-produced source material (paper extractions, snippet dumps):
#: their figure references were never files in this repository.
EXEMPT = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}

#: ``[text](target)`` and ``![alt](target)`` — good enough for this repo's
#: plain markdown (no reference-style links, no angle-bracket targets).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_markdown_files() -> List[Path]:
    files = []
    for pattern in SEARCH_GLOBS:
        files.extend(REPO_ROOT.glob(pattern))
    return sorted(path for path in set(files) if path.name not in EXEMPT)


def broken_links(path: Path) -> List[Tuple[str, str]]:
    """(target, reason) for every unresolvable relative link in ``path``."""
    problems = []
    for match in _LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
        elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            problems.append((target, "resolves outside the repository"))
    return problems


def main() -> int:
    failures = 0
    checked = 0
    for path in iter_markdown_files():
        checked += 1
        for target, reason in broken_links(path):
            failures += 1
            rel = path.relative_to(REPO_ROOT)
            sys.stderr.write(f"{rel}: broken link '{target}' ({reason})\n")
    if failures:
        sys.stderr.write(f"{failures} broken link(s)\n")
        return 1
    print(f"all relative links resolve ({checked} markdown files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
