#!/usr/bin/env python
"""CI smoke for the observability surface: scrape, validate, read the logs.

Boots a demo server in-process (ephemeral port, tracing on, structured
logging captured) and fails loudly when any of the exported surfaces is
malformed:

1. ``GET /metrics?format=prometheus`` must parse under the strict
   :func:`repro.obs.parse_prometheus_text` validator and contain the core
   series a dashboard would be built on;
2. ``GET /metrics`` (JSON) must agree with the Prometheus exposition on the
   request counts;
3. a traced query must produce a span tree covering the named pipeline
   stages;
4. under ``REPRO_LOG=info`` every emitted log line must be valid JSON with
   the required envelope fields (``ts``/``level``/``logger``/``event``),
   and the startup ``index_built`` / ``server_started`` events must appear.

Run from the repository root::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import io
import json
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import configure_logging, parse_prometheus_text, stage_names
from repro.serving.http.demo import build_demo_service, demo_query_payloads
from repro.serving.http.server import ChartSearchServer, HTTPServingConfig

#: Prometheus series a scrape must always contain.
CORE_SERIES = (
    "http_requests_total",
    "http_request_latency_ms",
    "http_admission_rejected_total",
    "http_draining_rejected_total",
    "http_uptime_seconds",
    "http_inflight_requests",
    "service_tables",
    "service_queries_total",
    "service_worker_fallback_active",
)

#: Stages a traced HTTP query must cover (the acceptance bar).
CORE_STAGES = {"admission", "render", "cache", "candidates", "verify", "merge"}

#: Required envelope fields of every structured log record.
LOG_ENVELOPE = ("ts", "level", "logger", "event")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def main() -> int:
    # Capture structured logs exactly as an operator's `REPRO_LOG=info`
    # would emit them, into a buffer this script can validate.
    log_stream = io.StringIO()
    configure_logging(level="info", format="json", stream=log_stream)

    print("booting demo server (tracing on, logs captured)...")
    service, records = build_demo_service(num_tables=12, seed=7, tracing=True)
    server = ChartSearchServer(
        service, HTTPServingConfig(port=0, tracing=True)
    ).start()
    try:
        base = server.url

        # One traced query so the scrape has query-path series to show.
        payload = demo_query_payloads(records, limit=1)[0]
        body = json.dumps({"chart": payload, "k": 3}).encode("utf-8")
        request = urllib.request.Request(
            base + "/query",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            check(response.status == 200, f"query returned {response.status}")
            json.loads(response.read())

        tree = server.last_trace
        check(tree is not None, "traced query left no span tree")
        names = stage_names(tree)
        missing_stages = CORE_STAGES - names
        check(
            not missing_stages,
            f"span tree missing stages {sorted(missing_stages)} "
            f"(got {sorted(names)})",
        )
        print(f"  span tree ok ({len(names)} stages)")

        # Request metrics are observed after the response bytes are flushed,
        # so wait until the query the client just made is actually recorded
        # before comparing the two exposition formats.
        deadline = time.monotonic() + 10.0
        while True:
            with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
                metrics_json = json.loads(response.read())
            recorded = metrics_json["endpoints"].get("POST /query", {})
            if recorded.get("requests", 0) >= 1:
                break
            check(
                time.monotonic() < deadline,
                "traced query was never recorded in /metrics",
            )
            time.sleep(0.01)

        # --- Prometheus exposition under the strict validator ------------- #
        with urllib.request.urlopen(
            base + "/metrics?format=prometheus", timeout=30
        ) as response:
            check(response.status == 200, f"scrape returned {response.status}")
            content_type = response.headers.get("Content-Type", "")
            check(
                content_type.startswith("text/plain; version=0.0.4"),
                f"unexpected scrape content type {content_type!r}",
            )
            text = response.read().decode("utf-8")
        try:
            parsed = parse_prometheus_text(text)
        except ValueError as exc:
            fail(f"malformed Prometheus exposition: {exc}")
        missing = [name for name in CORE_SERIES if name not in parsed]
        check(not missing, f"scrape missing core series {missing}")
        print(f"  prometheus exposition ok ({len(parsed)} metric families)")

        # --- JSON /metrics agrees with the exposition --------------------- #
        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            metrics_json = json.loads(response.read())
        check(
            "worker_fallback_kind" in metrics_json["service"],
            "JSON metrics missing service.worker_fallback_kind",
        )
        json_queries = metrics_json["endpoints"]["POST /query"]["requests"]
        prom_queries = sum(
            value
            for name, labels, value in parsed["http_requests_total"]["samples"]
            if labels.get("endpoint") == "POST /query"
        )
        check(
            prom_queries == json_queries,
            f"request counts disagree: prometheus {prom_queries} "
            f"vs json {json_queries}",
        )
        print("  json/prometheus agreement ok")
    finally:
        server.close()

    # --- Structured log stream: every line valid JSON, key events present - #
    lines = [line for line in log_stream.getvalue().splitlines() if line]
    check(bool(lines), "no log lines emitted under REPRO_LOG=info")
    events = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError:
            fail(f"log line {lineno} is not valid JSON: {line[:120]!r}")
        missing_fields = [f for f in LOG_ENVELOPE if f not in record]
        check(
            not missing_fields,
            f"log line {lineno} missing fields {missing_fields}: {record}",
        )
        events.append(record["event"])
    for required in ("index_built", "server_started", "server_closed"):
        check(required in events, f"expected log event {required!r}; got {events}")
    print(f"  structured logs ok ({len(lines)} lines, events: {sorted(set(events))})")

    print("OBS SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
