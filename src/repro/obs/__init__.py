"""``repro.obs`` — tracing, metrics and structured logging for the stack.

Three stdlib-only primitives, shared by every layer of the system:

* **metrics** (:mod:`repro.obs.metrics`) — a thread-safe registry of
  counters, gauges and bounded-reservoir histograms with two export
  surfaces: a JSON-friendly :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
  and a Prometheus text exposition
  (:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`, served by
  the HTTP tier as ``GET /metrics?format=prometheus``);
* **tracing** (:mod:`repro.obs.tracing`) — per-query span trees.  A trace
  is minted at the HTTP boundary (or by
  :meth:`repro.serving.SearchService.query` for in-process callers) and
  every instrumented stage — admission, chart render, result cache,
  candidate generation (interval tree / LSH), verification, worker
  scatter/gather, merge — attaches a named :class:`~repro.obs.tracing.Span`.
  Worker-side spans cross the :class:`~repro.serving.workers.QueryWorkerPool`
  pipe and stitch into the parent trace under the same trace id.  With no
  active trace, :func:`~repro.obs.tracing.span` is a shared no-op — the
  instrumented hot paths cost a single context-variable read;
* **structured logging** (:mod:`repro.obs.log`) — one-line JSON (or text)
  event records on stderr, gated by ``REPRO_LOG=off|info|debug`` and shaped
  by ``REPRO_LOG_FORMAT=json|text``.  Serving, persistence, sharded builds
  and the trainer all log through it; silent failure paths are gone.

Profiling hooks (:mod:`repro.obs.profiling`) build on the above: a
slow-query log (``REPRO_SLOW_QUERY_MS``) dumps the full span tree of any
offending query, and an opt-in per-request cProfile capture is exposed via
the ``POST /query`` ``debug`` flag.

Example
-------
>>> from repro.obs import get_registry, start_trace, span, get_logger
>>> registry = get_registry()
>>> registry.counter("demo_total", "how many demos ran").inc()
>>> with start_trace("demo") as root:
...     with span("stage_one"):
...         pass
>>> root.to_dict()["children"][0]["name"]
'stage_one'
>>> get_logger("demo").info("done", stages=1)   # no-op unless REPRO_LOG=info
"""

from .log import LogConfig, ObsLogger, configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus_text,
)
from .profiling import (
    maybe_log_slow_query,
    profile_block,
    slow_query_threshold_ms,
)
from .tracing import (
    Span,
    current_span,
    current_trace_id,
    mint_query_id,
    span,
    stage_names,
    start_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogConfig",
    "MetricsRegistry",
    "ObsLogger",
    "Span",
    "configure_logging",
    "current_span",
    "current_trace_id",
    "get_logger",
    "get_registry",
    "maybe_log_slow_query",
    "mint_query_id",
    "parse_prometheus_text",
    "profile_block",
    "slow_query_threshold_ms",
    "span",
    "stage_names",
    "start_trace",
]
