"""Thread-safe metrics: counters, gauges, bounded-reservoir histograms.

One :class:`MetricsRegistry` holds every metric of a component (the HTTP
server owns one per instance; :func:`get_registry` returns a process-wide
default for ad-hoc use).  All mutation goes through a single lock per
registry, so concurrent ``observe``/``inc`` calls from
``ThreadingHTTPServer`` handler threads are safe — ``tests/test_obs.py``
hammers one registry from many threads and asserts exact totals.

Two export surfaces:

* :meth:`MetricsRegistry.snapshot` — a plain-dict view (JSON ``/metrics``);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``GET /metrics?format=prometheus``).  Counters and
  gauges render as their native types; histograms render as summaries with
  ``quantile`` labels plus ``_count``/``_sum``/``_max`` series, computed
  from a bounded reservoir so a long-lived server's metrics memory never
  grows with traffic.

:func:`parse_prometheus_text` is the matching validator: a strict
mini-parser of the exposition format used by the CI smoke job
(``tools/obs_smoke.py``) and the unit tests, so a malformed rendering can
never land silently.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default reservoir size per histogram series: enough resolution for a p99
#: over a sustained load-generator phase, bounded so metrics memory is O(1)
#: in traffic.
DEFAULT_RESERVOIR = 4096

#: A label set, normalised to a sorted tuple of (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    # repr round-trips floats exactly; integers render without a trailing .0
    # for readability (both are valid exposition values).
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared bookkeeping: a name, help text and a per-label-set series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled.

    >>> c = MetricsRegistry().counter("requests_total", "requests served")
    >>> c.inc(endpoint="GET /healthz")
    >>> c.value(endpoint="GET /healthz")
    1.0
    """

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        super().__init__(name, help, lock)
        self._series: "OrderedDict[LabelKey, float]" = OrderedDict()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def set_total(self, value: float, **labels: str) -> None:
        """Mirror an externally tracked monotonic total into this counter.

        For scrape-time bridging of counts that live elsewhere (e.g. the
        serving layer's :class:`~repro.serving.service.ServiceStats`): the
        source of truth keeps counting, the exposition shows its current
        value under the counter's name/type.
        """
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _snapshot(self) -> Dict:
        with self._lock:
            return {
                "type": self.kind,
                "series": [
                    {"labels": dict(key), "value": value}
                    for key, value in self._series.items()
                ],
            }

    def _render(self) -> List[str]:
        with self._lock:
            lines = self._header()
            for key, value in self._series.items():
                lines.append(
                    f"{self.name}{_format_labels(key)} {_format_value(value)}"
                )
            return lines


class Gauge(_Metric):
    """A value that can go up and down (or be set at scrape time)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        super().__init__(name, help, lock)
        self._series: "OrderedDict[LabelKey, float]" = OrderedDict()

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    _snapshot = Counter._snapshot
    _render = Counter._render


class _Reservoir:
    """Count/sum/max plus a bounded ring of recent observations."""

    __slots__ = ("count", "total", "max", "recent")

    def __init__(self, size: int) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.recent: "deque[float]" = deque(maxlen=size)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.max = max(self.max, value)
        self.recent.append(value)

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        if not self.recent:
            return [0.0 for _ in qs]
        arr = np.asarray(self.recent, dtype=np.float64)
        return [float(v) for v in np.percentile(arr, [q * 100.0 for q in qs])]


class Histogram(_Metric):
    """Latency-style observations with bounded-reservoir percentiles.

    Exposed to Prometheus as a *summary*: ``name{quantile="0.5"}`` etc.
    computed over the last ``reservoir`` observations per label set, plus
    exact ``name_count`` / ``name_sum`` / ``name_max`` series.
    """

    kind = "summary"
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        super().__init__(name, help, lock)
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self._reservoir_size = int(reservoir)
        self._series: "OrderedDict[LabelKey, _Reservoir]" = OrderedDict()

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Reservoir(self._reservoir_size)
            series.observe(float(value))

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def _snapshot(self) -> Dict:
        with self._lock:
            out = []
            for key, series in self._series.items():
                p50, p95, p99 = series.percentiles(self.QUANTILES)
                out.append(
                    {
                        "labels": dict(key),
                        "count": series.count,
                        "sum": series.total,
                        "mean": series.total / series.count if series.count else 0.0,
                        "max": series.max,
                        "p50": p50,
                        "p95": p95,
                        "p99": p99,
                    }
                )
            return {"type": self.kind, "series": out}

    def _render(self) -> List[str]:
        with self._lock:
            lines = self._header()
            for key, series in self._series.items():
                values = series.percentiles(self.QUANTILES)
                for q, value in zip(self.QUANTILES, values):
                    labels = _format_labels(key, [("quantile", str(q))])
                    lines.append(f"{self.name}{labels} {_format_value(value)}")
                labels = _format_labels(key)
                lines.append(
                    f"{self.name}_count{labels} {_format_value(series.count)}"
                )
                lines.append(
                    f"{self.name}_sum{labels} {_format_value(series.total)}"
                )
                lines.append(
                    f"{self.name}_max{labels} {_format_value(series.max)}"
                )
            return lines


class MetricsRegistry:
    """A named collection of metrics sharing one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, asking for an existing name with
    a different type raises — two subsystems can therefore share a registry
    without coordinating beyond the metric names.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, help, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, reservoir=reservoir)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-friendly view of every metric and series."""
        with self._lock:
            return {name: metric._snapshot() for name, metric in self._metrics.items()}

    def render_prometheus(self) -> str:
        """The full registry in the Prometheus text exposition format."""
        with self._lock:
            lines: List[str] = []
            for metric in self._metrics.values():
                lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (components may also own their own:
    the HTTP server keeps a per-instance registry so two servers in one
    process never mix counts)."""
    return _DEFAULT_REGISTRY


# --------------------------------------------------------------------------- #
# Exposition validator (shared by CI smoke and unit tests)
# --------------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*$'
)


def _base_name(name: str) -> str:
    for suffix in ("_count", "_sum", "_max", "_bucket", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)]:
            return name[: -len(suffix)]
    return name


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse (and strictly validate) a Prometheus text exposition.

    Returns ``{metric_name: {"type": str, "help": str, "samples":
    [(full_name, labels_dict, value), ...]}}`` keyed by the *declared*
    metric name.  Raises :class:`ValueError` on any malformed line, a
    sample whose metric has no ``# TYPE`` declaration, an unparsable value
    or a broken label pair — the strictness is the point: this is the
    validator the CI smoke job fails on.
    """
    metrics: Dict[str, Dict] = {}
    declared_types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {raw!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            metrics.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            _, _, name, kind = parts
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            if name in declared_types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            declared_types[name] = kind
            metrics.setdefault(name, {"type": None, "help": "", "samples": []})[
                "type"
            ] = kind
            continue
        if line.startswith("#"):  # comment
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        full_name = match.group("name")
        base = _base_name(full_name)
        owner = base if base in declared_types else full_name
        if owner not in declared_types:
            raise ValueError(
                f"line {lineno}: sample {full_name!r} has no # TYPE declaration"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            body = raw_labels[1:-1].strip()
            if body:
                for pair in body.split(","):
                    pair_match = _LABEL_PAIR_RE.match(pair)
                    if not pair_match:
                        raise ValueError(
                            f"line {lineno}: malformed label pair {pair!r}"
                        )
                    labels[pair_match.group("name")] = pair_match.group("value")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                raise ValueError(
                    f"line {lineno}: unparsable sample value {raw_value!r}"
                ) from None
            value = float(raw_value.replace("Inf", "inf"))
        metrics[owner]["samples"].append((full_name, labels, value))
    return metrics
