"""Structured event logging: one JSON (or text) line per event, on stderr.

Gated by two environment variables, read once at first use:

* ``REPRO_LOG`` — ``off`` (default), ``info`` or ``debug``;
* ``REPRO_LOG_FORMAT`` — ``json`` (default) or ``text``.

Every record carries a UTC timestamp, the level, the logger name and an
``event`` slug, plus arbitrary keyword fields::

    {"ts": "2026-08-07T12:00:00.123+00:00", "level": "info",
     "logger": "repro.serving.persistence", "event": "snapshot_saved",
     "path": "index.npz", "tables": 120, "seconds": 0.41}

Loggers are cheap to create and hold no state beyond their name; the
enabled check is one shared config read, so instrumented hot paths pay a
function call and an integer compare when logging is off.
:func:`configure_logging` overrides the environment for tests and embedding
applications (pass ``stream=`` to capture records).

Non-JSON-native field values (paths, numpy scalars, dataclasses) are
stringified rather than raised on — a log line must never take down the
operation it describes.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import IO, Optional

_LEVELS = {"off": 0, "info": 1, "debug": 2}


@dataclass
class LogConfig:
    """Resolved logging configuration (see module docstring for the envs)."""

    level: int = 0
    format: str = "json"
    stream: Optional[IO] = None  # None = sys.stderr at emit time

    @staticmethod
    def from_env() -> "LogConfig":
        raw_level = os.environ.get("REPRO_LOG", "off").strip().lower()
        level = _LEVELS.get(raw_level)
        if level is None:
            # An operator typo must not silently disable logging: accept
            # common truthy spellings as "info", anything else as off.
            level = 1 if raw_level in ("1", "true", "yes", "on") else 0
        fmt = os.environ.get("REPRO_LOG_FORMAT", "json").strip().lower()
        if fmt not in ("json", "text"):
            fmt = "json"
        return LogConfig(level=level, format=fmt)


_config: Optional[LogConfig] = None
_config_lock = threading.Lock()


def _get_config() -> LogConfig:
    global _config
    if _config is None:
        with _config_lock:
            if _config is None:
                _config = LogConfig.from_env()
    return _config


def configure_logging(
    level: Optional[str] = None,
    format: Optional[str] = None,
    stream: Optional[IO] = None,
) -> LogConfig:
    """Override the env-derived configuration (tests, embedding apps).

    Unset arguments keep their current value; ``configure_logging()`` with
    no arguments re-reads the environment from scratch.
    """
    global _config
    with _config_lock:
        if level is None and format is None and stream is None:
            _config = LogConfig.from_env()
            return _config
        base = _config or LogConfig.from_env()
        if level is not None:
            if level not in _LEVELS:
                raise ValueError(
                    f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
                )
            base = LogConfig(
                level=_LEVELS[level], format=base.format, stream=base.stream
            )
        if format is not None:
            if format not in ("json", "text"):
                raise ValueError("format must be 'json' or 'text'")
            base = LogConfig(level=base.level, format=format, stream=base.stream)
        if stream is not None:
            base = LogConfig(level=base.level, format=base.format, stream=stream)
        _config = base
        return _config


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    try:  # numpy scalars
        return value.item()
    except (AttributeError, ValueError):
        return str(value)


class ObsLogger:
    """A named emitter of structured events (see :func:`get_logger`)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def enabled(self, level: str = "info") -> bool:
        return _get_config().level >= _LEVELS.get(level, 1)

    def info(self, event: str, **fields) -> None:
        self._emit(1, "info", event, fields)

    def debug(self, event: str, **fields) -> None:
        self._emit(2, "debug", event, fields)

    def _emit(self, threshold: int, level: str, event: str, fields: dict) -> None:
        config = _get_config()
        if config.level < threshold:
            return
        stream = config.stream or sys.stderr
        ts = datetime.now(timezone.utc).isoformat(timespec="milliseconds")
        try:
            if config.format == "json":
                record = {"ts": ts, "level": level, "logger": self.name, "event": event}
                for key, value in fields.items():
                    record[key] = _jsonable(value)
                line = json.dumps(record, ensure_ascii=False)
            else:
                rendered = " ".join(
                    f"{key}={_jsonable(value)!r}" for key, value in fields.items()
                )
                line = f"{ts} {level.upper()} {self.name} {event}" + (
                    f" {rendered}" if rendered else ""
                )
            stream.write(line + "\n")
            stream.flush()
        except Exception:
            # Logging must never take down the operation it describes.
            pass


def get_logger(name: str) -> ObsLogger:
    """A structured logger for ``name`` (conventionally the module path)."""
    return ObsLogger(name)
