"""Profiling hooks: the slow-query log and per-request cProfile capture.

Two ways to answer "*where did that query's time go?*":

* **Slow-query log** — set ``REPRO_SLOW_QUERY_MS`` (e.g. ``250``) and every
  traced query whose total duration crosses the threshold logs its full
  span tree as one structured ``slow_query`` event
  (:func:`maybe_log_slow_query` is called wherever a trace is finished:
  the HTTP handler and :meth:`repro.serving.SearchService.query`).
* **Per-request cProfile** — a ``POST /query`` body may carry
  ``{"debug": {"profile": true}}``; the handler wraps just that request's
  service call in :func:`profile_block` and returns the formatted top of
  the profile in the response's ``debug.profile`` field.  Scoped to one
  request by construction — the profiler starts after admission and stops
  before the response is serialised, so neighbouring traffic is never
  slowed.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from contextlib import contextmanager
from typing import Dict, Optional, Union

from .log import ObsLogger, get_logger
from .tracing import Span

_log = get_logger("repro.obs.profiling")


def slow_query_threshold_ms() -> Optional[float]:
    """The ``REPRO_SLOW_QUERY_MS`` threshold, or ``None`` when unset/invalid.

    Non-positive and unparsable values disable the slow-query log (and a
    malformed value is itself logged once per read, so a typo is visible).
    """
    raw = os.environ.get("REPRO_SLOW_QUERY_MS")
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        _log.info("slow_query_threshold_invalid", value=raw)
        return None
    return value if value > 0 else None


def maybe_log_slow_query(
    trace: Union[Span, Dict],
    logger: Optional[ObsLogger] = None,
    threshold_ms: Optional[float] = None,
) -> bool:
    """Log ``trace``'s full span tree if it crossed the slow-query threshold.

    ``trace`` is a finished trace root (live :class:`~repro.obs.tracing.Span`
    or its ``to_dict()`` form); ``threshold_ms`` defaults to
    :func:`slow_query_threshold_ms`.  Returns whether a record was emitted —
    the event fires at *info* level: an operator who configured a threshold
    wants to see the offenders.
    """
    threshold = (
        slow_query_threshold_ms() if threshold_ms is None else float(threshold_ms)
    )
    if threshold is None:
        return False
    tree = trace.to_dict() if isinstance(trace, Span) else trace
    duration_ms = float(tree.get("duration_ms", 0.0))
    if duration_ms < threshold:
        return False
    (logger or _log).info(
        "slow_query",
        trace_id=tree.get("trace_id"),
        duration_ms=duration_ms,
        threshold_ms=threshold,
        spans=tree,
    )
    return True


class ProfileCapture:
    """The outcome of one :func:`profile_block` (render with :meth:`text`)."""

    def __init__(self, profile: cProfile.Profile) -> None:
        self._profile = profile

    def text(self, top: int = 25, sort: str = "cumulative") -> str:
        """The profile's top ``top`` functions as ``pstats`` text."""
        buffer = io.StringIO()
        stats = pstats.Stats(self._profile, stream=buffer)
        stats.strip_dirs().sort_stats(sort).print_stats(top)
        return buffer.getvalue()


@contextmanager
def profile_block():
    """Run the enclosed block under ``cProfile``; yields a
    :class:`ProfileCapture` whose stats are available after the block exits.

    >>> with profile_block() as capture:
    ...     sum(range(1000))
    500500
    >>> "function calls" in capture.text(top=5)
    True
    """
    profiler = cProfile.Profile()
    capture = ProfileCapture(profiler)
    profiler.enable()
    try:
        yield capture
    finally:
        profiler.disable()
