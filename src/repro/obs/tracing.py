"""Per-query span trees with cross-process stitching.

A **trace** is one tree of named :class:`Span` objects under a query id.
The id is minted where a query enters the system — the HTTP boundary
(:mod:`repro.serving.http.server`) or
:meth:`repro.serving.SearchService.query` for in-process callers — and the
instrumented stages attach children through :func:`span`, a context manager
that reads the ambient parent from a :class:`contextvars.ContextVar`:

>>> with start_trace("query") as root:
...     with span("candidates", strategy="hybrid") as sp:
...         sp.attributes["candidates"] = 12
...     with span("verify"):
...         with span("encode_chart"):
...             pass
>>> [c["name"] for c in root.to_dict()["children"]]
['candidates', 'verify']

**Tracing off is the default and costs almost nothing**: with no active
trace, :func:`span` returns a shared no-op context manager after a single
``ContextVar.get()`` — the warm serving path stays within its latency
budget whether the instrumentation is compiled in or not
(``benchmarks/test_serving_throughput.py`` measures the overhead).

**Cross-process stitching**: worker processes
(:mod:`repro.serving.workers`) receive the parent's trace id over the
pipe, build their own span trees under it (``shard_score`` →
``encode_chart``, plus a one-time deferred ``rehydrate`` span) and return
them as plain dicts; the parent attaches them with :meth:`Span.attach`.
Only *durations* are recorded — never absolute wall-clock times — so
clock offsets between processes cannot skew a stitched tree.
"""

from __future__ import annotations

import time
import uuid
from contextvars import ContextVar
from typing import Dict, List, Optional, Set, Union

_current_span: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_obs_current_span", default=None
)


def mint_query_id() -> str:
    """A fresh 16-hex-char query/trace id (collision-safe per process fleet)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One named, timed stage of a trace.

    ``children`` may hold live :class:`Span` objects (in-process stages) or
    plain dicts (stitched from another process via :meth:`attach`);
    :meth:`to_dict` renders both uniformly.
    """

    __slots__ = ("name", "trace_id", "attributes", "children", "_start", "duration")

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        attributes: Optional[Dict] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.attributes: Dict = dict(attributes) if attributes else {}
        self.children: List[Union["Span", Dict]] = []
        self._start = time.perf_counter()
        self.duration: Optional[float] = None

    def finish(self) -> "Span":
        if self.duration is None:
            self.duration = time.perf_counter() - self._start
        return self

    def attach(self, child: Union["Span", Dict]) -> None:
        """Adopt a child span — a live :class:`Span` or an already-serialised
        dict tree from another process (worker-pool stitching)."""
        self.children.append(child)

    @property
    def duration_ms(self) -> float:
        elapsed = (
            self.duration
            if self.duration is not None
            else time.perf_counter() - self._start
        )
        return elapsed * 1e3

    def to_dict(self) -> Dict:
        """Serialise the (sub)tree: name, duration, attributes, children.

        The trace id is emitted only where it is set (trace roots — local
        and worker-side), so stitched trees can be checked for id agreement.
        """
        out: Dict = {"name": self.name, "duration_ms": self.duration_ms}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        out["children"] = [
            child.to_dict() if isinstance(child, Span) else child
            for child in self.children
        ]
        return out


def current_span() -> Optional[Span]:
    """The ambient span of this context, or ``None`` (tracing inactive)."""
    return _current_span.get()


def current_trace_id() -> Optional[str]:
    """The ambient trace id, walking no further than the context variable —
    every span created by :func:`start_trace`/:func:`span` inherits it."""
    active = _current_span.get()
    return active.trace_id if active is not None else None


class _NullSpanContext:
    """The shared do-nothing context :func:`span` returns when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_span", "_parent", "_token")

    def __init__(self, parent: Span, name: str, attributes: Dict) -> None:
        self._parent = parent
        self._span = Span(name, trace_id=parent.trace_id, attributes=attributes)
        # Children do not repeat the trace id in their serialised form; it
        # is carried for current_trace_id() and cleared before attach.
        self._token = None

    def __enter__(self) -> Span:
        self._span._start = time.perf_counter()
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span.finish()
        self._span.trace_id = None
        self._parent.attach(self._span)
        _current_span.reset(self._token)
        return False


def span(name: str, **attributes) -> Union[_SpanContext, _NullSpanContext]:
    """Open a child span under the ambient trace (no-op without one).

    Usage::

        with span("verify", shards=3) as sp:
            ...
            if sp is not None:
                sp.attributes["candidates"] = len(ids)

    The yielded value is the live :class:`Span` (mutate ``attributes``
    freely) — or ``None`` when no trace is active, in which case the whole
    call costs one context-variable read and no allocation.
    """
    parent = _current_span.get()
    if parent is None:
        return _NULL_SPAN
    return _SpanContext(parent, name, attributes)


class _TraceContext:
    __slots__ = ("_span", "_token")

    def __init__(self, name: str, trace_id: Optional[str], attributes: Dict) -> None:
        self._span = Span(
            name, trace_id=trace_id or mint_query_id(), attributes=attributes
        )
        self._token = None

    def __enter__(self) -> Span:
        self._span._start = time.perf_counter()
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span.finish()
        _current_span.reset(self._token)
        return False


def start_trace(
    name: str, trace_id: Optional[str] = None, **attributes
) -> _TraceContext:
    """Open a trace root; subsequent :func:`span` calls in this context nest
    under it.  ``trace_id`` defaults to a fresh :func:`mint_query_id` —
    pass one explicitly to join an existing trace from another process.
    """
    return _TraceContext(name, trace_id, attributes)


def stage_names(tree: Union[Span, Dict]) -> Set[str]:
    """Every span name in a (serialised or live) trace tree — the helper the
    acceptance tests use to assert stage coverage."""
    node = tree.to_dict() if isinstance(tree, Span) else tree
    names = {node["name"]}
    for child in node.get("children", ()):
        names |= stage_names(child)
    return names
