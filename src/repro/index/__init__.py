"""``repro.index`` — query-time indexing: interval tree, LSH, hybrid processor."""

from .hybrid import (
    INDEXING_STRATEGIES,
    HybridQueryProcessor,
    IndexBuildStats,
    QueryResult,
)
from .interval_tree import Interval, IntervalTree, build_interval_index
from .lsh import LSHConfig, RandomHyperplaneLSH

__all__ = [
    "HybridQueryProcessor",
    "INDEXING_STRATEGIES",
    "IndexBuildStats",
    "Interval",
    "IntervalTree",
    "LSHConfig",
    "QueryResult",
    "RandomHyperplaneLSH",
    "build_interval_index",
]
