"""Random-hyperplane LSH over learned column embeddings (Sec. VI-A).

Every column of every candidate table is represented by the mean of its
segment embeddings from the trained dataset encoder; the sign pattern of the
embedding against ``num_bits`` random hyperplanes is its binary code, and a
table is indexed under the codes of all its columns.  At query time every
extracted line of the chart is embedded the same way (through the line chart
encoder), hashed, and the tables colliding with any line's code — in the same
bucket or within a small Hamming radius — form the candidate set.

Unlike the interval tree, LSH can prune true positives; Table VIII measures
that trade-off (a large speed-up for a small drop in prec@50/ndcg@50).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class LSHConfig:
    """LSH parameters.

    Attributes
    ----------
    num_bits:
        Number of random hyperplanes (= code length).
    hamming_radius:
        Codes within this Hamming distance of a query code also count as
        collisions (0 = exact bucket match only).
    seed:
        Seed for the random hyperplanes.
    """

    num_bits: int = 12
    hamming_radius: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        if self.hamming_radius < 0:
            raise ValueError("hamming_radius must be >= 0")


class RandomHyperplaneLSH:
    """Sign-random-projection LSH index mapping embeddings to table ids.

    ``dtype`` sets the precision of the hyperplane matrix and of the
    projections (``None`` = float64, the historical behaviour): under a
    float32 model the hyperplanes and every hashed embedding stay float32,
    halving the projection bandwidth.  The hyperplane *values* are drawn in
    float64 and rounded, so float32 codes are computed against the same
    hyperplanes a float64 index uses.
    """

    def __init__(
        self,
        embedding_dim: int,
        config: Optional[LSHConfig] = None,
        dtype=None,
    ) -> None:
        if embedding_dim < 1:
            raise ValueError("embedding_dim must be >= 1")
        self.config = config or LSHConfig()
        self.embedding_dim = embedding_dim
        self.dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
        rng = np.random.default_rng(self.config.seed)
        self._hyperplanes = rng.standard_normal(
            (self.config.num_bits, embedding_dim)
        ).astype(self.dtype, copy=False)
        self._buckets: Dict[int, Set[str]] = defaultdict(set)
        self._codes: Dict[str, Set[int]] = defaultdict(set)

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #
    def hash_vector(self, vector: np.ndarray) -> int:
        """Binary code of ``vector`` packed into an integer."""
        vector = np.asarray(vector, dtype=self.dtype)
        if vector.shape != (self.embedding_dim,):
            raise ValueError(
                f"expected embedding of shape ({self.embedding_dim},), got {vector.shape}"
            )
        bits = (self._hyperplanes @ vector) >= 0
        code = 0
        for bit in bits:
            code = (code << 1) | int(bit)
        return code

    @staticmethod
    def hamming_distance(a: int, b: int) -> int:
        return bin(a ^ b).count("1")

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def add(self, table_id: str, embeddings: np.ndarray) -> None:
        """Index ``table_id`` under the codes of its column embeddings.

        Parameters
        ----------
        embeddings:
            Array of shape ``(num_columns, embedding_dim)``.
        """
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=self.dtype))
        for row in embeddings:
            code = self.hash_vector(row)
            self._buckets[code].add(table_id)
            self._codes[table_id].add(code)

    def add_codes(self, table_id: str, codes: Iterable[int]) -> None:
        """Index ``table_id`` under precomputed codes (snapshot restore).

        Used by ``repro.serving`` persistence to rebuild an index from saved
        codes without re-encoding any table; equivalent to the :meth:`add`
        calls that produced the codes in the first place.
        """
        for code in codes:
            code = int(code)
            self._buckets[code].add(table_id)
            self._codes[table_id].add(code)

    def replace(self, table_id: str, embeddings: np.ndarray) -> None:
        """Atomically refresh ``table_id``'s codes (streaming ingest).

        Equivalent to :meth:`remove` followed by :meth:`add` — used by the
        windowed streaming path when a partially filled tail segment is
        re-encoded and its column embeddings (hence codes) change.
        """
        self.remove(table_id)
        self.add(table_id, embeddings)

    def remove(self, table_id: str) -> bool:
        """Drop ``table_id`` from every bucket; returns whether it was indexed.

        Empty buckets are deleted so the post-removal state is identical to
        an index that never saw the table.
        """
        codes = self._codes.pop(table_id, None)
        if codes is None:
            return False
        for code in codes:
            bucket = self._buckets.get(code)
            if bucket is not None:
                bucket.discard(table_id)
                if not bucket:
                    del self._buckets[code]
        return True

    def export_codes(self) -> Dict[str, List[int]]:
        """Per-table sorted code lists (for persistence round trips)."""
        return {table_id: sorted(codes) for table_id, codes in self._codes.items()}

    def codes_for(self, table_id: str) -> List[int]:
        """The sorted codes of one table (``[]`` if it is not indexed).

        The per-table counterpart of :meth:`export_codes`: the append-only
        snapshot writer uses it to persist only a delta's codes instead of
        exporting the whole index.
        """
        return sorted(self._codes.get(table_id, ()))

    @property
    def buckets(self) -> Dict[int, Set[str]]:
        """A copy of the bucket contents (for parity checks and diagnostics)."""
        return {code: set(table_ids) for code, table_ids in self._buckets.items()}

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    @property
    def indexed_table_ids(self) -> Set[str]:
        return set(self._codes.keys())

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query_code(self, code: int) -> Set[str]:
        """Tables whose codes collide with ``code`` (within the Hamming radius)."""
        radius = self.config.hamming_radius
        if radius == 0:
            return set(self._buckets.get(code, set()))
        matches: Set[str] = set()
        for bucket_code, table_ids in self._buckets.items():
            if self.hamming_distance(code, bucket_code) <= radius:
                matches.update(table_ids)
        return matches

    def query(self, embeddings: np.ndarray) -> Set[str]:
        """Tables colliding with *any* of the query embeddings (chart lines)."""
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=self.dtype))
        result: Set[str] = set()
        for row in embeddings:
            result.update(self.query_code(self.hash_vector(row)))
        return result
