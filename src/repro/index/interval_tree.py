"""Interval tree over column value ranges (Sec. VI-A).

Each column ``C`` of each candidate table is indexed by the interval
``[min(C), sum(C)]`` — the extreme values any of the supported aggregations
of the column could produce.  At query time the y-axis range extracted from
the chart is used as a stabbing/overlap query; every table with at least one
overlapping column survives.  The interval tree never prunes a true positive
(a property the tests verify), so retrieval quality is identical to a linear
scan while the candidate set shrinks.

The implementation is a classic centered interval tree built once over a
static set of intervals (queries are read-only), which matches how the paper
uses it: build offline, query online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.table import Table


@dataclass(frozen=True)
class Interval:
    """A closed interval tagged with the table/column it came from."""

    low: float
    high: float
    table_id: str
    column_name: str

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"interval high ({self.high}) must be >= low ({self.low})"
            )

    def overlaps(self, low: float, high: float) -> bool:
        return self.high >= low and self.low <= high


class _Node:
    """One node of the centered interval tree."""

    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: float, intervals: List[Interval]) -> None:
        self.center = center
        self.by_low = sorted(intervals, key=lambda iv: iv.low)
        self.by_high = sorted(intervals, key=lambda iv: iv.high, reverse=True)
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class IntervalTree:
    """Static centered interval tree supporting overlap queries."""

    def __init__(self, intervals: Optional[Iterable[Interval]] = None) -> None:
        self._intervals: List[Interval] = list(intervals or [])
        self._root: Optional[_Node] = None
        self._built = False
        if self._intervals:
            self.build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, interval: Interval) -> None:
        """Add an interval (invalidates the built tree until :meth:`build`)."""
        self._intervals.append(interval)
        self._built = False

    def add_table(self, table: Table) -> None:
        """Index every column of ``table`` by its ``[min, max(sum, max)]`` interval."""
        for column in table.columns:
            low, high = column.index_interval()
            self.add(Interval(low=low, high=high, table_id=table.table_id, column_name=column.name))

    def build(self) -> "IntervalTree":
        """(Re)build the tree from the currently stored intervals."""
        self._root = self._build(list(self._intervals))
        self._built = True
        return self

    @staticmethod
    def _build(intervals: List[Interval]) -> Optional[_Node]:
        if not intervals:
            return None
        endpoints = sorted({iv.low for iv in intervals} | {iv.high for iv in intervals})
        center = endpoints[len(endpoints) // 2]
        here = [iv for iv in intervals if iv.low <= center <= iv.high]
        left = [iv for iv in intervals if iv.high < center]
        right = [iv for iv in intervals if iv.low > center]
        node = _Node(center, here)
        node.left = IntervalTree._build(left)
        node.right = IntervalTree._build(right)
        return node

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> List[Interval]:
        return list(self._intervals)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(self, low: float, high: float) -> List[Interval]:
        """Return every stored interval overlapping ``[low, high]``."""
        if low > high:
            low, high = high, low
        if not self._built:
            self.build()
        results: List[Interval] = []
        self._query(self._root, low, high, results)
        return results

    def _query(
        self, node: Optional[_Node], low: float, high: float, results: List[Interval]
    ) -> None:
        if node is None:
            return
        if low <= node.center <= high:
            results.extend(node.by_low)
            self._query(node.left, low, high, results)
            self._query(node.right, low, high, results)
            return
        if high < node.center:
            # Only intervals starting at or below ``high`` can overlap.
            for interval in node.by_low:
                if interval.low > high:
                    break
                results.append(interval)
            self._query(node.left, low, high, results)
        else:
            # Only intervals ending at or above ``low`` can overlap.
            for interval in node.by_high:
                if interval.high < low:
                    break
                results.append(interval)
            self._query(node.right, low, high, results)

    def query_table_ids(self, low: float, high: float) -> Set[str]:
        """Ids of tables having at least one column overlapping ``[low, high]``."""
        return {interval.table_id for interval in self.query(low, high)}


def build_interval_index(tables: Sequence[Table]) -> IntervalTree:
    """Convenience: build the index over a whole repository."""
    tree = IntervalTree()
    for table in tables:
        tree.add_table(table)
    return tree.build()
