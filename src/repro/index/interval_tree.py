"""Interval tree over column value ranges (Sec. VI-A).

Each column ``C`` of each candidate table is indexed by the interval
``[min(C), sum(C)]`` — the extreme values any of the supported aggregations
of the column could produce.  At query time the y-axis range extracted from
the chart is used as a stabbing/overlap query; every table with at least one
overlapping column survives.  The interval tree never prunes a true positive
(a property the tests verify), so retrieval quality is identical to a linear
scan while the candidate set shrinks.

The implementation is a classic centered interval tree plus the two pieces a
*serving* deployment needs on top of the paper's build-offline/query-online
usage (see ``repro.serving``):

* **incremental adds** — intervals added after :meth:`build` land in a small
  pending buffer that queries scan linearly, so a handful of new tables never
  trigger an O(n log n) rebuild;
* **tombstone removes** — :meth:`remove_table` marks a table id dead without
  touching the tree; queries filter tombstoned intervals out.

Both are *exact*: query answers are always identical to rebuilding from
scratch over the live intervals (a property the tests verify).  When the
pending buffer or the tombstone set grows past a fraction of the tree, the
structure compacts itself with a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.table import Table


@dataclass(frozen=True)
class Interval:
    """A closed interval tagged with the table/column it came from."""

    low: float
    high: float
    table_id: str
    column_name: str

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"interval high ({self.high}) must be >= low ({self.low})"
            )

    def overlaps(self, low: float, high: float) -> bool:
        return self.high >= low and self.low <= high


class _Node:
    """One node of the centered interval tree."""

    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: float, intervals: List[Interval]) -> None:
        self.center = center
        self.by_low = sorted(intervals, key=lambda iv: iv.low)
        self.by_high = sorted(intervals, key=lambda iv: iv.high, reverse=True)
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class IntervalTree:
    """Centered interval tree with incremental adds and tombstone removes.

    Queries over any interleaving of :meth:`add` / :meth:`remove_table` calls
    return exactly what a from-scratch rebuild over the live intervals would;
    :meth:`build` (also triggered automatically once the pending buffer or
    tombstone set grows past :attr:`COMPACT_FRACTION` of the tree) compacts
    the incremental state back into a pure tree.
    """

    #: Minimum incremental-state size before an automatic compaction.
    COMPACT_MIN = 64
    #: Fraction of the built tree the pending buffer / tombstoned intervals
    #: may reach before an automatic compaction.
    COMPACT_FRACTION = 0.25

    def __init__(self, intervals: Optional[Iterable[Interval]] = None) -> None:
        self._tree_intervals: List[Interval] = []  # what the built tree covers
        self._pending: List[Interval] = list(intervals or [])
        self._removed: Set[str] = set()  # tombstoned table ids
        self._num_tombstoned = 0  # tree intervals covered by tombstones
        self._root: Optional[_Node] = None
        self._built = False
        if self._pending:
            self.build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, interval: Interval) -> None:
        """Add an interval.

        Before the first :meth:`build` this stages the interval for the
        initial bulk construction; afterwards it lands in the pending buffer
        (scanned linearly by queries) so incremental adds stay cheap.
        """
        if interval.table_id in self._removed:
            # Re-adding a tombstoned table: materialise the tombstone first
            # so the stale tree copies cannot resurrect alongside the new one.
            self.build()
        self._pending.append(interval)
        if self._built:
            self._maybe_compact()

    def add_table(self, table: Table) -> None:
        """Index every column of ``table`` by its ``[min, max(sum, max)]`` interval.

        Payloads are coerced to Python floats, so intervals are identical
        whatever precision the column arrays carry (float32 tables hash,
        snapshot and compare exactly like float64 ones).
        """
        for column in table.columns:
            low, high = column.index_interval()
            self.add(
                Interval(
                    low=float(low),
                    high=float(high),
                    table_id=table.table_id,
                    column_name=column.name,
                )
            )

    def replace_table(self, table: Table) -> None:
        """Atomically refresh every interval of ``table`` (streaming ingest).

        Equivalent to ``remove_table`` followed by ``add_table`` — the
        idiom of the windowed streaming path, where a partially filled tail
        window is re-encoded on every append batch and its (segment-id)
        intervals must track the new content.  Exactness is inherited: the
        re-add of a tombstoned id compacts first, so a stale tree copy can
        never resurrect alongside the replacement.
        """
        self.remove_table(table.table_id)
        self.add_table(table)

    def remove_table(self, table_id: str) -> int:
        """Drop every interval of ``table_id``; returns how many were removed.

        Tree-resident intervals are tombstoned (filtered out of query
        results) rather than physically deleted; pending intervals are
        dropped immediately.  Compaction reclaims tombstones.
        """
        removed = 0
        kept: List[Interval] = []
        for interval in self._pending:
            if interval.table_id == table_id:
                removed += 1
            else:
                kept.append(interval)
        self._pending = kept
        if table_id not in self._removed:
            in_tree = sum(
                1 for interval in self._tree_intervals if interval.table_id == table_id
            )
            if in_tree:
                self._removed.add(table_id)
                self._num_tombstoned += in_tree
                removed += in_tree
        if self._built:
            self._maybe_compact()
        return removed

    def build(self) -> "IntervalTree":
        """(Re)build the tree over the live intervals (compacts tombstones)."""
        live = self.intervals
        self._tree_intervals = live
        self._pending = []
        self._removed = set()
        self._num_tombstoned = 0
        self._root = self._build(list(live))
        self._built = True
        return self

    def _maybe_compact(self) -> None:
        threshold = max(self.COMPACT_MIN, int(self.COMPACT_FRACTION * len(self._tree_intervals)))
        if len(self._pending) > threshold or self._num_tombstoned > threshold:
            self.build()

    @staticmethod
    def _build(intervals: List[Interval]) -> Optional[_Node]:
        if not intervals:
            return None
        endpoints = sorted({iv.low for iv in intervals} | {iv.high for iv in intervals})
        center = endpoints[len(endpoints) // 2]
        here = [iv for iv in intervals if iv.low <= center <= iv.high]
        left = [iv for iv in intervals if iv.high < center]
        right = [iv for iv in intervals if iv.low > center]
        node = _Node(center, here)
        node.left = IntervalTree._build(left)
        node.right = IntervalTree._build(right)
        return node

    def __len__(self) -> int:
        if not self._removed:
            return len(self._tree_intervals) + len(self._pending)
        return len(self.intervals)

    @property
    def intervals(self) -> List[Interval]:
        """The live intervals (tombstoned ones excluded, pending included)."""
        live = [
            interval
            for interval in self._tree_intervals
            if interval.table_id not in self._removed
        ]
        live.extend(self._pending)
        return live

    def intervals_for_tables(self, table_ids: Iterable[str]) -> List[Interval]:
        """The live intervals belonging to the given table ids.

        Used by the append-only snapshot writer (``repro.serving.persistence``)
        to persist only a delta's intervals instead of the whole tree.
        """
        wanted = set(table_ids)
        return [iv for iv in self.intervals if iv.table_id in wanted]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(self, low: float, high: float) -> List[Interval]:
        """Return every live interval overlapping ``[low, high]``.

        Tree hits are filtered against the tombstone set and the pending
        buffer is scanned linearly, so the answer is identical to rebuilding
        from scratch over :attr:`intervals`.
        """
        if low > high:
            low, high = high, low
        if not self._built:
            self.build()
        results: List[Interval] = []
        self._query(self._root, low, high, results)
        if self._removed:
            results = [
                interval for interval in results if interval.table_id not in self._removed
            ]
        for interval in self._pending:
            if interval.overlaps(low, high):
                results.append(interval)
        return results

    def _query(
        self, node: Optional[_Node], low: float, high: float, results: List[Interval]
    ) -> None:
        if node is None:
            return
        if low <= node.center <= high:
            results.extend(node.by_low)
            self._query(node.left, low, high, results)
            self._query(node.right, low, high, results)
            return
        if high < node.center:
            # Only intervals starting at or below ``high`` can overlap.
            for interval in node.by_low:
                if interval.low > high:
                    break
                results.append(interval)
            self._query(node.left, low, high, results)
        else:
            # Only intervals ending at or above ``low`` can overlap.
            for interval in node.by_high:
                if interval.high < low:
                    break
                results.append(interval)
            self._query(node.right, low, high, results)

    def query_table_ids(self, low: float, high: float) -> Set[str]:
        """Ids of tables having at least one column overlapping ``[low, high]``."""
        return {interval.table_id for interval in self.query(low, high)}


def build_interval_index(tables: Sequence[Table]) -> IntervalTree:
    """Convenience: build the index over a whole repository."""
    tree = IntervalTree()
    for table in tables:
        tree.add_table(table)
    return tree.build()
