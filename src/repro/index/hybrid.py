"""Hybrid index and query processor (Sec. VI-A).

Four query-processing strategies are compared in Table VIII:

* **no index** — score every table with FCM (linear scan);
* **interval tree** — only tables whose column ranges overlap the query's
  y-axis range are scored (never loses a true candidate);
* **LSH** — only tables whose column codes collide with a query line's code
  are scored (may lose candidates, bigger reduction);
* **hybrid** — the intersection of the two candidate sets.

The query processor measures the candidate-set sizes and wall-clock time per
query so the efficiency/effectiveness trade-off of Table VIII can be
reproduced directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.table import Table
from ..fcm.scorer import FCMScorer
from ..obs import span
from .interval_tree import IntervalTree
from .lsh import LSHConfig, RandomHyperplaneLSH

INDEXING_STRATEGIES = ("none", "interval", "lsh", "hybrid")


@dataclass
class QueryResult:
    """Outcome of one indexed query."""

    ranking: List[Tuple[str, float]]
    candidates: int
    total_tables: int
    seconds: float
    #: Candidates surviving the quantized pre-filter (``None`` when the
    #: pre-filter was off or did not engage because the candidate set was
    #: already at or below the keep budget).
    prefiltered: Optional[int] = None

    @property
    def pruned_fraction(self) -> float:
        if self.total_tables == 0:
            return 0.0
        return 1.0 - self.candidates / self.total_tables

    def top_k_ids(self, k: int) -> List[str]:
        return [table_id for table_id, _ in self.ranking[:k]]


@dataclass
class IndexBuildStats:
    """Time spent building each index structure."""

    interval_seconds: float = 0.0
    lsh_seconds: float = 0.0
    num_tables: int = 0


class HybridQueryProcessor:
    """Candidate generation (interval tree + LSH) followed by FCM verification."""

    def __init__(
        self,
        scorer: FCMScorer,
        lsh_config: Optional[LSHConfig] = None,
    ) -> None:
        self.scorer = scorer
        self.lsh_config = lsh_config or LSHConfig()
        self.interval_tree = IntervalTree()
        self.lsh: Optional[RandomHyperplaneLSH] = None
        self.build_stats = IndexBuildStats()
        # ``None`` values mark tables known only through a restored snapshot
        # (their encodings are cached, the raw Table object was not saved).
        self._tables: Dict[str, Optional[Table]] = {}
        # Streaming tables: parent id -> ordered window-segment ids.  The
        # segments live in the index structures and the scorer's encoding
        # cache; the parent lives in ``_tables`` (value ``None``) so queries
        # rank parents, never raw segments.  ``stream_states`` carries the
        # append-engine bookkeeping (row counts, unsealed tail rows) owned by
        # ``repro.serving.streaming`` — kept here so persistence can snapshot
        # and restore it without an import cycle.
        self._streams: Dict[str, List[str]] = {}
        self.stream_states: Dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    # Build phase
    # ------------------------------------------------------------------ #
    def index_repository(self, tables: Iterable[Table]) -> IndexBuildStats:
        """Encode every table with FCM and build both index structures.

        This is a **from-scratch (re)build**: the interval tree, the LSH and
        the table registry are replaced wholesale, so calling it again on a
        long-lived processor leaves every strategy consistent with exactly
        the tables passed (previously cached encodings stay in the scorer —
        re-indexing a known table is free).  Use :meth:`add_tables` /
        :meth:`remove_tables` for incremental maintenance.

        Table encoding runs through the scorer's chunked padded-batch path
        (:meth:`FCMScorer.index_repository`): one masked dataset-encoder
        transformer call per chunk of tables instead of one call per table,
        producing the same cached encodings the per-table path would.
        """
        tables = list(tables)
        for parent_id in list(self._streams):
            for seg_id in self.scorer.drop_stream(parent_id):
                self.scorer.evict_table(seg_id)
        self._streams = {}
        self.stream_states = {}
        self._tables = {table.table_id: table for table in tables}
        self.scorer.index_repository(tables)

        start = time.perf_counter()
        self.interval_tree = IntervalTree()
        for table in tables:
            self.interval_tree.add_table(table)
        self.interval_tree.build()
        interval_seconds = time.perf_counter() - start

        start = time.perf_counter()
        embedding_dim = self.scorer.config.embed_dim
        self.lsh = RandomHyperplaneLSH(
            embedding_dim,
            config=self.lsh_config,
            dtype=self.scorer.config.numeric_dtype,
        )
        for table in tables:
            encoded = self.scorer.encoded_table(table.table_id)
            self.lsh.add(table.table_id, encoded.column_embeddings)
        lsh_seconds = time.perf_counter() - start

        self.build_stats = IndexBuildStats(
            interval_seconds=interval_seconds,
            lsh_seconds=lsh_seconds,
            num_tables=len(self._tables),
        )
        return self.build_stats

    # ------------------------------------------------------------------ #
    # Incremental maintenance (see repro.serving.SearchService)
    # ------------------------------------------------------------------ #
    def _ensure_lsh(self) -> RandomHyperplaneLSH:
        if self.lsh is None:
            self.lsh = RandomHyperplaneLSH(
                self.scorer.config.embed_dim,
                config=self.lsh_config,
                dtype=self.scorer.config.numeric_dtype,
            )
        return self.lsh

    def add_tables(self, tables: Iterable[Table]) -> IndexBuildStats:
        """Incrementally index new tables without rebuilding anything.

        Encodings run through the same chunked batched path as a bulk build;
        the interval tree absorbs the new intervals into its pending buffer
        and the LSH gains the new codes, so subsequent queries are identical
        to a from-scratch :meth:`index_repository` over the union (a property
        ``tests/test_serving.py`` pins).  Already-indexed table ids are
        skipped.  Build timings accumulate into :attr:`build_stats`.
        """
        new_tables = [t for t in tables if t.table_id not in self._tables]
        for table in new_tables:
            self._tables[table.table_id] = table
        if not new_tables:
            self.build_stats.num_tables = len(self._tables)
            return self.build_stats
        self.scorer.index_repository(new_tables)

        start = time.perf_counter()
        for table in new_tables:
            self.interval_tree.add_table(table)
        interval_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lsh = self._ensure_lsh()
        for table in new_tables:
            encoded = self.scorer.encoded_table(table.table_id)
            lsh.add(table.table_id, encoded.column_embeddings)
        lsh_seconds = time.perf_counter() - start

        self.build_stats.interval_seconds += interval_seconds
        self.build_stats.lsh_seconds += lsh_seconds
        self.build_stats.num_tables = len(self._tables)
        return self.build_stats

    def remove_tables(self, table_ids: Iterable[str]) -> int:
        """Drop tables from every structure; returns how many were removed.

        Interval-tree entries are tombstoned (reclaimed on compaction), LSH
        buckets shed the ids immediately, and the scorer's cached encodings
        are evicted so the memory actually comes back.
        """
        removed = 0
        for table_id in table_ids:
            if table_id not in self._tables:
                continue
            del self._tables[table_id]
            if table_id in self._streams:
                # A streaming table lives in the structures as its window
                # segments: drop each segment everywhere, then the family.
                for seg_id in self._streams.pop(table_id):
                    self.interval_tree.remove_table(seg_id)
                    if self.lsh is not None:
                        self.lsh.remove(seg_id)
                    self.scorer.evict_table(seg_id)
                self.scorer.drop_stream(table_id)
                self.stream_states.pop(table_id, None)
            else:
                self.interval_tree.remove_table(table_id)
                if self.lsh is not None:
                    self.lsh.remove(table_id)
                self.scorer.evict_table(table_id)
            removed += 1
        self.build_stats.num_tables = len(self._tables)
        return removed

    def register_table(self, table_id: str, table: Optional[Table] = None) -> None:
        """Track ``table_id`` as part of the repository (snapshot restore).

        The serving persistence layer registers ids whose encodings were
        loaded from disk; the raw :class:`Table` is optional because queries
        only touch the cached encodings and index structures.
        """
        self._tables[table_id] = table
        self.build_stats.num_tables = len(self._tables)

    def register_stream(
        self,
        parent_id: str,
        segment_ids: Sequence[str],
        state: Optional[dict] = None,
    ) -> None:
        """Track ``parent_id`` as a streaming table made of ``segment_ids``.

        Called by the append engine (``repro.serving.streaming``) when a
        stream is created or its segment family changes, and by the
        persistence layer when restoring a snapshot that carried streams.
        The segments must already be encoded in the scorer; the parent is
        registered as a queryable id backed by the scorer's composed entry.
        """
        self._tables[parent_id] = None
        self._streams[parent_id] = list(segment_ids)
        if state is not None:
            self.stream_states[parent_id] = state
        self.scorer.bind_stream(parent_id, segment_ids)
        self.build_stats.num_tables = len(self._tables)

    @property
    def streams(self) -> Dict[str, List[str]]:
        """Parent id -> ordered segment ids for every streaming table."""
        return {parent: list(segs) for parent, segs in self._streams.items()}

    @property
    def table_ids(self) -> List[str]:
        return list(self._tables.keys())

    @property
    def persisted_table_ids(self) -> List[str]:
        """The ids whose encodings a snapshot must carry.

        Static tables persist as themselves; a streaming table persists as
        its window segments (the parent's composed entry is derived state,
        rebuilt from the segments on load), so parents are replaced by their
        segment families here.
        """
        ids = [tid for tid in self._tables if tid not in self._streams]
        for parent in self._streams:
            ids.extend(self._streams[parent])
        return ids

    def _to_parents(self, found: Set[str]) -> Set[str]:
        """Map segment ids in a raw candidate set to their stream parents."""
        if not self._streams:
            return found
        owner = self.scorer.segment_owner
        return {owner(table_id) or table_id for table_id in found}

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def _interval_candidates(self, chart_input) -> Set[str]:
        low, high = chart_input.y_range
        return self.interval_tree.query_table_ids(low, high)

    def _lsh_candidates(self, chart: LineChart) -> Set[str]:
        if self.lsh is None:
            raise RuntimeError("index_repository() must be called before querying")
        line_embeddings = self.scorer.query_line_embeddings(chart)
        return self.lsh.query(line_embeddings)

    def candidates(self, chart: LineChart, strategy: str) -> Set[str]:
        """The candidate table ids a strategy would verify with FCM."""
        if strategy not in INDEXING_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {INDEXING_STRATEGIES}"
            )
        all_ids = set(self._tables.keys())
        if strategy == "none":
            return all_ids
        chart_input = self.scorer.prepare_query(chart)
        # Streaming tables are indexed as window segments, so raw index hits
        # are mapped segment -> parent *before* intersecting: a hit on any
        # window of a stream makes the whole stream a candidate.
        if strategy == "interval":
            with span("interval_tree") as sp:
                found = self._to_parents(self._interval_candidates(chart_input))
                found &= all_ids
                if sp is not None:
                    sp.attributes["candidates"] = len(found)
            return found
        if strategy == "lsh":
            with span("lsh_lookup") as sp:
                found = self._to_parents(self._lsh_candidates(chart)) & all_ids
                if sp is not None:
                    sp.attributes["candidates"] = len(found)
            return found
        with span("interval_tree") as sp:
            interval_set = self._to_parents(self._interval_candidates(chart_input))
            if sp is not None:
                sp.attributes["candidates"] = len(interval_set)
        with span("lsh_lookup") as sp:
            lsh_set = self._to_parents(self._lsh_candidates(chart))
            if sp is not None:
                sp.attributes["candidates"] = len(lsh_set)
        return interval_set & lsh_set & all_ids

    # ------------------------------------------------------------------ #
    # Query phase
    # ------------------------------------------------------------------ #
    def query(
        self,
        chart: LineChart,
        k: int,
        strategy: str = "hybrid",
        num_verify_shards: int = 1,
        verifier: Optional[Callable[..., Optional[Dict[str, float]]]] = None,
        prefilter_keep: Optional[int] = None,
        fused: Optional[bool] = None,
    ) -> QueryResult:
        """Run one top-``k`` query under the chosen indexing strategy.

        ``num_verify_shards > 1`` splits candidate verification into that
        many stacked matcher forwards instead of one, bounding the padded
        batch size on very large repositories; scores (hence rankings) are
        unchanged — only the batch composition per forward differs.

        ``verifier`` optionally replaces the in-process verification stage:
        it is called as ``verifier(chart_input, ordered_ids, num_shards)``
        and must return ``{table_id: score}`` covering every candidate — or
        ``None`` to decline, in which case verification runs in-process as
        usual.  This is the hook the serving layer routes its process-level
        :class:`~repro.serving.workers.QueryWorkerPool` through (returning
        ``None`` on any pool failure, so a query is never lost to a dead
        worker).

        ``prefilter_keep`` (when set) runs the int8 quantized pre-filter
        before verification whenever more candidates than that survive the
        index strategies: only the best ``prefilter_keep`` by the cheap proxy
        score go on to exact scoring (in-process *or* worker-pool — the
        reduction happens before the shard split).  ``fused`` is forwarded to
        the in-process scoring path (see
        :meth:`FCMScorer.score_encoded_batch`).
        """
        start = time.perf_counter()
        with span("candidates", strategy=strategy) as sp:
            candidate_ids = self.candidates(chart, strategy)
            if not candidate_ids:
                # An over-aggressive filter should degrade, not crash: fall
                # back to verifying everything (still counted in the timing).
                candidate_ids = set(self._tables.keys())
                if sp is not None:
                    sp.attributes["empty_fallback"] = True
            if sp is not None:
                sp.attributes["candidates"] = len(candidate_ids)
                sp.attributes["total_tables"] = len(self._tables)
        # FCM verification runs the batched no-grad path: one stacked matcher
        # forward per shard scores every surviving candidate.
        ordered = sorted(candidate_ids)
        prefiltered: Optional[int] = None
        if prefilter_keep is not None and 0 < prefilter_keep < len(ordered):
            with span(
                "prefilter", candidates=len(ordered), keep=int(prefilter_keep)
            ):
                ordered = self.scorer.prefilter_ids(
                    self.scorer.prepare_query(chart), ordered, int(prefilter_keep)
                )
            prefiltered = len(ordered)
        num_shards = max(1, min(int(num_verify_shards), len(ordered) or 1))
        scores: Optional[Dict[str, float]] = None
        with span("verify", shards=num_shards, candidates=len(ordered)) as sp:
            if verifier is not None:
                scores = verifier(
                    self.scorer.prepare_query(chart), ordered, num_shards
                )
                if sp is not None:
                    sp.attributes["via_worker_pool"] = scores is not None
            if scores is None:
                if num_shards == 1:
                    scores = self.scorer.score_chart_batch(
                        chart, table_ids=ordered, fused=fused
                    )
                else:
                    shard_size = -(-len(ordered) // num_shards)  # ceil division
                    scores = {}
                    for shard_start in range(0, len(ordered), shard_size):
                        scores.update(
                            self.scorer.score_chart_batch(
                                chart,
                                table_ids=ordered[
                                    shard_start : shard_start + shard_size
                                ],
                                fused=fused,
                            )
                        )
        with span("merge", scored=len(scores)):
            ranking = sorted(scores.items(), key=lambda item: item[1], reverse=True)[
                :k
            ]
        elapsed = time.perf_counter() - start
        return QueryResult(
            ranking=ranking,
            candidates=len(candidate_ids),
            total_tables=len(self._tables),
            seconds=elapsed,
            prefiltered=prefiltered,
        )
