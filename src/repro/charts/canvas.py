"""Low-level raster drawing primitives.

The canvas is a greyscale image (float array in ``[0, 1]``, ink = 1.0 on a
0.0 background) plus a per-pixel class mask and optional per-instance masks,
which is exactly the training example format of LineChartSeg (Sec. IV-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class Canvas:
    """A drawable greyscale image with synchronized segmentation masks."""

    def __init__(self, height: int, width: int) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.height = height
        self.width = width
        self.image = np.zeros((height, width), dtype=np.float64)
        self.class_mask = np.zeros((height, width), dtype=np.int8)
        self.instance_masks: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Mask management
    # ------------------------------------------------------------------ #
    def new_instance(self, name: str) -> np.ndarray:
        """Register (or return) a boolean instance mask for ``name``."""
        if name not in self.instance_masks:
            self.instance_masks[name] = np.zeros((self.height, self.width), dtype=bool)
        return self.instance_masks[name]

    def _paint(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        intensity: float,
        class_id: int,
        instance: Optional[str],
    ) -> None:
        """Set pixels at (rows, cols), clipping out-of-bounds coordinates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        valid = (rows >= 0) & (rows < self.height) & (cols >= 0) & (cols < self.width)
        rows, cols = rows[valid], cols[valid]
        if rows.size == 0:
            return
        self.image[rows, cols] = np.maximum(self.image[rows, cols], intensity)
        self.class_mask[rows, cols] = class_id
        if instance is not None:
            self.new_instance(instance)[rows, cols] = True

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    def draw_pixel(
        self,
        row: int,
        col: int,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
    ) -> None:
        self._paint(np.array([row]), np.array([col]), intensity, class_id, instance)

    def draw_horizontal_line(
        self,
        row: int,
        col_start: int,
        col_end: int,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
    ) -> None:
        cols = np.arange(min(col_start, col_end), max(col_start, col_end) + 1)
        rows = np.full_like(cols, row)
        self._paint(rows, cols, intensity, class_id, instance)

    def draw_vertical_line(
        self,
        col: int,
        row_start: int,
        row_end: int,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
    ) -> None:
        rows = np.arange(min(row_start, row_end), max(row_start, row_end) + 1)
        cols = np.full_like(rows, col)
        self._paint(rows, cols, intensity, class_id, instance)

    def draw_segment(
        self,
        row0: int,
        col0: int,
        row1: int,
        col1: int,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
        thickness: int = 1,
    ) -> None:
        """Draw a straight segment between two pixel coordinates (DDA walk)."""
        steps = int(max(abs(row1 - row0), abs(col1 - col0), 1))
        t = np.linspace(0.0, 1.0, steps + 1)
        rows = np.round(row0 + (row1 - row0) * t).astype(np.int64)
        cols = np.round(col0 + (col1 - col0) * t).astype(np.int64)
        self._paint(rows, cols, intensity, class_id, instance)
        # Thickness is applied by stacking vertically shifted copies, which is
        # adequate for the thin lines a chart uses.
        for offset in range(1, thickness):
            self._paint(rows + offset, cols, intensity, class_id, instance)
            self._paint(rows - offset, cols, intensity, class_id, instance)

    def draw_polyline(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
        thickness: int = 1,
    ) -> None:
        """Draw connected segments through the given pixel coordinates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("polyline rows/cols must be 1-D arrays of equal length")
        if rows.size == 1:
            self.draw_pixel(int(rows[0]), int(cols[0]), intensity, class_id, instance)
            return
        for i in range(rows.size - 1):
            self.draw_segment(
                int(rows[i]),
                int(cols[i]),
                int(rows[i + 1]),
                int(cols[i + 1]),
                intensity=intensity,
                class_id=class_id,
                instance=instance,
                thickness=thickness,
            )

    def blit(
        self,
        bitmap: np.ndarray,
        top: int,
        left: int,
        intensity: float = 1.0,
        class_id: int = 0,
        instance: Optional[str] = None,
    ) -> None:
        """Copy a binary bitmap (e.g. a rendered tick label) onto the canvas."""
        bitmap = np.asarray(bitmap)
        rows, cols = np.nonzero(bitmap > 0.5)
        self._paint(rows + top, cols + left, intensity, class_id, instance)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def crop(self, top: int, bottom: int, left: int, right: int) -> np.ndarray:
        """Return the image crop ``[top:bottom, left:right]``."""
        return self.image[top:bottom, left:right]

    def instance_names(self) -> List[str]:
        return list(self.instance_masks.keys())

    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        return self.image, self.class_mask, dict(self.instance_masks)
