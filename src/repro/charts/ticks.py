"""Axis tick computation and a tiny bitmap font for tick labels.

The y-axis ticks are one of the two essential visual elements the paper's
visual element extractor recovers from a chart (they give the value range
used both to filter candidate columns and to query the interval-tree index).
Tick *values* therefore need to be readable from the rendered pixels.  We
render each tick label with a minimal 3x5 bitmap font; the extractor in
``repro.vision`` decodes them by template matching, mirroring the role OCR
plays for real charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

#: 3x5 bitmap glyphs for the characters tick labels can contain.
GLYPHS: Dict[str, np.ndarray] = {
    "0": np.array([[1, 1, 1], [1, 0, 1], [1, 0, 1], [1, 0, 1], [1, 1, 1]]),
    "1": np.array([[0, 1, 0], [1, 1, 0], [0, 1, 0], [0, 1, 0], [1, 1, 1]]),
    "2": np.array([[1, 1, 1], [0, 0, 1], [1, 1, 1], [1, 0, 0], [1, 1, 1]]),
    "3": np.array([[1, 1, 1], [0, 0, 1], [0, 1, 1], [0, 0, 1], [1, 1, 1]]),
    "4": np.array([[1, 0, 1], [1, 0, 1], [1, 1, 1], [0, 0, 1], [0, 0, 1]]),
    "5": np.array([[1, 1, 1], [1, 0, 0], [1, 1, 1], [0, 0, 1], [1, 1, 1]]),
    "6": np.array([[1, 1, 1], [1, 0, 0], [1, 1, 1], [1, 0, 1], [1, 1, 1]]),
    "7": np.array([[1, 1, 1], [0, 0, 1], [0, 1, 0], [0, 1, 0], [0, 1, 0]]),
    "8": np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1], [1, 0, 1], [1, 1, 1]]),
    "9": np.array([[1, 1, 1], [1, 0, 1], [1, 1, 1], [0, 0, 1], [1, 1, 1]]),
    "-": np.array([[0, 0, 0], [0, 0, 0], [1, 1, 1], [0, 0, 0], [0, 0, 0]]),
    ".": np.array([[0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 1, 0]]),
    "e": np.array([[0, 0, 0], [1, 1, 1], [1, 1, 0], [1, 0, 0], [1, 1, 1]]),
}

GLYPH_HEIGHT = 5
GLYPH_WIDTH = 3
GLYPH_SPACING = 1


@dataclass(frozen=True)
class Tick:
    """A single y-axis tick: its numeric value and pixel row."""

    value: float
    pixel_row: int
    label: str


def nice_ticks(low: float, high: float, count: int) -> List[float]:
    """Return evenly spaced "nice" tick values covering ``[low, high]``.

    The raw step ``(high - low) / (count - 1)`` is rounded up to 1/2/2.5/5/10
    times a power of ten (the standard heuristic used by plotting libraries);
    ticks then run from ``floor(low / step) * step`` to the first multiple of
    ``step`` at or above ``high``, so the data range is always fully covered.
    The number of returned ticks is approximately ``count`` (never fewer than
    two) but may differ by one or two depending on rounding.
    """
    if count < 2:
        raise ValueError("at least two ticks are required")
    if high < low:
        low, high = high, low
    if np.isclose(high, low):
        high = low + 1.0
    raw_step = (high - low) / (count - 1)
    magnitude = 10.0 ** np.floor(np.log10(raw_step))
    residual = raw_step / magnitude
    if residual <= 1.0:
        nice = 1.0
    elif residual <= 2.0:
        nice = 2.0
    elif residual <= 2.5:
        nice = 2.5
    elif residual <= 5.0:
        nice = 5.0
    else:
        nice = 10.0
    step = nice * magnitude
    start = np.floor(low / step) * step
    end = np.ceil(high / step) * step
    num_ticks = int(round((end - start) / step)) + 1
    ticks = [start + i * step for i in range(max(num_ticks, 2))]
    return [float(round(t, 10)) for t in ticks]


def format_tick(value: float) -> str:
    """Format a tick value compactly with at most three significant digits."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10000 or magnitude < 0.01:
        text = f"{value:.1e}"
        # Compact exponent form: 1.5e+04 -> 1.5e4
        mantissa, exponent = text.split("e")
        return f"{mantissa}e{int(exponent)}"
    if magnitude >= 100:
        return f"{value:.0f}"
    if magnitude >= 1:
        text = f"{value:.1f}"
    else:
        text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def parse_tick_label(label: str) -> float:
    """Parse a label produced by :func:`format_tick` back into a float."""
    return float(label)


def render_text(text: str) -> np.ndarray:
    """Render ``text`` into a binary bitmap using the 3x5 glyph set.

    Unknown characters raise ``KeyError`` so that formatting bugs surface
    loudly instead of producing unreadable labels.
    """
    if not text:
        return np.zeros((GLYPH_HEIGHT, 0))
    glyphs = [GLYPHS[ch] for ch in text]
    width = len(glyphs) * GLYPH_WIDTH + (len(glyphs) - 1) * GLYPH_SPACING
    bitmap = np.zeros((GLYPH_HEIGHT, width))
    col = 0
    for glyph in glyphs:
        bitmap[:, col : col + GLYPH_WIDTH] = glyph
        col += GLYPH_WIDTH + GLYPH_SPACING
    return bitmap


def match_text(bitmap: np.ndarray) -> str:
    """Decode a bitmap produced by :func:`render_text` via template matching.

    The decoder splits the bitmap into glyph-width cells and picks, for each
    cell, the glyph with the smallest Hamming distance.  It tolerates small
    amounts of noise, mirroring how an OCR model behaves on clean charts.
    """
    if bitmap.size == 0:
        return ""
    binary = (np.asarray(bitmap) > 0.5).astype(np.int8)
    height, width = binary.shape
    if height != GLYPH_HEIGHT:
        raise ValueError(f"expected bitmap height {GLYPH_HEIGHT}, got {height}")
    stride = GLYPH_WIDTH + GLYPH_SPACING
    chars: List[str] = []
    col = 0
    while col + GLYPH_WIDTH <= width:
        cell = binary[:, col : col + GLYPH_WIDTH]
        if cell.sum() == 0 and not chars:
            col += stride
            continue
        best_char, best_dist = None, None
        for char, glyph in GLYPHS.items():
            dist = int(np.abs(cell - glyph).sum())
            if best_dist is None or dist < best_dist:
                best_char, best_dist = char, dist
        chars.append(best_char or "")
        col += stride
    return "".join(chars)


def compute_ticks(
    low: float, high: float, count: int, plot_top: int, plot_bottom: int
) -> Tuple[List[Tick], Tuple[float, float]]:
    """Compute tick values, labels and pixel rows for a y-axis.

    Returns the tick list and the actual (value_low, value_high) range the
    axis covers (the first and last tick values), which is what the value →
    pixel mapping of the rasteriser uses.
    """
    values = nice_ticks(low, high, count)
    value_low, value_high = values[0], values[-1]
    span = max(value_high - value_low, 1e-12)
    ticks = []
    for value in values:
        # Row 0 is the top of the image; larger values sit higher (smaller row).
        frac = (value - value_low) / span
        row = int(round(plot_bottom - frac * (plot_bottom - plot_top)))
        ticks.append(Tick(value=value, pixel_row=row, label=format_tick(value)))
    return ticks, (value_low, value_high)
