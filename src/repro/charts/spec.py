"""Chart specification: geometry and styling of the rendered line chart.

The rasteriser (``repro.charts.rasterizer``) is this reproduction's stand-in
for Plotly image export.  ``ChartSpec`` fixes the image geometry so that the
segment-level line chart encoder can rely on a constant image width ``W`` and
segment width ``P1`` (Sec. IV-B: ``N1 = W / P1`` segments per line).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Class ids used by the segmentation masks (LineChartSeg, Sec. IV-A).
MASK_BACKGROUND = 0
MASK_LINE = 1
MASK_Y_TICK = 2
MASK_AXIS = 3
MASK_TICK_LABEL = 4

MASK_CLASS_NAMES = {
    MASK_BACKGROUND: "background",
    MASK_LINE: "line",
    MASK_Y_TICK: "y_tick",
    MASK_AXIS: "axis",
    MASK_TICK_LABEL: "tick_label",
}

NUM_MASK_CLASSES = len(MASK_CLASS_NAMES)


@dataclass(frozen=True)
class ChartSpec:
    """Geometry of the rendered chart image.

    Attributes
    ----------
    width, height:
        Total image size in pixels (greyscale, single channel).
    margin_left:
        Pixels reserved on the left for y-axis tick labels and tick marks.
    margin_bottom, margin_top, margin_right:
        Remaining margins around the plot area.
    num_y_ticks:
        Number of y-axis ticks to draw (evenly spaced "nice" values).
    line_thickness:
        Thickness of plotted lines in pixels.
    tick_length:
        Length of tick marks in pixels.
    """

    width: int = 240
    height: int = 120
    margin_left: int = 30
    margin_bottom: int = 10
    margin_top: int = 6
    margin_right: int = 6
    num_y_ticks: int = 5
    line_thickness: int = 1
    tick_length: int = 4

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("chart dimensions must be positive")
        if self.plot_width <= 10 or self.plot_height <= 10:
            raise ValueError("margins leave too small a plot area")
        if self.num_y_ticks < 2:
            raise ValueError("at least two y ticks are required")

    # ------------------------------------------------------------------ #
    # Derived geometry
    # ------------------------------------------------------------------ #
    @property
    def plot_left(self) -> int:
        return self.margin_left

    @property
    def plot_right(self) -> int:
        return self.width - self.margin_right

    @property
    def plot_top(self) -> int:
        return self.margin_top

    @property
    def plot_bottom(self) -> int:
        return self.height - self.margin_bottom

    @property
    def plot_width(self) -> int:
        return self.plot_right - self.plot_left

    @property
    def plot_height(self) -> int:
        return self.plot_bottom - self.plot_top
