"""LineChartSeg: the line-chart segmentation dataset (Sec. IV-A).

The paper constructs LineChartSeg automatically: every (table, visualization
specification) pair is rendered into a chart while the visualization library
tracks which pixels each visual element produced, yielding pixel-level masks
without manual annotation.  Our rasteriser does exactly that, so building the
dataset amounts to rendering charts for training-split records (plus their
chart-preserving augmentations) and keeping the image/mask pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.augmentation import AugmentationConfig, augment_table
from ..data.corpus import CorpusRecord
from ..data.table import Table
from .rasterizer import LineChart, render_chart_for_table
from .spec import NUM_MASK_CLASSES, ChartSpec


@dataclass
class SegmentationExample:
    """One LineChartSeg training example: chart image + pixel class mask."""

    image: np.ndarray
    class_mask: np.ndarray
    source_table_id: str

    def __post_init__(self) -> None:
        if self.image.shape != self.class_mask.shape:
            raise ValueError("image and class mask must have the same shape")
        if self.class_mask.max(initial=0) >= NUM_MASK_CLASSES:
            raise ValueError("class mask contains an unknown class id")


@dataclass
class LineChartSegDataset:
    """A collection of segmentation examples with simple split helpers."""

    examples: List[SegmentationExample]

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> SegmentationExample:
        return self.examples[index]

    def __iter__(self):
        return iter(self.examples)

    def class_histogram(self) -> Dict[int, int]:
        """Pixel count per class over the whole dataset."""
        counts: Dict[int, int] = {}
        for example in self.examples:
            values, freqs = np.unique(example.class_mask, return_counts=True)
            for value, freq in zip(values.tolist(), freqs.tolist()):
                counts[int(value)] = counts.get(int(value), 0) + int(freq)
        return counts

    def split(self, train_fraction: float = 0.8, seed: int = 0):
        """Split into (train, validation) datasets."""
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.examples))
        cut = int(round(train_fraction * len(self.examples)))
        train = [self.examples[i] for i in order[:cut]]
        val = [self.examples[i] for i in order[cut:]]
        return LineChartSegDataset(train), LineChartSegDataset(val)


def _valid_y_columns(table: Table, y_columns: Sequence[str]) -> List[str]:
    """Keep only the spec's y columns that survived an augmentation."""
    return [name for name in y_columns if name in table]


def build_linechartseg(
    records: Sequence[CorpusRecord],
    spec: Optional[ChartSpec] = None,
    augmentation: Optional[AugmentationConfig] = None,
    rng: Optional[np.random.Generator] = None,
    max_examples: Optional[int] = None,
) -> LineChartSegDataset:
    """Build LineChartSeg from (table, visualization spec) records.

    Parameters
    ----------
    records:
        Corpus records (typically the training split).
    spec:
        Chart geometry; defaults to the standard :class:`ChartSpec`.
    augmentation:
        Augmentation configuration; pass ``AugmentationConfig(reverse=False,
        partition=False, down_sample=False)`` to disable augmentation (used by
        the ablation in the tests).
    max_examples:
        Optional cap on the number of examples (keeps tests fast).
    """
    spec = spec or ChartSpec()
    rng = rng or np.random.default_rng(0)
    augmentation = augmentation if augmentation is not None else AugmentationConfig()

    examples: List[SegmentationExample] = []

    def add_example(chart: LineChart, table_id: str) -> None:
        examples.append(
            SegmentationExample(
                image=chart.image, class_mask=chart.class_mask, source_table_id=table_id
            )
        )

    for record in records:
        if max_examples is not None and len(examples) >= max_examples:
            break
        if record.spec.chart_type != "line":
            continue
        y_columns = list(record.spec.y_columns)
        chart = render_chart_for_table(
            record.table, y_columns, x_column=record.spec.x_column, spec=spec
        )
        add_example(chart, record.table.table_id)

        for augmented in augment_table(record.table, config=augmentation, rng=rng):
            if max_examples is not None and len(examples) >= max_examples:
                break
            kept = _valid_y_columns(augmented, y_columns)
            if not kept:
                continue
            x_column = record.spec.x_column if record.spec.x_column in augmented else None
            aug_chart = render_chart_for_table(
                augmented, kept, x_column=x_column, spec=spec
            )
            add_example(aug_chart, augmented.table_id)

    return LineChartSegDataset(examples)
