"""``repro.charts`` — chart substrate: rasteriser, ticks, LineChartSeg."""

from .canvas import Canvas
from .linechartseg import LineChartSegDataset, SegmentationExample, build_linechartseg
from .rasterizer import (
    LineChart,
    render_chart_for_table,
    render_line_chart,
    underlying_data_from_table,
)
from .spec import (
    MASK_AXIS,
    MASK_BACKGROUND,
    MASK_CLASS_NAMES,
    MASK_LINE,
    MASK_TICK_LABEL,
    MASK_Y_TICK,
    NUM_MASK_CLASSES,
    ChartSpec,
)
from .ticks import (
    GLYPHS,
    Tick,
    compute_ticks,
    format_tick,
    match_text,
    nice_ticks,
    parse_tick_label,
    render_text,
)

__all__ = [
    "Canvas",
    "ChartSpec",
    "GLYPHS",
    "LineChart",
    "LineChartSegDataset",
    "MASK_AXIS",
    "MASK_BACKGROUND",
    "MASK_CLASS_NAMES",
    "MASK_LINE",
    "MASK_TICK_LABEL",
    "MASK_Y_TICK",
    "NUM_MASK_CLASSES",
    "SegmentationExample",
    "Tick",
    "build_linechartseg",
    "compute_ticks",
    "format_tick",
    "match_text",
    "nice_ticks",
    "parse_tick_label",
    "render_chart_for_table",
    "render_line_chart",
    "render_text",
    "underlying_data_from_table",
]
