"""Line-chart rasteriser: underlying data → greyscale image + masks.

This is the reproduction's replacement for Plotly's image export.  Given the
underlying data ``D`` (one series per line), it renders:

* the plotted lines (one pixel polyline per series, tracked per-instance),
* the x and y axes,
* y-axis tick marks and bitmap tick labels,

and records, per pixel, which visual element produced it.  The rendered
object therefore doubles as a LineChartSeg training example.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.aggregation import AggregationSpec, aggregate_values
from ..data.table import DataSeries, Table, UnderlyingData
from .canvas import Canvas
from .spec import (
    MASK_AXIS,
    MASK_LINE,
    MASK_TICK_LABEL,
    MASK_Y_TICK,
    ChartSpec,
)
from .ticks import GLYPH_HEIGHT, Tick, compute_ticks, render_text


@dataclass
class LineChart:
    """A rendered line chart plus everything needed for supervision.

    Attributes
    ----------
    image:
        Greyscale image, shape ``(height, width)``, ink = 1.0.
    class_mask:
        Per-pixel visual-element class (see ``repro.charts.spec``).
    line_masks:
        One boolean mask per plotted line, in plotting order.
    ticks:
        The y-axis ticks that were drawn.
    axis_range:
        The (value_low, value_high) range the y axis spans.
    spec:
        The :class:`ChartSpec` geometry used.
    underlying:
        The underlying data the chart was rendered from (available at
        training/benchmark-construction time only; query processing never
        reads it).
    source_table_id:
        Id of the table the underlying data came from, if known.
    aggregation:
        The aggregation applied when generating the underlying data, if any.
    """

    image: np.ndarray
    class_mask: np.ndarray
    line_masks: List[np.ndarray]
    ticks: List[Tick]
    axis_range: Tuple[float, float]
    spec: ChartSpec
    underlying: Optional[UnderlyingData] = None
    source_table_id: Optional[str] = None
    aggregation: Optional[AggregationSpec] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_lines(self) -> int:
        return len(self.line_masks)

    @property
    def height(self) -> int:
        return int(self.image.shape[0])

    @property
    def width(self) -> int:
        return int(self.image.shape[1])

    def fingerprint(self) -> str:
        """Content hash of everything query processing reads from this chart.

        Two charts with identical pixels, per-line masks, ticks and geometry
        hash identically even when they are distinct objects (e.g. the same
        table rendered twice) — the serving layer keys its query-preparation
        and result caches by this instead of object identity, so equal charts
        share cache entries and a mutated chart can never be served a stale
        result.  The hash is O(pixels), orders of magnitude cheaper than the
        visual-element extraction it deduplicates.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(self.image).tobytes())
        digest.update(np.ascontiguousarray(self.class_mask).tobytes())
        for mask in self.line_masks:
            digest.update(np.ascontiguousarray(mask).tobytes())
        digest.update(repr(self.spec).encode("utf-8"))
        digest.update(
            np.asarray(self.axis_range, dtype=np.float64).tobytes()
        )
        digest.update(
            np.asarray(
                [(tick.value, tick.pixel_row) for tick in self.ticks], dtype=np.float64
            ).tobytes()
        )
        return digest.hexdigest()


def _value_to_row(values: np.ndarray, axis_range: Tuple[float, float], spec: ChartSpec) -> np.ndarray:
    low, high = axis_range
    span = max(high - low, 1e-12)
    frac = (values - low) / span
    frac = np.clip(frac, 0.0, 1.0)
    return np.round(spec.plot_bottom - frac * (spec.plot_bottom - spec.plot_top)).astype(int)


def _x_to_col(x: np.ndarray, spec: ChartSpec) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    x_min, x_max = x.min(), x.max()
    span = max(x_max - x_min, 1e-12)
    frac = (x - x_min) / span
    return np.round(spec.plot_left + frac * (spec.plot_width - 1)).astype(int)


def render_line_chart(
    data: UnderlyingData,
    spec: Optional[ChartSpec] = None,
    source_table_id: Optional[str] = None,
    aggregation: Optional[AggregationSpec] = None,
) -> LineChart:
    """Render the underlying data into a :class:`LineChart`."""
    spec = spec or ChartSpec()
    canvas = Canvas(spec.height, spec.width)

    value_low, value_high = data.y_range
    ticks, axis_range = compute_ticks(
        value_low, value_high, spec.num_y_ticks, spec.plot_top, spec.plot_bottom
    )

    # Axes: y axis on the left edge of the plot area, x axis on the bottom.
    canvas.draw_vertical_line(
        spec.plot_left, spec.plot_top, spec.plot_bottom, class_id=MASK_AXIS, instance="axis_y"
    )
    canvas.draw_horizontal_line(
        spec.plot_bottom, spec.plot_left, spec.plot_right - 1, class_id=MASK_AXIS, instance="axis_x"
    )

    # Y ticks: short horizontal marks extending left of the y axis plus labels.
    for i, tick in enumerate(ticks):
        canvas.draw_horizontal_line(
            tick.pixel_row,
            spec.plot_left - spec.tick_length,
            spec.plot_left - 1,
            class_id=MASK_Y_TICK,
            instance=f"ytick_{i}",
        )
        label_bitmap = render_text(tick.label)
        label_top = tick.pixel_row - GLYPH_HEIGHT // 2
        label_left = max(spec.plot_left - spec.tick_length - 1 - label_bitmap.shape[1], 0)
        canvas.blit(
            label_bitmap,
            label_top,
            label_left,
            class_id=MASK_TICK_LABEL,
            instance=f"yticklabel_{i}",
        )

    # Lines, drawn after the axes so overlapping pixels are classified as line.
    line_masks: List[np.ndarray] = []
    for line_idx, series in enumerate(data):
        cols = _x_to_col(series.x, spec)
        rows = _value_to_row(series.y, axis_range, spec)
        instance = f"line_{line_idx}"
        canvas.draw_polyline(
            rows,
            cols,
            class_id=MASK_LINE,
            instance=instance,
            thickness=spec.line_thickness,
        )
        line_masks.append(canvas.instance_masks[instance])

    return LineChart(
        image=canvas.image,
        class_mask=canvas.class_mask,
        line_masks=line_masks,
        ticks=ticks,
        axis_range=axis_range,
        spec=spec,
        underlying=data,
        source_table_id=source_table_id,
        aggregation=aggregation,
    )


def underlying_data_from_table(
    table: Table,
    y_columns: List[str],
    x_column: Optional[str] = None,
    aggregation: Optional[AggregationSpec] = None,
) -> UnderlyingData:
    """Build underlying data from a table selection, applying aggregation.

    This mirrors the two generation modes of Sec. II: direct column pairs, or
    a column pair combined with a windowed aggregation operator.
    """
    if aggregation is None or aggregation.is_identity:
        return table.to_underlying_data(y_columns, x_column=x_column)
    series_list: List[DataSeries] = []
    for name in y_columns:
        aggregated = aggregate_values(table.column(name).values, aggregation)
        x_values = np.arange(1, aggregated.shape[0] + 1, dtype=np.float64)
        series_list.append(
            DataSeries(x=x_values, y=aggregated, name=name, source_column=name)
        )
    return UnderlyingData(series=series_list)


def render_chart_for_table(
    table: Table,
    y_columns: List[str],
    x_column: Optional[str] = None,
    aggregation: Optional[AggregationSpec] = None,
    spec: Optional[ChartSpec] = None,
) -> LineChart:
    """Convenience wrapper: table + column selection (+ aggregation) → chart."""
    data = underlying_data_from_table(
        table, y_columns, x_column=x_column, aggregation=aggregation
    )
    return render_line_chart(
        data, spec=spec, source_table_id=table.table_id, aggregation=aggregation
    )
