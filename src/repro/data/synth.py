"""Deterministic synthetic corpora for scale testing (10² … 10⁶ tables).

:func:`repro.data.corpus.generate_corpus` produces realistic Plotly-like
records (shape families, aggregation specs, duplicates) — the right corpus
for quality experiments, but too heavyweight to sweep the index to 10⁵+
tables.  This module trades realism for speed plus three properties the
scale harness (``benchmarks/test_scale_sweep.py``) depends on:

* **O(1) per-table determinism** — :func:`synth_table` depends only on
  ``(config.seed, index)``: not on ``num_tables``, not on generation order.
  Table 7 of a 100-table corpus is value-identical to table 7 of a
  100 000-table corpus, so benchmark artifacts at different scales stay
  comparable and a test can regenerate any single table without the rest.
* **Cluster structure** — tables belong to ``num_clusters`` shape clusters
  (a shared waveform prototype plus per-table warp/jitter), so genuine
  nearest-neighbour structure exists for LSH bucket recall to find, and
  per-cluster value scales spread the column ranges the interval tree
  prunes on.  A flat i.i.d. corpus would make both pruning measurements
  vacuous.
* **Streaming generation** — :func:`synth_tables` yields lazily, so a
  10⁶-table sweep does not need the whole corpus in memory at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..charts.spec import ChartSpec
from .column import Column
from .table import Table

#: Independent seed streams (mixed into the RNG seed sequence) so cluster
#: prototypes, per-table jitter and embedding helpers never share draws.
_CLUSTER_STREAM = 0x5C1
_TABLE_STREAM = 0x7AB
_EMBED_STREAM = 0xE3B


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of the deterministic scale corpus.

    Attributes
    ----------
    num_tables:
        Corpus size; only bounds :func:`synth_tables` — individual tables
        exist independently of it.
    num_rows:
        Rows per table (every column shares the length).
    min_columns / max_columns:
        Per-table column count is drawn uniformly from this range.
    num_clusters:
        Number of waveform prototypes; table ``i`` belongs to cluster
        ``i % num_clusters``.
    num_harmonics:
        Sinusoids mixed into each cluster prototype.
    noise_scale:
        Standard deviation of the per-column jitter around the (warped)
        prototype, relative to the prototype's unit amplitude.
    value_scales:
        Value magnitudes cycled over the clusters, so column ranges differ
        across clusters (gives the interval tree real pruning work).
    seed:
        Root seed; every table/cluster derives its own independent stream.
    """

    num_tables: int
    num_rows: int = 96
    min_columns: int = 1
    max_columns: int = 3
    num_clusters: int = 16
    num_harmonics: int = 3
    noise_scale: float = 0.05
    value_scales: Tuple[float, ...] = (1.0, 4.0, 20.0, 100.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tables < 0:
            raise ValueError("num_tables must be >= 0")
        if self.num_rows < 2:
            raise ValueError("num_rows must be >= 2")
        if not 1 <= self.min_columns <= self.max_columns:
            raise ValueError("need 1 <= min_columns <= max_columns")
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if not self.value_scales:
            raise ValueError("value_scales must not be empty")


@lru_cache(maxsize=4096)
def _cluster_prototype(config: SynthConfig, cluster: int) -> np.ndarray:
    """The cluster's shared unit-amplitude waveform (num_rows,)."""
    rng = np.random.default_rng((config.seed, _CLUSTER_STREAM, cluster))
    t = np.linspace(0.0, 2.0 * np.pi, config.num_rows)
    wave = np.zeros(config.num_rows)
    for harmonic in range(config.num_harmonics):
        amplitude = rng.uniform(0.3, 1.0)
        frequency = int(rng.integers(1, 4)) + harmonic
        phase = rng.uniform(0.0, 2.0 * np.pi)
        wave += amplitude * np.sin(frequency * t + phase)
    trend = rng.uniform(-0.5, 0.5)
    wave += trend * np.linspace(0.0, 1.0, config.num_rows)
    peak = np.max(np.abs(wave))
    return wave / peak if peak > 0 else wave


def synth_table(index: int, config: SynthConfig) -> Table:
    """Table ``index`` of the corpus — a pure function of ``(seed, index)``.

    The table is its cluster's prototype waveform, per-column warped
    (amplitude 0.8–1.2×), jittered (``noise_scale``), scaled by the
    cluster's value magnitude and shifted by a per-table offset.  Columns
    of one table are therefore near-duplicates of each other and of their
    cluster siblings — exactly the neighbour structure an LSH bucket
    should group — while clusters differ in both shape and value range.
    """
    if index < 0:
        raise ValueError("table index must be >= 0")
    cluster = index % config.num_clusters
    prototype = _cluster_prototype(config, cluster)
    rng = np.random.default_rng((config.seed, _TABLE_STREAM, index))
    num_columns = int(rng.integers(config.min_columns, config.max_columns + 1))
    scale = config.value_scales[cluster % len(config.value_scales)]
    offset = scale * rng.uniform(-1.0, 1.0)
    columns: List[Column] = []
    for position in range(num_columns):
        warp = rng.uniform(0.8, 1.2)
        jitter = rng.normal(0.0, config.noise_scale, config.num_rows)
        values = scale * (warp * prototype + jitter) + offset + 0.3 * scale * position
        columns.append(Column(f"y{position}", values, role="y"))
    return Table(f"synth_{index:06d}", columns)


def synth_tables(config: SynthConfig) -> Iterator[Table]:
    """Lazily yield the corpus ``synth_table(0..num_tables-1, config)``."""
    for index in range(config.num_tables):
        yield synth_table(index, config)


def synth_query_indices(config: SynthConfig, num_charts: int) -> List[int]:
    """Evenly strided table indices (every cluster gets query coverage)."""
    if num_charts <= 0 or config.num_tables == 0:
        return []
    num_charts = min(num_charts, config.num_tables)
    strided = np.linspace(0, config.num_tables - 1, num_charts)
    return sorted({int(round(i)) for i in strided})


def synth_query_charts(
    config: SynthConfig,
    num_charts: int,
    spec: Optional[ChartSpec] = None,
) -> List[Tuple[int, LineChart]]:
    """``(table index, chart)`` pairs rendered from corpus tables.

    Charts are rasterised from an evenly strided subset of the tables (all
    columns plotted, row index as x), so chart ``i``'s ground-truth answer
    is table ``i`` itself — the scale harness scores retrieval against
    that.  Deterministic like everything else here.
    """
    pairs: List[Tuple[int, LineChart]] = []
    for index in synth_query_indices(config, num_charts):
        table = synth_table(index, config)
        chart = render_chart_for_table(table, table.column_names, spec=spec)
        pairs.append((index, chart))
    return pairs


def clustered_embeddings(
    num_vectors: int,
    embed_dim: int,
    num_clusters: int = 8,
    noise: float = 0.15,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Unit-ish vectors with planted cluster structure, plus cluster labels.

    Vector ``i`` is cluster ``i % num_clusters``'s unit prototype plus
    isotropic Gaussian noise.  This is the embedding-space analogue of the
    table corpus above, used to measure
    :class:`repro.index.lsh.RandomHyperplaneLSH` bucket recall directly:
    cosine-near neighbours demonstrably exist, so a recall regression means
    the hash changed, not that the data had no structure to find.
    Returns ``(vectors (N, K), cluster labels (N,))``.
    """
    if num_vectors < 0:
        raise ValueError("num_vectors must be >= 0")
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = np.random.default_rng((seed, _EMBED_STREAM))
    prototypes = rng.normal(size=(num_clusters, embed_dim))
    prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
    labels = np.arange(num_vectors, dtype=np.int64) % num_clusters
    vectors = prototypes[labels] + noise * rng.normal(size=(num_vectors, embed_dim))
    return vectors, labels
