"""Train/validation/test splitting of corpus records (Sec. VII-A).

The paper selects 3,000 training tables, 1,000 validation tables and 100
query (test) tables from the filtered Plotly corpus.  This module performs
the same style of split on the synthetic corpus, with sizes expressed either
as absolute counts or fractions so that small corpora used in tests work too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .corpus import CorpusRecord


@dataclass
class SplitSizes:
    """Requested sizes for each split.

    Values may be integers (absolute counts) or floats in ``(0, 1)``
    (fractions of the filtered corpus).  Whatever is left after carving out
    train and validation goes to the test/query pool, unless ``test`` is set.
    """

    train: float = 0.6
    validation: float = 0.2
    test: Optional[float] = None


@dataclass
class CorpusSplit:
    """The result of splitting: three disjoint lists of records."""

    train: List[CorpusRecord]
    validation: List[CorpusRecord]
    test: List[CorpusRecord]

    def __post_init__(self) -> None:
        ids = [r.table.table_id for part in (self.train, self.validation, self.test) for r in part]
        if len(ids) != len(set(ids)):
            raise ValueError("corpus split contains duplicated table ids across parts")

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)


def _resolve(size: float, total: int) -> int:
    if isinstance(size, float) and 0 < size < 1:
        return int(round(size * total))
    return int(size)


def filter_line_chart_records(records: Sequence[CorpusRecord]) -> List[CorpusRecord]:
    """Keep only records whose visualization is a line chart (Sec. VII-A)."""
    return [r for r in records if r.spec.chart_type == "line"]


def split_corpus(
    records: Sequence[CorpusRecord],
    sizes: Optional[SplitSizes] = None,
    seed: int = 13,
) -> CorpusSplit:
    """Shuffle and split ``records`` into train/validation/test parts.

    Raises
    ------
    ValueError
        If the requested sizes exceed the number of records.
    """
    sizes = sizes or SplitSizes()
    records = list(records)
    total = len(records)
    n_train = _resolve(sizes.train, total)
    n_val = _resolve(sizes.validation, total)
    if sizes.test is None:
        n_test = total - n_train - n_val
    else:
        n_test = _resolve(sizes.test, total)
    if n_train < 0 or n_val < 0 or n_test < 0:
        raise ValueError("split sizes must be non-negative")
    if n_train + n_val + n_test > total:
        raise ValueError(
            f"split sizes ({n_train}+{n_val}+{n_test}) exceed corpus size {total}"
        )
    if n_test == 0:
        raise ValueError("test split must contain at least one record")

    rng = np.random.default_rng(seed)
    order = rng.permutation(total)
    shuffled = [records[i] for i in order]
    train = shuffled[:n_train]
    validation = shuffled[n_train : n_train + n_val]
    test = shuffled[n_train + n_val : n_train + n_val + n_test]
    return CorpusSplit(train=train, validation=validation, test=test)
