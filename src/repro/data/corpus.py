"""Synthetic Plotly-like corpus generator.

The paper builds its benchmark from the Plotly community feed: 2.3 million
``(table, visualization specification)`` records.  That corpus is not
available offline, so this module generates a synthetic stand-in with the
properties the benchmark pipeline (Sec. VII-A) relies on:

* each record pairs a numeric table with a visualization specification that
  says which columns are plotted as lines (and optionally which column is the
  x-axis);
* tables contain a diverse mix of realistic series shapes (trends, seasonal
  patterns, random walks, step changes, spikes, damped oscillations) so that
  chart shapes are distinguishable and DTW-based relevance is meaningful;
* the number of plotted lines ``M`` follows the bucket proportions reported
  in Table I (1 line ≈ 36%, 2–4 ≈ 25%, 5–7 ≈ 21%, >7 ≈ 18%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .column import Column
from .table import Table

#: Bucket edges and target proportions matching Table I of the paper.
LINE_COUNT_BUCKETS: Tuple[Tuple[int, int], ...] = ((1, 1), (2, 4), (5, 7), (8, 12))
LINE_COUNT_PROPORTIONS: Tuple[float, ...] = (0.36, 0.25, 0.21, 0.18)


@dataclass(frozen=True)
class VisualizationSpec:
    """A Plotly-style visualization specification for one record.

    Attributes
    ----------
    table_id:
        Identifier of the table being visualised.
    y_columns:
        Names of the columns plotted as lines (one line per column).
    x_column:
        Name of the x-axis column, or ``None`` when the x-axis is the
        implicit row index.
    chart_type:
        Always ``"line"`` for records kept by the benchmark filter; the
        corpus also emits a small share of non-line records so the filtering
        step of Sec. VII-A has something to drop.
    """

    table_id: str
    y_columns: Tuple[str, ...]
    x_column: Optional[str] = None
    chart_type: str = "line"

    @property
    def num_lines(self) -> int:
        return len(self.y_columns)


@dataclass
class CorpusRecord:
    """One ``(table, visualization specification)`` pair."""

    table: Table
    spec: VisualizationSpec


@dataclass
class CorpusConfig:
    """Knobs controlling the synthetic corpus generator."""

    num_records: int = 200
    min_rows: int = 120
    max_rows: int = 400
    extra_columns_max: int = 2
    non_line_fraction: float = 0.08
    duplicate_fraction: float = 0.03
    value_scale_choices: Sequence[float] = field(
        default_factory=lambda: (1.0, 5.0, 10.0, 50.0, 100.0)
    )
    seed: int = 7


#: Names of the shape families the generator can emit; useful in tests.
SHAPE_FAMILIES: Tuple[str, ...] = (
    "linear_trend",
    "seasonal",
    "random_walk",
    "step",
    "spike",
    "damped_oscillation",
    "logistic",
    "noise",
)


def _generate_series(
    family: str, num_rows: int, scale: float, rng: np.random.Generator
) -> np.ndarray:
    """Generate one y-series of the requested shape family."""
    t = np.linspace(0.0, 1.0, num_rows)
    noise = rng.normal(0.0, 0.03, size=num_rows)
    if family == "linear_trend":
        slope = rng.uniform(-2.0, 2.0)
        intercept = rng.uniform(-1.0, 1.0)
        base = slope * t + intercept
    elif family == "seasonal":
        freq = rng.integers(2, 9)
        phase = rng.uniform(0, 2 * np.pi)
        trend = rng.uniform(-0.5, 0.5) * t
        base = np.sin(2 * np.pi * freq * t + phase) + trend
    elif family == "random_walk":
        steps = rng.normal(0.0, 1.0, size=num_rows)
        base = np.cumsum(steps) / np.sqrt(num_rows)
    elif family == "step":
        n_steps = rng.integers(2, 6)
        positions = np.sort(rng.choice(np.arange(1, num_rows - 1), size=n_steps, replace=False))
        levels = rng.uniform(-1.0, 1.0, size=n_steps + 1)
        base = np.zeros(num_rows)
        prev = 0
        for i, pos in enumerate(list(positions) + [num_rows]):
            base[prev:pos] = levels[i]
            prev = pos
    elif family == "spike":
        base = rng.normal(0.0, 0.05, size=num_rows)
        n_spikes = rng.integers(1, 5)
        for _ in range(n_spikes):
            center = rng.integers(5, num_rows - 5)
            width = rng.integers(2, 8)
            height = rng.uniform(0.5, 2.0) * rng.choice([-1.0, 1.0])
            idx = np.arange(num_rows)
            base += height * np.exp(-0.5 * ((idx - center) / width) ** 2)
    elif family == "damped_oscillation":
        freq = rng.integers(3, 12)
        decay = rng.uniform(1.0, 4.0)
        base = np.exp(-decay * t) * np.sin(2 * np.pi * freq * t)
    elif family == "logistic":
        midpoint = rng.uniform(0.3, 0.7)
        steepness = rng.uniform(8.0, 20.0)
        base = 1.0 / (1.0 + np.exp(-steepness * (t - midpoint)))
    elif family == "noise":
        base = rng.normal(0.0, 0.3, size=num_rows)
    else:
        raise ValueError(f"unknown shape family {family!r}")
    offset = rng.uniform(-0.5, 0.5)
    return scale * (base + noise + offset)


def sample_num_lines(rng: np.random.Generator) -> int:
    """Sample a line count following the Table I bucket proportions."""
    bucket = rng.choice(len(LINE_COUNT_BUCKETS), p=np.asarray(LINE_COUNT_PROPORTIONS))
    low, high = LINE_COUNT_BUCKETS[bucket]
    return int(rng.integers(low, high + 1))


def line_count_bucket(num_lines: int) -> str:
    """Map a line count to the Table I bucket label."""
    if num_lines <= 1:
        return "1"
    if num_lines <= 4:
        return "2-4"
    if num_lines <= 7:
        return "5-7"
    return ">7"


def generate_record(
    record_index: int,
    config: CorpusConfig,
    rng: np.random.Generator,
) -> CorpusRecord:
    """Generate one synthetic corpus record."""
    num_rows = int(rng.integers(config.min_rows, config.max_rows + 1))
    num_lines = sample_num_lines(rng)
    scale = float(rng.choice(np.asarray(config.value_scale_choices)))
    table_id = f"tbl_{record_index:05d}"

    columns: List[Column] = []
    # x-axis column is present half the time; otherwise the implicit index is used.
    has_x = bool(rng.random() < 0.5)
    if has_x:
        columns.append(
            Column("time", np.arange(num_rows, dtype=np.float64), role="x")
        )

    y_names: List[str] = []
    # Give the lines of one chart a related but not identical character:
    # choose a primary family and perturb it per line.
    primary_family = str(rng.choice(np.asarray(SHAPE_FAMILIES)))
    for line_idx in range(num_lines):
        family = (
            primary_family
            if rng.random() < 0.6
            else str(rng.choice(np.asarray(SHAPE_FAMILIES)))
        )
        name = f"y{line_idx}"
        values = _generate_series(family, num_rows, scale, rng)
        columns.append(Column(name, values, role="y"))
        y_names.append(name)

    # Distractor columns not referenced by the spec.
    num_extra = int(rng.integers(0, config.extra_columns_max + 1))
    for extra_idx in range(num_extra):
        family = str(rng.choice(np.asarray(SHAPE_FAMILIES)))
        values = _generate_series(family, num_rows, scale, rng)
        columns.append(Column(f"extra{extra_idx}", values, role="y"))

    chart_type = "line"
    if rng.random() < config.non_line_fraction:
        chart_type = str(rng.choice(np.asarray(["bar", "scatter", "pie"])))

    table = Table(table_id, columns)
    spec = VisualizationSpec(
        table_id=table_id,
        y_columns=tuple(y_names),
        x_column="time" if has_x else None,
        chart_type=chart_type,
    )
    return CorpusRecord(table=table, spec=spec)


def generate_corpus(config: Optional[CorpusConfig] = None) -> List[CorpusRecord]:
    """Generate a full synthetic corpus.

    A small fraction of records are exact duplicates of earlier records
    (different table id, same values) so the deduplication step of the
    benchmark pipeline has real work to do.
    """
    config = config or CorpusConfig()
    rng = np.random.default_rng(config.seed)
    records: List[CorpusRecord] = []
    for i in range(config.num_records):
        if records and rng.random() < config.duplicate_fraction:
            source = records[int(rng.integers(0, len(records)))]
            dup_id = f"tbl_{i:05d}"
            dup_table = Table(
                dup_id,
                [Column(c.name, c.values.copy(), role=c.role) for c in source.table.columns],
            )
            dup_spec = VisualizationSpec(
                table_id=dup_id,
                y_columns=source.spec.y_columns,
                x_column=source.spec.x_column,
                chart_type=source.spec.chart_type,
            )
            records.append(CorpusRecord(table=dup_table, spec=dup_spec))
            continue
        records.append(generate_record(i, config, rng))
    return records


def corpus_statistics(records: Sequence[CorpusRecord]) -> Dict[str, int]:
    """Count records per line-count bucket (Table I style)."""
    counts: Dict[str, int] = {"1": 0, "2-4": 0, "5-7": 0, ">7": 0}
    for record in records:
        counts[line_count_bucket(record.spec.num_lines)] += 1
    counts["total"] = len(records)
    return counts
