"""Windowed data-aggregation operators (Sec. II and Sec. V).

The paper considers four aggregation operators commonly used when plotting a
column as a line chart: ``avg``, ``sum``, ``max`` and ``min``, each applied
over non-overlapping windows of a chosen size.  Charts produced from
aggregated data are the "DA-based queries" whose handling motivates the
transformation/HMRL/MoE layers of the extended FCM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Canonical operator order.  The index of an operator in this tuple is also
#: the index of its transformation layer / MoE expert; the final entry
#: ``"none"`` denotes the identity (non-aggregated) case.
AGGREGATION_OPERATORS: Tuple[str, ...] = ("avg", "sum", "max", "min")
IDENTITY_OPERATOR: str = "none"
ALL_OPERATORS: Tuple[str, ...] = AGGREGATION_OPERATORS + (IDENTITY_OPERATOR,)

_REDUCERS: Dict[str, Callable[[np.ndarray], float]] = {
    "avg": np.mean,
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
}


def operator_index(operator: str) -> int:
    """Return the expert index of ``operator`` (``none`` maps to the last)."""
    if operator == IDENTITY_OPERATOR:
        return len(AGGREGATION_OPERATORS)
    try:
        return AGGREGATION_OPERATORS.index(operator)
    except ValueError as exc:
        raise ValueError(
            f"unknown aggregation operator {operator!r}; "
            f"expected one of {ALL_OPERATORS}"
        ) from exc


@dataclass(frozen=True)
class AggregationSpec:
    """A fully specified aggregation: operator plus window size.

    ``operator == "none"`` (with any window) means no aggregation at all; the
    underlying data equals the raw column.
    """

    operator: str
    window: int = 1

    def __post_init__(self) -> None:
        if self.operator not in ALL_OPERATORS:
            raise ValueError(
                f"unknown aggregation operator {self.operator!r}; "
                f"expected one of {ALL_OPERATORS}"
            )
        if self.window < 1:
            raise ValueError("aggregation window must be >= 1")

    @property
    def is_identity(self) -> bool:
        return self.operator == IDENTITY_OPERATOR or self.window == 1

    @property
    def expert_index(self) -> int:
        """Index of the transformation-layer expert handling this spec."""
        if self.is_identity:
            return len(AGGREGATION_OPERATORS)
        return operator_index(self.operator)

    def describe(self) -> str:
        if self.is_identity:
            return "none"
        return f"{self.operator}(window={self.window})"


def aggregate_values(values: np.ndarray, spec: AggregationSpec) -> np.ndarray:
    """Apply ``spec`` to a 1-D array using non-overlapping windows.

    The trailing partial window (if any) is aggregated as well, matching how
    plotting tools typically handle the remainder of a series.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("aggregate_values expects a 1-D array")
    if spec.is_identity:
        return values.copy()
    reducer = _REDUCERS[spec.operator]
    window = spec.window
    n_full = values.shape[0] // window
    out: List[float] = []
    if n_full:
        blocks = values[: n_full * window].reshape(n_full, window)
        if spec.operator == "avg":
            out.extend(blocks.mean(axis=1).tolist())
        elif spec.operator == "sum":
            out.extend(blocks.sum(axis=1).tolist())
        elif spec.operator == "max":
            out.extend(blocks.max(axis=1).tolist())
        else:
            out.extend(blocks.min(axis=1).tolist())
    remainder = values[n_full * window :]
    if remainder.size:
        out.append(float(reducer(remainder)))
    if not out:
        # window larger than the series: a single aggregate of everything.
        out.append(float(reducer(values)))
    return np.asarray(out, dtype=np.float64)


def aggregated_length(num_rows: int, spec: AggregationSpec) -> int:
    """Number of points produced by :func:`aggregate_values`."""
    if spec.is_identity:
        return num_rows
    full, rem = divmod(num_rows, spec.window)
    return max(full + (1 if rem else 0), 1)


def sample_aggregation_spec(
    num_rows: int,
    rng: np.random.Generator,
    operators: Tuple[str, ...] = AGGREGATION_OPERATORS,
    max_window: Optional[int] = None,
) -> AggregationSpec:
    """Sample an operator and window as in the benchmark construction.

    Sec. VII-A: "the aggregation window size is chosen uniformly at random
    from the range min(100, NR/10)".  We additionally require the window to be
    at least 2 so that the aggregation is not a no-op, and to leave at least
    four aggregated points so a line shape still exists.
    """
    operator = str(rng.choice(list(operators)))
    upper = int(min(100, max(num_rows // 10, 2)))
    if max_window is not None:
        upper = min(upper, max_window)
    upper = max(upper, 2)
    # Keep at least 4 aggregated points so a line shape still exists.
    upper = min(upper, max(num_rows // 4, 2))
    window = int(rng.integers(2, upper + 1))
    return AggregationSpec(operator=operator, window=window)


def window_bucket(window: int, edges: Tuple[int, ...] = (10, 40, 60, 80, 100)) -> str:
    """Map a window size to the bucket labels used by Table IV.

    The paper's buckets are ``0-10``, ``20-40``, ``40-60``, ``60-80`` and
    ``80-100``; windows in the (unlabelled) 10-20 gap are folded into the
    second bucket.
    """
    if window <= edges[0]:
        return f"0-{edges[0]}"
    if window <= edges[1]:
        return f"20-{edges[1]}"
    if window <= edges[2]:
        return f"{edges[1]}-{edges[2]}"
    if window <= edges[3]:
        return f"{edges[2]}-{edges[3]}"
    return f"{edges[3]}-{edges[4]}"
