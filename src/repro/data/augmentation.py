"""Chart-preserving data augmentation for LCSeg training (Sec. IV-A).

Conventional image augmentations (flips, crops) distort the semantics of a
chart — a vertically flipped chart lies about its data.  The paper instead
augments the *tabular* data from which charts are rendered:

* **Reverse** — reverse every column;
* **Partitioning** — split every column at a random position into two;
* **Down-sampling** — keep one of every ``ρ`` points.

Each augmented table is re-rendered into a fresh chart + mask pair, so the
augmented examples remain faithful line charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .column import Column
from .table import Table


@dataclass
class AugmentationConfig:
    """Which augmentations to apply and their parameters."""

    reverse: bool = True
    partition: bool = True
    down_sample: bool = True
    down_sample_ratios: Sequence[int] = field(default_factory=lambda: (2, 4))
    min_partition_size: int = 8

    def enabled(self) -> List[str]:
        names = []
        if self.reverse:
            names.append("reverse")
        if self.partition:
            names.append("partition")
        if self.down_sample:
            names.append("down_sample")
        return names


def reverse_table(table: Table) -> Table:
    """Apply the reverse augmentation to every column of ``table``."""
    columns = [c.reversed().renamed(c.name) for c in table.columns]
    return Table(f"{table.table_id}::rev", columns)


def partition_table(table: Table, position: int) -> List[Table]:
    """Split every column of ``table`` at ``position`` into two tables."""
    if not 0 < position < table.num_rows:
        raise ValueError(
            f"partition position must be in (0, {table.num_rows}), got {position}"
        )
    left_cols, right_cols = [], []
    for column in table.columns:
        left, right = column.partitioned(position)
        left_cols.append(left.renamed(column.name))
        right_cols.append(right.renamed(column.name))
    return [
        Table(f"{table.table_id}::part1", left_cols),
        Table(f"{table.table_id}::part2", right_cols),
    ]


def down_sample_table(table: Table, ratio: int) -> Table:
    """Keep one of every ``ratio`` rows of ``table``."""
    columns = [c.down_sampled(ratio).renamed(c.name) for c in table.columns]
    return Table(f"{table.table_id}::ds{ratio}", columns)


def augment_table(
    table: Table,
    config: Optional[AugmentationConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[Table]:
    """Produce the augmented variants of ``table`` per the configuration.

    The original table is *not* included in the returned list.
    """
    config = config or AugmentationConfig()
    rng = rng or np.random.default_rng()
    augmented: List[Table] = []
    if config.reverse:
        augmented.append(reverse_table(table))
    if config.partition and table.num_rows >= 2 * config.min_partition_size:
        low = config.min_partition_size
        high = table.num_rows - config.min_partition_size
        position = int(rng.integers(low, high + 1))
        augmented.extend(partition_table(table, position))
    if config.down_sample:
        for ratio in config.down_sample_ratios:
            if table.num_rows // ratio >= config.min_partition_size:
                augmented.append(down_sample_table(table, ratio))
    return augmented
