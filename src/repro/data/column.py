"""Numeric column abstraction.

A dataset in the paper is "a table of ``NC`` columns", where each column is a
data series ``C = (a1, ..., a_NR)`` (Sec. II).  This module provides a small
value type wrapping a 1-D float array with the statistics needed elsewhere in
the system (value range for the interval-tree index, summary statistics for
the corpus generator and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np


@dataclass
class Column:
    """A named numeric data series.

    Parameters
    ----------
    name:
        Column name (unique within its table).
    values:
        The data series; any 1-D array-like of finite floats.
    role:
        Optional semantic role hint; ``"x"`` marks a column the corpus
        generator intends as an x-axis (time/index), ``"y"`` a plottable
        measure.  The discovery pipeline itself never relies on the hint.
    """

    name: str
    values: np.ndarray
    role: Optional[str] = None
    _values: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"column {self.name!r} must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ValueError(f"column {self.name!r} must not be empty")
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"column {self.name!r} contains non-finite values")
        object.__setattr__(self, "values", arr)
        object.__setattr__(self, "_values", arr)

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterable[float]:
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and np.array_equal(self.values, other.values)

    def __hash__(self) -> int:
        return hash((self.name, self.values.tobytes()))

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def min(self) -> float:
        return float(self.values.min())

    @property
    def max(self) -> float:
        return float(self.values.max())

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std())

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def value_range(self) -> Tuple[float, float]:
        """Return ``(min, max)`` of the raw values."""
        return self.min, self.max

    def index_interval(self) -> Tuple[float, float]:
        """Return the interval used by the interval-tree index (Sec. VI-A).

        The paper indexes each column by ``[min(C), sum(C)]`` — the extreme
        values any aggregation (min .. sum) of the column could reach.  When a
        column contains negative values a windowed sum can drop below the raw
        minimum, so the lower bound also considers the sum.
        """
        low = min(self.min, self.total)
        high = max(self.max, self.total)
        return low, high

    # ------------------------------------------------------------------ #
    # Transformations (return new columns; columns are treated as immutable)
    # ------------------------------------------------------------------ #
    def renamed(self, name: str) -> "Column":
        return Column(name=name, values=self.values.copy(), role=self.role)

    def with_values(self, values: np.ndarray, suffix: str = "") -> "Column":
        return Column(name=self.name + suffix, values=values, role=self.role)

    def reversed(self) -> "Column":
        """Reverse augmentation of Sec. IV-A."""
        return self.with_values(self.values[::-1].copy(), suffix="_rev")

    def partitioned(self, position: int) -> Tuple["Column", "Column"]:
        """Partition augmentation of Sec. IV-A: split at ``position``."""
        if not 0 < position < len(self):
            raise ValueError(
                f"partition position must be in (0, {len(self)}), got {position}"
            )
        left = Column(self.name + "_p1", self.values[:position].copy(), role=self.role)
        right = Column(self.name + "_p2", self.values[position:].copy(), role=self.role)
        return left, right

    def down_sampled(self, ratio: int) -> "Column":
        """Down-sampling augmentation of Sec. IV-A: keep 1 of every ``ratio``."""
        if ratio < 1:
            raise ValueError("down-sampling ratio must be >= 1")
        return self.with_values(self.values[::ratio].copy(), suffix=f"_ds{ratio}")

    def to_list(self) -> list:
        return self.values.tolist()
