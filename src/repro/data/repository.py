"""Dataset repository (the "data lake" being searched).

The repository holds candidate tables by id, supports noise-injected
near-duplicates (used by the benchmark's ground-truth construction,
Sec. VII-A) and simple deduplication (the benchmark pipeline drops
near-duplicate Plotly records before splitting).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .column import Column
from .table import Table


class DataRepository:
    """A keyed collection of candidate tables."""

    def __init__(self, tables: Optional[Iterable[Table]] = None) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables or []:
            self.add(table)

    # ------------------------------------------------------------------ #
    # Container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __getitem__(self, table_id: str) -> Table:
        return self.get(table_id)

    @property
    def table_ids(self) -> List[str]:
        return list(self._tables.keys())

    @property
    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def add(self, table: Table) -> None:
        if table.table_id in self._tables:
            raise ValueError(f"duplicate table id {table.table_id!r}")
        self._tables[table.table_id] = table

    def add_all(self, tables: Iterable[Table]) -> None:
        for table in tables:
            self.add(table)

    def get(self, table_id: str) -> Table:
        if table_id not in self._tables:
            raise KeyError(f"repository has no table {table_id!r}")
        return self._tables[table_id]

    def remove(self, table_id: str) -> Table:
        if table_id not in self._tables:
            raise KeyError(f"repository has no table {table_id!r}")
        return self._tables.pop(table_id)

    # ------------------------------------------------------------------ #
    # Benchmark-construction helpers
    # ------------------------------------------------------------------ #
    def inject_noisy_copies(
        self,
        table: Table,
        count: int,
        rng: np.random.Generator,
        noise_low: float = 0.9,
        noise_high: float = 1.1,
        exclude_columns: Optional[Iterable[str]] = None,
    ) -> List[Table]:
        """Create ``count`` noisy near-duplicates of ``table`` and add them.

        Ground-truth generation in Sec. VII-A: for each column (excluding the
        x-axis column), multiply element-wise by a vector drawn from
        ``U(0.9, 1.1)``.
        """
        excluded = set(exclude_columns or [])
        copies: List[Table] = []
        for i in range(count):
            columns: List[Column] = []
            for column in table.columns:
                if column.name in excluded:
                    columns.append(
                        Column(column.name, column.values.copy(), role=column.role)
                    )
                    continue
                sigma = rng.uniform(noise_low, noise_high, size=len(column))
                columns.append(
                    Column(column.name, column.values * sigma, role=column.role)
                )
            copy = Table(f"{table.table_id}::noisy{i}", columns)
            self.add(copy)
            copies.append(copy)
        return copies

    def deduplicate(self, tolerance: float = 1e-9) -> int:
        """Drop tables that are near-duplicates of an earlier table.

        Two tables are near-duplicates when they have identical shape and
        column names and every value agrees within ``tolerance`` (relative).
        Returns the number of tables removed.
        """
        kept: List[Table] = []
        removed = 0
        signatures: List[Tuple[Tuple[str, ...], int]] = []
        for table in list(self._tables.values()):
            signature = (tuple(table.column_names), table.num_rows)
            duplicate_of = None
            for candidate, sig in zip(kept, signatures):
                if sig != signature:
                    continue
                if np.allclose(
                    candidate.numeric_matrix(), table.numeric_matrix(), rtol=tolerance
                ):
                    duplicate_of = candidate
                    break
            if duplicate_of is None:
                kept.append(table)
                signatures.append(signature)
            else:
                del self._tables[table.table_id]
                removed += 1
        return removed

    def summary(self) -> Dict[str, float]:
        """Basic statistics over the repository (used by Table I reporting)."""
        if not self._tables:
            return {"tables": 0, "avg_columns": 0.0, "avg_rows": 0.0}
        cols = [t.num_columns for t in self._tables.values()]
        rows = [t.num_rows for t in self._tables.values()]
        return {
            "tables": len(self._tables),
            "avg_columns": float(np.mean(cols)),
            "avg_rows": float(np.mean(rows)),
            "max_columns": float(np.max(cols)),
            "max_rows": float(np.max(rows)),
        }
