"""``repro.data`` — tabular substrate: tables, corpus, aggregation, splits."""

from .aggregation import (
    AGGREGATION_OPERATORS,
    ALL_OPERATORS,
    IDENTITY_OPERATOR,
    AggregationSpec,
    aggregate_values,
    aggregated_length,
    operator_index,
    sample_aggregation_spec,
    window_bucket,
)
from .augmentation import (
    AugmentationConfig,
    augment_table,
    down_sample_table,
    partition_table,
    reverse_table,
)
from .column import Column
from .corpus import (
    LINE_COUNT_BUCKETS,
    LINE_COUNT_PROPORTIONS,
    SHAPE_FAMILIES,
    CorpusConfig,
    CorpusRecord,
    VisualizationSpec,
    corpus_statistics,
    generate_corpus,
    generate_record,
    line_count_bucket,
    sample_num_lines,
)
from .repository import DataRepository
from .split import CorpusSplit, SplitSizes, filter_line_chart_records, split_corpus
from .synth import (
    SynthConfig,
    clustered_embeddings,
    synth_query_charts,
    synth_query_indices,
    synth_table,
    synth_tables,
)
from .table import DataSeries, Table, UnderlyingData

__all__ = [
    "AGGREGATION_OPERATORS",
    "ALL_OPERATORS",
    "IDENTITY_OPERATOR",
    "AggregationSpec",
    "AugmentationConfig",
    "Column",
    "CorpusConfig",
    "CorpusRecord",
    "CorpusSplit",
    "DataRepository",
    "DataSeries",
    "LINE_COUNT_BUCKETS",
    "LINE_COUNT_PROPORTIONS",
    "SHAPE_FAMILIES",
    "SplitSizes",
    "SynthConfig",
    "Table",
    "UnderlyingData",
    "VisualizationSpec",
    "aggregate_values",
    "aggregated_length",
    "augment_table",
    "clustered_embeddings",
    "corpus_statistics",
    "down_sample_table",
    "filter_line_chart_records",
    "generate_corpus",
    "generate_record",
    "line_count_bucket",
    "operator_index",
    "partition_table",
    "reverse_table",
    "sample_aggregation_spec",
    "sample_num_lines",
    "split_corpus",
    "synth_query_charts",
    "synth_query_indices",
    "synth_table",
    "synth_tables",
    "window_bucket",
]
