"""Table (dataset) abstraction and the data-series container used by charts.

Terminology follows Sec. II of the paper:

* a **Table** ``T`` is a collection of named numeric columns;
* the **underlying data** ``D`` of a line chart is a set of data series
  ``d = (p1, ..., p_Nd)``, one per line, where each point is an ``(x, y)``
  pair; all series share the same x values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .column import Column


@dataclass
class DataSeries:
    """One data series of the underlying data ``D`` (one line of a chart)."""

    x: np.ndarray
    y: np.ndarray
    name: str = ""
    source_column: Optional[str] = None

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1:
            raise ValueError("data series x and y must be 1-D")
        if x.shape != y.shape:
            raise ValueError(
                f"data series x and y must have the same length, got {x.shape} vs {y.shape}"
            )
        if x.size == 0:
            raise ValueError("data series must not be empty")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.y.shape[0])

    @property
    def y_range(self) -> Tuple[float, float]:
        return float(self.y.min()), float(self.y.max())


@dataclass
class UnderlyingData:
    """The underlying data ``D`` of a line chart: one series per line."""

    series: List[DataSeries]

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError("underlying data must contain at least one series")

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self) -> Iterator[DataSeries]:
        return iter(self.series)

    def __getitem__(self, index: int) -> DataSeries:
        return self.series[index]

    @property
    def num_lines(self) -> int:
        return len(self.series)

    @property
    def y_range(self) -> Tuple[float, float]:
        lows, highs = zip(*(s.y_range for s in self.series))
        return min(lows), max(highs)


class Table:
    """A dataset: an ordered collection of uniquely named numeric columns."""

    def __init__(self, table_id: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise ValueError("a table must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {table_id!r}: {names}")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(
                f"all columns of table {table_id!r} must have the same length, got {lengths}"
            )
        self.table_id = table_id
        self._columns: Dict[str, Column] = {c.name: c for c in columns}
        self._order: List[str] = names

    # ------------------------------------------------------------------ #
    # Container behaviour
    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        return len(self._order)

    @property
    def num_rows(self) -> int:
        return len(self._columns[self._order[0]])

    @property
    def column_names(self) -> List[str]:
        return list(self._order)

    @property
    def columns(self) -> List[Column]:
        return [self._columns[name] for name in self._order]

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.table_id == other.table_id
            and self._order == other._order
            and all(self._columns[n] == other._columns[n] for n in self._order)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Table(id={self.table_id!r}, columns={self.num_columns}, rows={self.num_rows})"
        )

    def column(self, name: str) -> Column:
        if name not in self._columns:
            raise KeyError(f"table {self.table_id!r} has no column {name!r}")
        return self._columns[name]

    def column_at(self, index: int) -> Column:
        return self._columns[self._order[index]]

    def numeric_matrix(self) -> np.ndarray:
        """Return all columns stacked into an ``(NC, NR)`` array."""
        return np.stack([c.values for c in self.columns])

    # ------------------------------------------------------------------ #
    # Derived tables
    # ------------------------------------------------------------------ #
    def with_columns(self, columns: Sequence[Column], table_id: Optional[str] = None) -> "Table":
        return Table(table_id or self.table_id, list(columns))

    def select(self, names: Iterable[str], table_id: Optional[str] = None) -> "Table":
        """Project onto the given column names (order preserved)."""
        return Table(table_id or self.table_id, [self.column(n) for n in names])

    def filter_columns_by_range(
        self, low: float, high: float, tolerance: float = 0.0
    ) -> List[Column]:
        """Return the columns whose value range overlaps ``[low, high]``.

        This is the y-tick based column filtering step of Sec. IV-C: only
        columns that could plausibly produce values inside the chart's y-axis
        range are worth encoding.
        """
        if low > high:
            low, high = high, low
        pad = tolerance * max(abs(low), abs(high), 1.0)
        selected = []
        for column in self.columns:
            c_low, c_high = column.value_range()
            if c_high >= low - pad and c_low <= high + pad:
                selected.append(column)
        return selected

    def to_underlying_data(
        self,
        y_columns: Sequence[str],
        x_column: Optional[str] = None,
    ) -> UnderlyingData:
        """Build underlying data ``D`` from a column-pair selection (Sec. II).

        Each entry in ``y_columns`` becomes one data series; ``x_column`` is
        shared by all series and defaults to the implicit index ``1..NR``.
        """
        if not y_columns:
            raise ValueError("at least one y column is required")
        if x_column is not None:
            x_values = self.column(x_column).values
        else:
            x_values = np.arange(1, self.num_rows + 1, dtype=np.float64)
        series = [
            DataSeries(
                x=x_values,
                y=self.column(name).values,
                name=name,
                source_column=name,
            )
            for name in y_columns
        ]
        return UnderlyingData(series=series)
