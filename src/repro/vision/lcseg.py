"""LCSeg: the trainable line-chart segmentation model (Sec. IV-A).

The paper trains a Mask R-CNN on LineChartSeg because pre-trained segmenters
(SAM) transfer poorly to chart images.  A full Mask R-CNN is out of scope for
a NumPy engine; the substitution here is a *patch-window pixel classifier*:

* only inked pixels (intensity > 0) are classified — the background class is
  implied by zero intensity;
* the feature vector of an inked pixel is the image window centred on it plus
  its normalised (row, column) position — position matters because ticks and
  labels live in the left margin while lines live in the plot area;
* a small MLP with a softmax head predicts the visual-element class.

This keeps the exact input/output contract of the paper's LCSeg (chart image
in, per-pixel class mask out) while remaining trainable on a CPU in seconds.
The same chart-preserving data augmentation of Sec. IV-A is applied upstream
when building LineChartSeg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..charts.linechartseg import LineChartSegDataset
from ..charts.spec import MASK_BACKGROUND, NUM_MASK_CLASSES
from ..nn import MLP, Adam, Module, Tensor, cross_entropy


@dataclass
class LCSegConfig:
    """Hyper-parameters for the LCSeg pixel classifier."""

    window: int = 7
    hidden_dim: int = 64
    learning_rate: float = 1e-3
    epochs: int = 5
    batch_size: int = 512
    max_pixels_per_image: int = 800
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window % 2 == 0:
            raise ValueError("window size must be odd")

    @property
    def feature_dim(self) -> int:
        return self.window * self.window + 2


class LCSegModel(Module):
    """Patch-window pixel classifier with an MLP + softmax head."""

    def __init__(self, config: Optional[LCSegConfig] = None) -> None:
        super().__init__()
        self.config = config or LCSegConfig()
        rng = np.random.default_rng(self.config.seed)
        self.classifier = MLP(
            in_features=self.config.feature_dim,
            hidden_features=[self.config.hidden_dim, self.config.hidden_dim],
            out_features=NUM_MASK_CLASSES,
            activation="relu",
            rng=rng,
        )

    def forward(self, features: Tensor) -> Tensor:
        """Return unnormalised class logits for a batch of pixel features."""
        return self.classifier(features)

    # ------------------------------------------------------------------ #
    # Feature extraction
    # ------------------------------------------------------------------ #
    def pixel_features(
        self, image: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Build feature vectors for the pixels at ``(rows, cols)``."""
        half = self.config.window // 2
        padded = np.pad(image, half, mode="constant")
        height, width = image.shape
        features = np.empty((rows.shape[0], self.config.feature_dim))
        for i, (row, col) in enumerate(zip(rows, cols)):
            window = padded[row : row + self.config.window, col : col + self.config.window]
            features[i, :-2] = window.ravel()
            features[i, -2] = row / max(height - 1, 1)
            features[i, -1] = col / max(width - 1, 1)
        return features

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_mask(self, image: np.ndarray) -> np.ndarray:
        """Predict the per-pixel class mask for a chart image."""
        image = np.asarray(image, dtype=np.float64)
        mask = np.full(image.shape, MASK_BACKGROUND, dtype=np.int8)
        rows, cols = np.nonzero(image > 0.0)
        if rows.size == 0:
            return mask
        features = self.pixel_features(image, rows, cols)
        logits = self.forward(Tensor(features)).numpy()
        classes = logits.argmax(axis=1).astype(np.int8)
        mask[rows, cols] = classes
        return mask

    def pixel_accuracy(self, image: np.ndarray, true_mask: np.ndarray) -> float:
        """Accuracy over inked pixels (background pixels are trivially right)."""
        rows, cols = np.nonzero(image > 0.0)
        if rows.size == 0:
            return 1.0
        predicted = self.predict_mask(image)
        return float(np.mean(predicted[rows, cols] == true_mask[rows, cols]))


@dataclass
class LCSegTrainingResult:
    """Losses and validation accuracy per epoch."""

    losses: List[float]
    accuracies: List[float]


def _collect_training_pixels(
    dataset: LineChartSegDataset,
    model: LCSegModel,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample inked pixels from every example and build (features, labels)."""
    feature_blocks: List[np.ndarray] = []
    label_blocks: List[np.ndarray] = []
    for example in dataset:
        rows, cols = np.nonzero(example.image > 0.0)
        if rows.size == 0:
            continue
        limit = model.config.max_pixels_per_image
        if rows.size > limit:
            keep = rng.choice(rows.size, size=limit, replace=False)
            rows, cols = rows[keep], cols[keep]
        feature_blocks.append(model.pixel_features(example.image, rows, cols))
        label_blocks.append(example.class_mask[rows, cols].astype(np.int64))
    if not feature_blocks:
        raise ValueError("LineChartSeg dataset contains no inked pixels")
    return np.concatenate(feature_blocks), np.concatenate(label_blocks)


def train_lcseg(
    dataset: LineChartSegDataset,
    config: Optional[LCSegConfig] = None,
    validation: Optional[LineChartSegDataset] = None,
) -> Tuple[LCSegModel, LCSegTrainingResult]:
    """Train an LCSeg model on a LineChartSeg dataset.

    Returns the trained model and the per-epoch training trace.
    """
    config = config or LCSegConfig()
    model = LCSegModel(config)
    rng = np.random.default_rng(config.seed)
    features, labels = _collect_training_pixels(dataset, model, rng)

    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    accuracies: List[float] = []
    n = features.shape[0]
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_losses: List[float] = []
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch_x = Tensor(features[idx])
            batch_y = labels[idx]
            logits = model(batch_x)
            loss = cross_entropy(logits, batch_y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)))
        if validation is not None and len(validation):
            acc = float(
                np.mean([model.pixel_accuracy(ex.image, ex.class_mask) for ex in validation])
            )
        else:
            # Training-set accuracy on a subsample keeps the trace cheap.
            sample = rng.choice(n, size=min(2000, n), replace=False)
            logits = model(Tensor(features[sample])).numpy()
            acc = float(np.mean(logits.argmax(axis=1) == labels[sample]))
        accuracies.append(acc)
    return model, LCSegTrainingResult(losses=losses, accuracies=accuracies)
