"""Containers for the visual elements extracted from a line chart.

The paper's visual element extractor produces two essential elements
(Sec. IV-A): the **lines** (used by the segment-level line chart encoder) and
the **y-axis ticks** (used to filter candidate columns and to query the
interval-tree index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class ExtractedLine:
    """One extracted line.

    Attributes
    ----------
    mask:
        Boolean pixel mask of the line over the full chart image.
    trace_rows:
        For every pixel column of the plot area, the (mean) pixel row of the
        line in that column, or NaN where the line has no pixel.  The array
        is indexed by column offset within the plot area.
    trace_values:
        ``trace_rows`` converted to data values using the extracted y-axis
        range (NaN propagates).  This is the "shape" signal used by the Qetch
        baseline and by relevance diagnostics.
    """

    mask: np.ndarray
    trace_rows: np.ndarray
    trace_values: np.ndarray

    def __post_init__(self) -> None:
        if self.mask.dtype != bool:
            object.__setattr__(self, "mask", self.mask.astype(bool))
        if self.trace_rows.shape != self.trace_values.shape:
            raise ValueError("trace_rows and trace_values must have the same shape")

    @property
    def coverage(self) -> float:
        """Fraction of plot columns in which the line has at least one pixel."""
        return float(np.mean(~np.isnan(self.trace_rows)))

    def interpolated_values(self) -> np.ndarray:
        """Return ``trace_values`` with NaN gaps filled by linear interpolation."""
        values = self.trace_values.copy()
        nans = np.isnan(values)
        if nans.all():
            return np.zeros_like(values)
        if nans.any():
            idx = np.arange(values.shape[0])
            values[nans] = np.interp(idx[nans], idx[~nans], values[~nans])
        return values


@dataclass
class VisualElements:
    """The full output of the visual element extractor for one chart."""

    lines: List[ExtractedLine]
    y_range: Tuple[float, float]
    tick_values: List[float] = field(default_factory=list)
    plot_bounds: Optional[Tuple[int, int, int, int]] = None  # top, bottom, left, right

    def __post_init__(self) -> None:
        low, high = self.y_range
        if low > high:
            object.__setattr__(self, "y_range", (high, low))

    @property
    def num_lines(self) -> int:
        return len(self.lines)

    @property
    def y_span(self) -> float:
        low, high = self.y_range
        return high - low

    def line_value_matrix(self) -> np.ndarray:
        """Stack all interpolated line values into an ``(M, plot_width)`` array."""
        if not self.lines:
            return np.zeros((0, 0))
        return np.stack([line.interpolated_values() for line in self.lines])
