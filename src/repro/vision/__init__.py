"""``repro.vision`` — visual element extraction: LCSeg model and extractor."""

from .elements import ExtractedLine, VisualElements
from .extractor import (
    VisualElementExtractor,
    decode_tick_values,
    estimate_num_lines,
    extract_y_range,
    rows_to_values,
    separate_line_instances,
    tick_pixel_rows,
)
from .lcseg import LCSegConfig, LCSegModel, LCSegTrainingResult, train_lcseg

__all__ = [
    "ExtractedLine",
    "LCSegConfig",
    "LCSegModel",
    "LCSegTrainingResult",
    "VisualElementExtractor",
    "VisualElements",
    "decode_tick_values",
    "estimate_num_lines",
    "extract_y_range",
    "rows_to_values",
    "separate_line_instances",
    "tick_pixel_rows",
    "train_lcseg",
]
