"""Visual element extractor: chart pixels → lines and y-axis value range.

Sec. IV-A of the paper: the extractor recovers the two essential visual
elements from a line chart query — the lines and the y-axis ticks.  This
module turns a segmentation mask (either the ground-truth mask the rasteriser
produced or a mask predicted by the trained LCSeg model) into:

* per-line pixel masks and per-column traces (pixel rows → data values),
* the numeric y-axis range, decoded from the bitmap tick labels by template
  matching (our stand-in for OCR on real charts).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..charts.spec import (
    MASK_LINE,
    MASK_TICK_LABEL,
    MASK_Y_TICK,
    ChartSpec,
)
from ..charts.ticks import GLYPH_HEIGHT, match_text
from .elements import ExtractedLine, VisualElements
from .lcseg import LCSegModel


# --------------------------------------------------------------------------- #
# Tick decoding
# --------------------------------------------------------------------------- #
def decode_tick_values(image: np.ndarray, class_mask: np.ndarray) -> List[float]:
    """Decode the numeric values of all y-axis tick labels in the chart.

    Tick labels are located via the ``tick_label`` segmentation class,
    grouped into horizontal bands (one per label), cropped, and decoded by
    template matching against the glyph set.  Labels that fail to parse are
    skipped — a robustness property verified in the tests.
    """
    label_rows, label_cols = np.nonzero(class_mask == MASK_TICK_LABEL)
    if label_rows.size == 0:
        return []
    values: List[float] = []
    # Group label pixels into bands of consecutive rows.
    unique_rows = np.unique(label_rows)
    bands: List[Tuple[int, int]] = []
    band_start = unique_rows[0]
    prev = unique_rows[0]
    for row in unique_rows[1:]:
        if row - prev > 1:
            bands.append((band_start, prev))
            band_start = row
        prev = row
    bands.append((band_start, prev))

    for top, bottom in bands:
        in_band = (label_rows >= top) & (label_rows <= bottom)
        cols = label_cols[in_band]
        left, right = cols.min(), cols.max()
        crop = (image[top : top + GLYPH_HEIGHT, left : right + 1] > 0.5).astype(np.int8)
        if crop.shape[0] < GLYPH_HEIGHT:
            crop = np.pad(crop, ((0, GLYPH_HEIGHT - crop.shape[0]), (0, 0)))
        text = match_text(crop)
        try:
            values.append(float(text))
        except ValueError:
            continue
    return values


def extract_y_range(
    image: np.ndarray,
    class_mask: np.ndarray,
    fallback: Optional[Tuple[float, float]] = None,
) -> Tuple[float, float]:
    """Return the (low, high) y-axis value range read from the tick labels."""
    values = decode_tick_values(image, class_mask)
    if len(values) >= 2:
        return float(min(values)), float(max(values))
    if fallback is not None:
        return fallback
    raise ValueError("could not decode at least two y-axis tick values")


def tick_pixel_rows(class_mask: np.ndarray) -> List[int]:
    """Pixel row of every detected y-tick mark (mean row per tick band)."""
    rows, _ = np.nonzero(class_mask == MASK_Y_TICK)
    if rows.size == 0:
        return []
    unique = np.unique(rows)
    groups: List[List[int]] = [[int(unique[0])]]
    for row in unique[1:]:
        if row - groups[-1][-1] <= 1:
            groups[-1].append(int(row))
        else:
            groups.append([int(row)])
    return [int(np.mean(g)) for g in groups]


# --------------------------------------------------------------------------- #
# Line instance separation and tracing
# --------------------------------------------------------------------------- #
def _column_runs(column_pixels: np.ndarray) -> List[float]:
    """Mean row of each contiguous run of True values in a boolean column."""
    rows = np.nonzero(column_pixels)[0]
    if rows.size == 0:
        return []
    runs: List[List[int]] = [[int(rows[0])]]
    for row in rows[1:]:
        if row - runs[-1][-1] <= 1:
            runs[-1].append(int(row))
        else:
            runs.append([int(row)])
    return [float(np.mean(run)) for run in runs]


def estimate_num_lines(line_mask: np.ndarray, plot_bounds: Tuple[int, int, int, int]) -> int:
    """Estimate the number of distinct lines from run counts per column.

    Lines may cross (reducing the per-column count locally), so the estimate
    uses a high percentile of the per-column run counts rather than the
    maximum, which is sensitive to rendering artefacts.
    """
    top, bottom, left, right = plot_bounds
    counts = []
    for col in range(left, right):
        counts.append(len(_column_runs(line_mask[top:bottom, col])))
    counts = [c for c in counts if c > 0]
    if not counts:
        return 0
    return int(np.percentile(counts, 90))


def separate_line_instances(
    line_mask: np.ndarray,
    plot_bounds: Tuple[int, int, int, int],
    num_lines: Optional[int] = None,
) -> List[np.ndarray]:
    """Split a line-class mask into per-line traces by greedy row tracking.

    Returns one array per line of length ``right - left`` holding the pixel
    row of that line in each plot column (NaN where the line is absent).
    """
    top, bottom, left, right = plot_bounds
    width = right - left
    if num_lines is None:
        num_lines = estimate_num_lines(line_mask, plot_bounds)
    if num_lines == 0:
        return []

    traces = [np.full(width, np.nan) for _ in range(num_lines)]
    last_rows: List[Optional[float]] = [None] * num_lines

    for offset in range(width):
        col = left + offset
        candidates = _column_runs(line_mask[top:bottom, col])
        candidates = [c + top for c in candidates]
        if not candidates:
            continue
        unassigned = list(range(num_lines))
        remaining = list(candidates)
        # Greedily match candidates to the closest previously seen line row.
        pairs: List[Tuple[float, int, float]] = []
        for line_idx in range(num_lines):
            if last_rows[line_idx] is None:
                continue
            for cand in remaining:
                pairs.append((abs(cand - last_rows[line_idx]), line_idx, cand))
        pairs.sort(key=lambda item: item[0])
        used_lines: set = set()
        used_cands: set = set()
        for _, line_idx, cand in pairs:
            if line_idx in used_lines or cand in used_cands:
                continue
            traces[line_idx][offset] = cand
            last_rows[line_idx] = cand
            used_lines.add(line_idx)
            used_cands.add(cand)
        # Any never-seen lines pick up leftover candidates in order.
        leftover = [c for c in remaining if c not in used_cands]
        fresh = [i for i in unassigned if i not in used_lines and last_rows[i] is None]
        for line_idx, cand in zip(fresh, leftover):
            traces[line_idx][offset] = cand
            last_rows[line_idx] = cand
    return traces


def rows_to_values(
    trace_rows: np.ndarray,
    y_range: Tuple[float, float],
    plot_top: int,
    plot_bottom: int,
) -> np.ndarray:
    """Convert pixel rows to data values using the y-axis mapping."""
    low, high = y_range
    span_rows = max(plot_bottom - plot_top, 1)
    frac = (plot_bottom - trace_rows) / span_rows
    return low + frac * (high - low)


def _trace_to_mask(
    trace_rows: np.ndarray, shape: Tuple[int, int], plot_left: int
) -> np.ndarray:
    mask = np.zeros(shape, dtype=bool)
    for offset, row in enumerate(trace_rows):
        if np.isnan(row):
            continue
        mask[int(round(row)), plot_left + offset] = True
    return mask


# --------------------------------------------------------------------------- #
# Top-level extraction
# --------------------------------------------------------------------------- #
class VisualElementExtractor:
    """Turns a rendered chart into :class:`VisualElements`.

    Parameters
    ----------
    model:
        Optional trained :class:`LCSegModel`.  When provided, the class mask
        is predicted from pixels alone ("model" mode); otherwise the
        rasteriser's ground-truth class mask is used ("mask" mode), which
        corresponds to the paper's automatic LineChartSeg labelling.
    use_oracle_instances:
        When true, per-line instance masks recorded by the rasteriser are
        used directly (the configuration used for benchmark construction);
        when false, instances are separated from the class mask by greedy
        tracking, exercising the full query-time pipeline.
    """

    def __init__(
        self,
        model: Optional[LCSegModel] = None,
        use_oracle_instances: bool = True,
    ) -> None:
        self.model = model
        self.use_oracle_instances = use_oracle_instances

    def extract(self, chart: LineChart) -> VisualElements:
        spec = chart.spec
        plot_bounds = (spec.plot_top, spec.plot_bottom, spec.plot_left, spec.plot_right)

        if self.model is not None:
            class_mask = self.model.predict_mask(chart.image)
        else:
            class_mask = chart.class_mask

        y_range = extract_y_range(chart.image, class_mask, fallback=chart.axis_range)

        lines: List[ExtractedLine] = []
        if self.use_oracle_instances and chart.line_masks:
            for mask in chart.line_masks:
                trace_rows = self._trace_from_mask(mask, plot_bounds)
                values = rows_to_values(trace_rows, y_range, spec.plot_top, spec.plot_bottom)
                lines.append(
                    ExtractedLine(mask=mask, trace_rows=trace_rows, trace_values=values)
                )
        else:
            line_mask = class_mask == MASK_LINE
            traces = separate_line_instances(line_mask, plot_bounds)
            for trace_rows in traces:
                mask = _trace_to_mask(trace_rows, chart.image.shape, spec.plot_left)
                values = rows_to_values(trace_rows, y_range, spec.plot_top, spec.plot_bottom)
                lines.append(
                    ExtractedLine(mask=mask, trace_rows=trace_rows, trace_values=values)
                )

        return VisualElements(
            lines=lines,
            y_range=y_range,
            tick_values=decode_tick_values(chart.image, class_mask),
            plot_bounds=plot_bounds,
        )

    @staticmethod
    def _trace_from_mask(
        mask: np.ndarray, plot_bounds: Tuple[int, int, int, int]
    ) -> np.ndarray:
        top, bottom, left, right = plot_bounds
        width = right - left
        trace = np.full(width, np.nan)
        for offset in range(width):
            rows = np.nonzero(mask[top:bottom, left + offset])[0]
            if rows.size:
                trace[offset] = float(np.mean(rows)) + top
        return trace
