"""Cross-modal matcher: HCMAN and the averaged ablation variant (Sec. IV-D).

The hierarchical cross-modal attention network (HCMAN) aligns the chart and
the table at two levels:

* **SL-SAN (segment level)** — every line segment is scored against every
  data segment with a scaled dot-product similarity between learned query and
  key projections; each line (column) is then reconstructed as the
  relevance-weighted sum of its own segments, where a segment's relevance is
  its best match on the other side.
* **LL-SAN (line-to-column level)** — the reconstructed line and column
  representations are scored against each other the same way, yielding
  relevance-weighted chart-level and table-level representations.

The two reconstructed representations — together with their element-wise
product, absolute difference and cosine similarity (standard interaction
features for matching networks, which give the head a direct gradient path to
"similar representations ⇒ high relevance") — are passed through an MLP with
a sigmoid head to produce ``Rel'(V, T) ∈ [0, 1]``.

:class:`AveragedMatcher` is the FCM−HCMAN ablation of Table V: all segment
and line/column representations are averaged (no attention) before the same
interaction head, so the two variants differ only in the fine-grained
attention-based reconstruction the paper ablates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Linear, Module, Tensor, concatenate, masked_keep, where
from .config import FCMConfig


def _scaled_similarity(queries: Tensor, keys: Tensor) -> Tensor:
    """Scaled dot-product similarity matrix ``(num_q, num_k)``."""
    dim = queries.shape[-1]
    return queries.matmul(keys.swapaxes(-1, -2)) * (1.0 / np.sqrt(dim))


def _masked_mean(values: Tensor, mask: np.ndarray) -> Tensor:
    """Per-batch mean of ``values`` restricted to ``mask``, shape ``(B, 1)``.

    ``values`` has shape ``(B, ...)`` and ``mask`` is a boolean array of the
    same shape; the mean runs over every non-batch axis.  Matches the plain
    ``.mean()`` of the per-pair path on the unpadded entries.
    """
    axes = tuple(range(1, values.ndim))
    counts = np.asarray(mask, dtype=bool).sum(axis=axes).astype(values.data.dtype)
    kept = where(mask, values, 0.0)
    total = kept.sum(axis=axes)
    return (total * (1.0 / np.maximum(counts, 1.0))).reshape(-1, 1)


class InteractionHead(Module):
    """MLP head over chart/table interaction features.

    The input is ``[v_chart, v_table, v_chart ⊙ v_table, |v_chart − v_table|,
    cos(v_chart, v_table), extra...]``, giving the head both the raw
    representations and explicit match evidence.  ``num_extra_features``
    reserves room for additional scalar evidence (the HCMAN matcher feeds the
    segment-level and line-level cross-modal similarities in here).
    """

    def __init__(
        self,
        config: FCMConfig,
        rng: np.random.Generator,
        num_extra_features: int = 0,
    ) -> None:
        super().__init__()
        self.num_extra_features = num_extra_features
        self.mlp = MLP(
            in_features=4 * config.embed_dim + 1 + num_extra_features,
            hidden_features=[config.embed_dim],
            out_features=1,
            activation="relu",
            rng=rng,
        )

    def forward(
        self,
        chart_vec: Tensor,
        table_vec: Tensor,
        extra: Optional[Tensor] = None,
    ) -> Tensor:
        product = chart_vec * table_vec
        difference = (chart_vec - table_vec).abs()
        chart_norm = ((chart_vec * chart_vec).sum() + 1e-8) ** 0.5
        table_norm = ((table_vec * table_vec).sum() + 1e-8) ** 0.5
        cosine = (chart_vec * table_vec).sum() / (chart_norm * table_norm)
        parts = [chart_vec, table_vec, product, difference, cosine.reshape(1)]
        if self.num_extra_features:
            if extra is None:
                raise ValueError(
                    f"head expects {self.num_extra_features} extra features"
                )
            parts.append(extra.reshape(self.num_extra_features))
        joint = concatenate(parts, axis=0)
        return self.mlp(joint).sigmoid().squeeze()

    def forward_batch(
        self,
        chart_vecs: Tensor,
        table_vecs: Tensor,
        extra: Optional[Tensor] = None,
    ) -> Tensor:
        """Score ``B`` candidate pairs at once.

        ``chart_vecs`` and ``table_vecs`` have shape ``(B, K)`` and ``extra``
        (when the head was built with extra features) has shape
        ``(B, num_extra_features)``.  Returns the ``(B,)`` relevance scores —
        row ``b`` equals :meth:`forward` on the ``b``-th pair.
        """
        product = chart_vecs * table_vecs
        difference = (chart_vecs - table_vecs).abs()
        chart_norm = ((chart_vecs * chart_vecs).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
        table_norm = ((table_vecs * table_vecs).sum(axis=-1, keepdims=True) + 1e-8) ** 0.5
        cosine = (chart_vecs * table_vecs).sum(axis=-1, keepdims=True) / (
            chart_norm * table_norm
        )
        parts = [chart_vecs, table_vecs, product, difference, cosine]
        if self.num_extra_features:
            if extra is None:
                raise ValueError(
                    f"head expects {self.num_extra_features} extra features"
                )
            parts.append(extra.reshape(-1, self.num_extra_features))
        joint = concatenate(parts, axis=-1)
        return self.mlp(joint).sigmoid().squeeze(axis=-1)


class SegmentLevelAttention(Module):
    """SL-SAN: reconstruct each line/column from its best-matching segments."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.embed_dim
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)

    def forward(
        self, chart_repr: Tensor, table_repr: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reconstruct line and column representations.

        Parameters
        ----------
        chart_repr:
            ``E_V`` of shape ``(M, N1, K)``.
        table_repr:
            ``E_T`` of shape ``(NC, N2, K)``.

        Returns
        -------
        (lines, columns, evidence):
            ``lines`` of shape ``(M, K)``, ``columns`` of shape ``(NC, K)``
            and ``evidence`` — two scalars summarising the segment-level
            cross-modal similarity in each direction.
        """
        m, n1, dim = chart_repr.shape
        nc, n2, _ = table_repr.shape
        chart_flat = chart_repr.reshape(m * n1, dim)
        table_flat = table_repr.reshape(nc * n2, dim)

        # Cross-modal segment similarities (shared projections both ways).
        sim = _scaled_similarity(self.query_proj(chart_flat), self.key_proj(table_flat))
        sim_chart = sim.reshape(m, n1, nc * n2)
        sim_table = sim.swapaxes(0, 1).reshape(nc, n2, m * n1)

        # A segment's relevance is its best cross-modal match.
        chart_scores = sim_chart.max(axis=-1)  # (M, N1)
        table_scores = sim_table.max(axis=-1)  # (NC, N2)

        chart_weights = chart_scores.softmax(axis=-1).expand_dims(-1)  # (M, N1, 1)
        table_weights = table_scores.softmax(axis=-1).expand_dims(-1)  # (NC, N2, 1)

        chart_values = self.value_proj(chart_repr)
        table_values = self.value_proj(table_repr)
        lines = (chart_values * chart_weights).sum(axis=1)  # (M, K)
        columns = (table_values * table_weights).sum(axis=1)  # (NC, K)
        # Summary of the segment-level match evidence, fed to the head.
        evidence = concatenate(
            [chart_scores.mean().reshape(1), table_scores.mean().reshape(1)], axis=0
        )
        return lines, columns, evidence

    def forward_batch(
        self,
        chart_repr: Tensor,
        table_batch: Tensor,
        segment_mask: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reconstruct lines/columns for ``B`` candidate tables at once.

        Parameters
        ----------
        chart_repr:
            ``E_V`` of shape ``(M, N1, K)`` — shared by every candidate.
        table_batch:
            Stacked, zero-padded ``E_T`` of shape ``(B, NC, N2, K)``.
        segment_mask:
            Boolean ``(B, NC, N2)``; True marks real (unpadded) segments.

        Returns
        -------
        (lines, columns, evidence):
            ``lines`` of shape ``(B, M, K)``, ``columns`` of shape
            ``(B, NC, K)`` and ``evidence`` of shape ``(B, 2)``.  Padded
            positions are excluded from every max/softmax/mean, so row ``b``
            matches :meth:`forward` on candidate ``b`` alone.
        """
        m, n1, dim = chart_repr.shape
        b, nc, n2, _ = table_batch.shape
        chart_flat = chart_repr.reshape(m * n1, dim)
        table_flat = table_batch.reshape(b, nc * n2, dim)
        seg_valid = np.asarray(segment_mask, dtype=bool)
        flat_valid = seg_valid.reshape(b, 1, nc * n2)

        # (M*N1, K) x (B, K, NC*N2) -> (B, M*N1, NC*N2); padded table segments
        # are pushed to -inf so they can never win a max and get exactly zero
        # softmax weight (exp(-inf) == 0), which keeps the batched scores
        # bitwise-comparable to the per-pair path.
        sim = _scaled_similarity(self.query_proj(chart_flat), self.key_proj(table_flat))
        sim = masked_keep(sim, flat_valid, -np.inf)
        sim_chart = sim.reshape(b, m, n1, nc * n2)
        sim_table = sim.swapaxes(-1, -2).reshape(b, nc, n2, m * n1)

        chart_scores = sim_chart.max(axis=-1)  # (B, M, N1)
        table_scores = sim_table.max(axis=-1)  # (B, NC, N2); -inf when padded

        chart_weights = chart_scores.softmax(axis=-1).expand_dims(-1)
        # Rows of fully-padded columns are all -inf, which would make softmax
        # produce NaN; those columns are discarded later by the column mask,
        # so any finite placeholder works — use 0.
        column_alive = seg_valid.any(axis=-1)[..., None]  # (B, NC, 1)
        table_weights = (
            masked_keep(table_scores, column_alive, 0.0)
            .softmax(axis=-1)
            .expand_dims(-1)
        )

        chart_values = self.value_proj(chart_repr)  # (M, N1, K)
        table_values = self.value_proj(table_batch)  # (B, NC, N2, K)
        lines = (chart_values * chart_weights).sum(axis=2)  # (B, M, K)
        columns = (table_values * table_weights).sum(axis=2)  # (B, NC, K)
        evidence = concatenate(
            [
                chart_scores.mean(axis=(1, 2)).reshape(-1, 1),
                _masked_mean(table_scores, seg_valid),
            ],
            axis=-1,
        )
        return lines, columns, evidence

    def forward_pairs(
        self,
        chart_batch: Tensor,
        table_batch: Tensor,
        chart_mask: np.ndarray,
        segment_mask: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reconstruct lines/columns for ``P`` independent (chart, table) pairs.

        Unlike :meth:`forward_batch`, which shares one chart across all
        candidates (the inference layout), every pair here carries its *own*
        padded chart — the layout of the batched trainer, where each pair is
        one example's chart against its positive or one of its negatives.

        Parameters
        ----------
        chart_batch:
            Stacked, zero-padded ``E_V`` of shape ``(P, M, N1, K)``.
        table_batch:
            Stacked, zero-padded ``E_T`` of shape ``(P, NC, N2, K)``.
        chart_mask:
            Boolean ``(P, M, N1)``; True marks real line segments.
        segment_mask:
            Boolean ``(P, NC, N2)``; True marks real data segments.

        Returns
        -------
        (lines, columns, evidence):
            ``lines`` of shape ``(P, M, K)``, ``columns`` of shape
            ``(P, NC, K)`` and ``evidence`` of shape ``(P, 2)``.  Padding on
            either side is excluded from every max/softmax/mean, so row ``p``
            matches :meth:`forward` on pair ``p`` alone.
        """
        p, m, n1, dim = chart_batch.shape
        _, nc, n2, _ = table_batch.shape
        chart_flat = chart_batch.reshape(p, m * n1, dim)
        table_flat = table_batch.reshape(p, nc * n2, dim)
        line_seg_valid = np.asarray(chart_mask, dtype=bool)
        seg_valid = np.asarray(segment_mask, dtype=bool)
        pair_valid = (
            line_seg_valid.reshape(p, m * n1)[:, :, None]
            & seg_valid.reshape(p, nc * n2)[:, None, :]
        )

        # (P, M*N1, K) x (P, K, NC*N2) -> (P, M*N1, NC*N2); any position that
        # is padded on either side goes to -inf so it can never win a max and
        # gets exactly zero softmax weight.
        sim = _scaled_similarity(self.query_proj(chart_flat), self.key_proj(table_flat))
        sim = masked_keep(sim, pair_valid, -np.inf)
        sim_chart = sim.reshape(p, m, n1, nc * n2)
        sim_table = sim.swapaxes(-1, -2).reshape(p, nc, n2, m * n1)

        chart_scores = sim_chart.max(axis=-1)  # (P, M, N1); -inf when padded
        table_scores = sim_table.max(axis=-1)  # (P, NC, N2); -inf when padded

        # Fully-padded lines/columns would be all--inf softmax rows (NaN);
        # their weights are irrelevant — the masks discard them downstream —
        # so any finite placeholder works: use 0.
        line_alive = line_seg_valid.any(axis=-1)[..., None]  # (P, M, 1)
        column_alive = seg_valid.any(axis=-1)[..., None]  # (P, NC, 1)
        chart_weights = (
            masked_keep(chart_scores, line_alive, 0.0).softmax(axis=-1).expand_dims(-1)
        )
        table_weights = (
            masked_keep(table_scores, column_alive, 0.0).softmax(axis=-1).expand_dims(-1)
        )

        chart_values = self.value_proj(chart_batch)  # (P, M, N1, K)
        table_values = self.value_proj(table_batch)  # (P, NC, N2, K)
        lines = (chart_values * chart_weights).sum(axis=2)  # (P, M, K)
        columns = (table_values * table_weights).sum(axis=2)  # (P, NC, K)
        evidence = concatenate(
            [
                _masked_mean(chart_scores, line_seg_valid),
                _masked_mean(table_scores, seg_valid),
            ],
            axis=-1,
        )
        return lines, columns, evidence


class LineColumnAttention(Module):
    """LL-SAN: reconstruct the chart and table from their best lines/columns."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.embed_dim
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)

    def forward(
        self, lines: Tensor, columns: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reduce ``(M, K)`` lines and ``(NC, K)`` columns to two vectors.

        Also returns two scalars summarising the line-to-column similarity in
        each direction (how well each line is covered by some column, and
        vice versa), which the head uses as explicit match evidence.
        """
        sim = _scaled_similarity(self.query_proj(lines), self.key_proj(columns))  # (M, NC)

        line_scores = sim.max(axis=-1)  # (M,)
        column_scores = sim.swapaxes(0, 1).max(axis=-1)  # (NC,)

        line_weights = line_scores.softmax(axis=-1).expand_dims(-1)
        column_weights = column_scores.softmax(axis=-1).expand_dims(-1)

        chart_vec = (self.value_proj(lines) * line_weights).sum(axis=0)  # (K,)
        table_vec = (self.value_proj(columns) * column_weights).sum(axis=0)  # (K,)
        evidence = concatenate(
            [line_scores.mean().reshape(1), column_scores.mean().reshape(1)], axis=0
        )
        return chart_vec, table_vec, evidence

    def forward_batch(
        self,
        lines: Tensor,
        columns: Tensor,
        column_mask: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reduce ``(B, M, K)`` lines and ``(B, NC, K)`` columns per candidate.

        ``column_mask`` is a boolean ``(B, NC)`` marking real columns; padded
        columns are masked out of every max/softmax/mean so row ``b`` matches
        :meth:`forward` on candidate ``b`` alone.  Returns ``(B, K)`` chart
        and table vectors plus ``(B, 2)`` evidence.
        """
        col_valid = np.asarray(column_mask, dtype=bool)
        sim = _scaled_similarity(self.query_proj(lines), self.key_proj(columns))
        sim = masked_keep(sim, col_valid[:, None, :], -np.inf)  # (B, M, NC)

        line_scores = sim.max(axis=-1)  # (B, M)
        column_scores = sim.swapaxes(-1, -2).max(axis=-1)  # (B, NC); -inf padded

        line_weights = line_scores.softmax(axis=-1).expand_dims(-1)  # (B, M, 1)
        # Padded columns are -inf, so they receive exactly zero softmax weight;
        # at least one column per candidate is real, so no row is all -inf.
        column_weights = column_scores.softmax(axis=-1).expand_dims(-1)  # (B, NC, 1)

        chart_vecs = (self.value_proj(lines) * line_weights).sum(axis=1)  # (B, K)
        table_vecs = (self.value_proj(columns) * column_weights).sum(axis=1)  # (B, K)
        evidence = concatenate(
            [
                line_scores.mean(axis=-1).reshape(-1, 1),
                _masked_mean(column_scores, col_valid),
            ],
            axis=-1,
        )
        return chart_vecs, table_vecs, evidence

    def forward_pairs(
        self,
        lines: Tensor,
        columns: Tensor,
        line_mask: np.ndarray,
        column_mask: np.ndarray,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reduce per-pair lines and columns with padding masks on both sides.

        ``lines`` is ``(P, M, K)`` with boolean ``line_mask`` ``(P, M)``;
        ``columns`` is ``(P, NC, K)`` with boolean ``column_mask`` ``(P, NC)``.
        Padded lines *and* columns are masked out of every max/softmax/mean,
        so row ``p`` matches :meth:`forward` on pair ``p`` alone.  Returns
        ``(P, K)`` chart and table vectors plus ``(P, 2)`` evidence.
        """
        line_valid = np.asarray(line_mask, dtype=bool)
        col_valid = np.asarray(column_mask, dtype=bool)
        sim = _scaled_similarity(self.query_proj(lines), self.key_proj(columns))
        sim = masked_keep(
            sim, line_valid[:, :, None] & col_valid[:, None, :], -np.inf
        )  # (P, M, NC)

        line_scores = sim.max(axis=-1)  # (P, M); -inf at padded lines
        column_scores = sim.swapaxes(-1, -2).max(axis=-1)  # (P, NC); -inf padded

        # Padded lines/columns sit at -inf, so they receive exactly zero
        # softmax weight; every pair has at least one real line and one real
        # column, so no row is all -inf.
        line_weights = line_scores.softmax(axis=-1).expand_dims(-1)  # (P, M, 1)
        column_weights = column_scores.softmax(axis=-1).expand_dims(-1)  # (P, NC, 1)

        chart_vecs = (self.value_proj(lines) * line_weights).sum(axis=1)  # (P, K)
        table_vecs = (self.value_proj(columns) * column_weights).sum(axis=1)  # (P, K)
        evidence = concatenate(
            [
                _masked_mean(line_scores, line_valid),
                _masked_mean(column_scores, col_valid),
            ],
            axis=-1,
        )
        return chart_vecs, table_vecs, evidence


class HCMANMatcher(Module):
    """The full hierarchical cross-modal attention matcher."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.segment_level = SegmentLevelAttention(config, rng)
        self.line_level = LineColumnAttention(config, rng)
        self.head = InteractionHead(config, rng, num_extra_features=4)

    def forward(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        lines, columns, segment_evidence = self.segment_level(chart_repr, table_repr)
        chart_vec, table_vec, line_evidence = self.line_level(lines, columns)
        evidence = concatenate([segment_evidence, line_evidence], axis=0)
        return self.head(chart_vec, table_vec, extra=evidence)

    def forward_batch(
        self,
        chart_repr: Tensor,
        table_batch: Tensor,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
    ) -> Tensor:
        """Score one chart against ``B`` padded candidate tables at once.

        See :meth:`SegmentLevelAttention.forward_batch` for the stacked
        layout.  Returns the ``(B,)`` relevance scores; row ``b`` equals
        :meth:`forward` on candidate ``b``.

        Example
        -------
        >>> batch, seg_mask, col_mask = pad_candidate_batch(cached_reps)
        >>> with model.inference():
        ...     scores = matcher.forward_batch(chart_repr, Tensor(batch),
        ...                                    seg_mask, col_mask)  # (B,)
        """
        lines, columns, segment_evidence = self.segment_level.forward_batch(
            chart_repr, table_batch, segment_mask
        )
        chart_vecs, table_vecs, line_evidence = self.line_level.forward_batch(
            lines, columns, column_mask
        )
        evidence = concatenate([segment_evidence, line_evidence], axis=-1)
        return self.head.forward_batch(chart_vecs, table_vecs, extra=evidence)

    def forward_pairs(
        self,
        chart_batch: Tensor,
        table_batch: Tensor,
        chart_mask: np.ndarray,
        segment_mask: np.ndarray,
    ) -> Tensor:
        """Score ``P`` independent padded (chart, table) pairs at once.

        The training-path layout: ``chart_batch`` ``(P, M, N1, K)`` carries a
        (possibly repeated) chart per pair, ``table_batch`` ``(P, NC, N2, K)``
        the candidate tables, with boolean validity masks ``chart_mask``
        ``(P, M, N1)`` and ``segment_mask`` ``(P, NC, N2)``.  Fully
        differentiable — this is the stacked forward the batched contrastive
        loss backpropagates through.  Returns the ``(P,)`` relevance scores;
        row ``p`` equals :meth:`forward` on pair ``p``.

        Example
        -------
        >>> batch, mask = pad_stack([repr_a, repr_a, repr_b])   # chart per pair
        >>> tables, tmask = pad_stack([pos_a, neg_a, pos_b])
        >>> scores = matcher.forward_pairs(batch, tables,
        ...                                mask[..., 0], tmask[..., 0])  # (3,)
        """
        line_mask = np.asarray(chart_mask, dtype=bool).any(axis=-1)
        column_mask = np.asarray(segment_mask, dtype=bool).any(axis=-1)
        lines, columns, segment_evidence = self.segment_level.forward_pairs(
            chart_batch, table_batch, chart_mask, segment_mask
        )
        chart_vecs, table_vecs, line_evidence = self.line_level.forward_pairs(
            lines, columns, line_mask, column_mask
        )
        evidence = concatenate([segment_evidence, line_evidence], axis=-1)
        return self.head.forward_batch(chart_vecs, table_vecs, extra=evidence)


class AveragedMatcher(Module):
    """FCM−HCMAN ablation: mean-pool everything, then the same interaction head."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.head = InteractionHead(config, rng)

    def forward(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        chart_vec = chart_repr.mean(axis=(0, 1))
        table_vec = table_repr.mean(axis=(0, 1))
        return self.head(chart_vec, table_vec)

    def forward_batch(
        self,
        chart_repr: Tensor,
        table_batch: Tensor,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
    ) -> Tensor:
        """Batched mean-pool scoring over ``B`` padded candidates, ``(B,)``."""
        del column_mask  # segment_mask already covers padded columns entirely
        b = table_batch.shape[0]
        seg_valid = np.asarray(segment_mask, dtype=bool)
        chart_vec = chart_repr.mean(axis=(0, 1))  # (K,), shared by the batch
        chart_vecs = chart_vec.expand_dims(0) + np.zeros((b, 1))
        # Masked mean over the real (column, segment) cells of each candidate;
        # the bool mask and count arrays are lifted to the batch dtype by the
        # ops themselves.
        counts = seg_valid.sum(axis=(1, 2))  # (B,)
        table_vecs = (table_batch * seg_valid[..., None]).sum(axis=(1, 2)) * (
            1.0 / np.maximum(counts, 1.0)
        )[:, None]
        return self.head.forward_batch(chart_vecs, table_vecs)

    def forward_pairs(
        self,
        chart_batch: Tensor,
        table_batch: Tensor,
        chart_mask: np.ndarray,
        segment_mask: np.ndarray,
    ) -> Tensor:
        """Batched mean-pool scoring of ``P`` padded (chart, table) pairs.

        Same contract as :meth:`HCMANMatcher.forward_pairs`: per-pair charts
        ``(P, M, N1, K)`` and tables ``(P, NC, N2, K)`` with validity masks;
        both sides are mean-pooled over their *real* cells only.  Returns the
        ``(P,)`` scores, differentiable end to end.
        """

        def _pooled(values: Tensor, valid: np.ndarray) -> Tensor:
            counts = valid.sum(axis=(1, 2))
            total = (values * valid[..., None]).sum(axis=(1, 2))
            return total * (1.0 / np.maximum(counts, 1.0))[:, None]

        chart_vecs = _pooled(chart_batch, np.asarray(chart_mask, dtype=bool))
        table_vecs = _pooled(table_batch, np.asarray(segment_mask, dtype=bool))
        return self.head.forward_batch(chart_vecs, table_vecs)


def build_matcher(config: FCMConfig, rng: np.random.Generator) -> Module:
    """Select the matcher according to ``config.use_hcman``."""
    if config.use_hcman:
        return HCMANMatcher(config, rng)
    return AveragedMatcher(config, rng)
