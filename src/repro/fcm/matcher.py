"""Cross-modal matcher: HCMAN and the averaged ablation variant (Sec. IV-D).

The hierarchical cross-modal attention network (HCMAN) aligns the chart and
the table at two levels:

* **SL-SAN (segment level)** — every line segment is scored against every
  data segment with a scaled dot-product similarity between learned query and
  key projections; each line (column) is then reconstructed as the
  relevance-weighted sum of its own segments, where a segment's relevance is
  its best match on the other side.
* **LL-SAN (line-to-column level)** — the reconstructed line and column
  representations are scored against each other the same way, yielding
  relevance-weighted chart-level and table-level representations.

The two reconstructed representations — together with their element-wise
product, absolute difference and cosine similarity (standard interaction
features for matching networks, which give the head a direct gradient path to
"similar representations ⇒ high relevance") — are passed through an MLP with
a sigmoid head to produce ``Rel'(V, T) ∈ [0, 1]``.

:class:`AveragedMatcher` is the FCM−HCMAN ablation of Table V: all segment
and line/column representations are averaged (no attention) before the same
interaction head, so the two variants differ only in the fine-grained
attention-based reconstruction the paper ablates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Linear, Module, Tensor, concatenate
from .config import FCMConfig


def _scaled_similarity(queries: Tensor, keys: Tensor) -> Tensor:
    """Scaled dot-product similarity matrix ``(num_q, num_k)``."""
    dim = queries.shape[-1]
    return queries.matmul(keys.swapaxes(-1, -2)) * (1.0 / np.sqrt(dim))


class InteractionHead(Module):
    """MLP head over chart/table interaction features.

    The input is ``[v_chart, v_table, v_chart ⊙ v_table, |v_chart − v_table|,
    cos(v_chart, v_table), extra...]``, giving the head both the raw
    representations and explicit match evidence.  ``num_extra_features``
    reserves room for additional scalar evidence (the HCMAN matcher feeds the
    segment-level and line-level cross-modal similarities in here).
    """

    def __init__(
        self,
        config: FCMConfig,
        rng: np.random.Generator,
        num_extra_features: int = 0,
    ) -> None:
        super().__init__()
        self.num_extra_features = num_extra_features
        self.mlp = MLP(
            in_features=4 * config.embed_dim + 1 + num_extra_features,
            hidden_features=[config.embed_dim],
            out_features=1,
            activation="relu",
            rng=rng,
        )

    def forward(
        self,
        chart_vec: Tensor,
        table_vec: Tensor,
        extra: Optional[Tensor] = None,
    ) -> Tensor:
        product = chart_vec * table_vec
        difference = (chart_vec - table_vec).abs()
        chart_norm = ((chart_vec * chart_vec).sum() + 1e-8) ** 0.5
        table_norm = ((table_vec * table_vec).sum() + 1e-8) ** 0.5
        cosine = (chart_vec * table_vec).sum() / (chart_norm * table_norm)
        parts = [chart_vec, table_vec, product, difference, cosine.reshape(1)]
        if self.num_extra_features:
            if extra is None:
                raise ValueError(
                    f"head expects {self.num_extra_features} extra features"
                )
            parts.append(extra.reshape(self.num_extra_features))
        joint = concatenate(parts, axis=0)
        return self.mlp(joint).sigmoid().squeeze()


class SegmentLevelAttention(Module):
    """SL-SAN: reconstruct each line/column from its best-matching segments."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.embed_dim
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)

    def forward(
        self, chart_repr: Tensor, table_repr: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reconstruct line and column representations.

        Parameters
        ----------
        chart_repr:
            ``E_V`` of shape ``(M, N1, K)``.
        table_repr:
            ``E_T`` of shape ``(NC, N2, K)``.

        Returns
        -------
        (lines, columns, evidence):
            ``lines`` of shape ``(M, K)``, ``columns`` of shape ``(NC, K)``
            and ``evidence`` — two scalars summarising the segment-level
            cross-modal similarity in each direction.
        """
        m, n1, dim = chart_repr.shape
        nc, n2, _ = table_repr.shape
        chart_flat = chart_repr.reshape(m * n1, dim)
        table_flat = table_repr.reshape(nc * n2, dim)

        # Cross-modal segment similarities (shared projections both ways).
        sim = _scaled_similarity(self.query_proj(chart_flat), self.key_proj(table_flat))
        sim_chart = sim.reshape(m, n1, nc * n2)
        sim_table = sim.swapaxes(0, 1).reshape(nc, n2, m * n1)

        # A segment's relevance is its best cross-modal match.
        chart_scores = sim_chart.max(axis=-1)  # (M, N1)
        table_scores = sim_table.max(axis=-1)  # (NC, N2)

        chart_weights = chart_scores.softmax(axis=-1).expand_dims(-1)  # (M, N1, 1)
        table_weights = table_scores.softmax(axis=-1).expand_dims(-1)  # (NC, N2, 1)

        chart_values = self.value_proj(chart_repr)
        table_values = self.value_proj(table_repr)
        lines = (chart_values * chart_weights).sum(axis=1)  # (M, K)
        columns = (table_values * table_weights).sum(axis=1)  # (NC, K)
        # Summary of the segment-level match evidence, fed to the head.
        evidence = concatenate(
            [chart_scores.mean().reshape(1), table_scores.mean().reshape(1)], axis=0
        )
        return lines, columns, evidence


class LineColumnAttention(Module):
    """LL-SAN: reconstruct the chart and table from their best lines/columns."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        dim = config.embed_dim
        self.query_proj = Linear(dim, dim, rng=rng)
        self.key_proj = Linear(dim, dim, rng=rng)
        self.value_proj = Linear(dim, dim, rng=rng)

    def forward(
        self, lines: Tensor, columns: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Reduce ``(M, K)`` lines and ``(NC, K)`` columns to two vectors.

        Also returns two scalars summarising the line-to-column similarity in
        each direction (how well each line is covered by some column, and
        vice versa), which the head uses as explicit match evidence.
        """
        sim = _scaled_similarity(self.query_proj(lines), self.key_proj(columns))  # (M, NC)

        line_scores = sim.max(axis=-1)  # (M,)
        column_scores = sim.swapaxes(0, 1).max(axis=-1)  # (NC,)

        line_weights = line_scores.softmax(axis=-1).expand_dims(-1)
        column_weights = column_scores.softmax(axis=-1).expand_dims(-1)

        chart_vec = (self.value_proj(lines) * line_weights).sum(axis=0)  # (K,)
        table_vec = (self.value_proj(columns) * column_weights).sum(axis=0)  # (K,)
        evidence = concatenate(
            [line_scores.mean().reshape(1), column_scores.mean().reshape(1)], axis=0
        )
        return chart_vec, table_vec, evidence


class HCMANMatcher(Module):
    """The full hierarchical cross-modal attention matcher."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.segment_level = SegmentLevelAttention(config, rng)
        self.line_level = LineColumnAttention(config, rng)
        self.head = InteractionHead(config, rng, num_extra_features=4)

    def forward(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        lines, columns, segment_evidence = self.segment_level(chart_repr, table_repr)
        chart_vec, table_vec, line_evidence = self.line_level(lines, columns)
        evidence = concatenate([segment_evidence, line_evidence], axis=0)
        return self.head(chart_vec, table_vec, extra=evidence)


class AveragedMatcher(Module):
    """FCM−HCMAN ablation: mean-pool everything, then the same interaction head."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.head = InteractionHead(config, rng)

    def forward(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        chart_vec = chart_repr.mean(axis=(0, 1))
        table_vec = table_repr.mean(axis=(0, 1))
        return self.head(chart_vec, table_vec)


def build_matcher(config: FCMConfig, rng: np.random.Generator) -> Module:
    """Select the matcher according to ``config.use_hcman``."""
    if config.use_hcman:
        return HCMANMatcher(config, rng)
    return AveragedMatcher(config, rng)
