"""Segment-level line chart encoder (Sec. IV-B).

Each line of the chart is a greyscale image that is divided into ``N1``
segment images of width ``P1``.  Every segment image is flattened and mapped
to a ``K``-dimensional embedding by a trainable linear projection, positional
embeddings are added, and a transformer encoder (Eq. 1) contextualises the
segment sequence.  The output for a chart with ``M`` lines is
``E_V ∈ R^{M×N1×K}``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import FCMConfig


class SegmentLineChartEncoder(Module):
    """ViT-style encoder over line-segment images."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.patch_projection = Linear(
            config.chart_segment_feature_dim, config.embed_dim, rng=rng
        )
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            max_positions=config.max_chart_segments,
            rng=rng,
        )

    def encode_line(self, segment_features: np.ndarray) -> Tensor:
        """Encode one line's ``(N1, F1)`` segment features into ``(N1, K)``."""
        features = np.asarray(segment_features, dtype=self.config.numeric_dtype)
        if features.ndim != 2:
            raise ValueError(
                f"expected (N1, F1) segment features, got shape {features.shape}"
            )
        embedded = self.patch_projection(
            Tensor(features, dtype=self.config.numeric_dtype)
        )
        return self.encoder(embedded)

    def forward(self, chart_segment_features: np.ndarray) -> Tensor:
        """Encode a whole chart.

        Parameters
        ----------
        chart_segment_features:
            Array of shape ``(M, N1, F1)`` from
            :func:`repro.fcm.preprocessing.prepare_chart_input`.

        Returns
        -------
        Tensor
            ``E_V`` of shape ``(M, N1, K)``.
        """
        features = np.asarray(chart_segment_features, dtype=self.config.numeric_dtype)
        if features.ndim != 3:
            raise ValueError(
                f"expected (M, N1, F1) chart features, got shape {features.shape}"
            )
        # All lines are encoded in one batched transformer call: the attention
        # blocks treat the leading axis as a batch dimension, so lines do not
        # attend to each other (matching the per-line encoding of Sec. IV-B)
        # while the Python-level op count stays independent of M.
        embedded = self.patch_projection(
            Tensor(features, dtype=self.config.numeric_dtype)
        )
        return self.encoder(embedded)

    def forward_many(self, charts_segment_features: Sequence[np.ndarray]) -> List[Tensor]:
        """Encode several charts in one stacked transformer call.

        All charts prepared under one :class:`~repro.fcm.config.FCMConfig`
        share the same segment count ``N1`` and feature size ``F1`` (both are
        derived from the chart geometry), so their ``(M_i, N1, F1)`` feature
        blocks concatenate along the line axis into one ``(ΣM_i, N1, F1)``
        batch.  Lines never attend across charts — the transformer treats the
        leading axis as a batch dimension — so the returned per-chart
        ``(M_i, N1, K)`` tensors equal :meth:`forward` on each chart alone,
        while the Python-level op count is independent of the number of
        charts.  Differentiable: the split is a sliced view into the shared
        graph node.

        Example
        -------
        >>> reprs = encoder.forward_many([chart_a.segment_features,
        ...                               chart_b.segment_features])
        >>> [r.shape for r in reprs]      # [(M_a, N1, K), (M_b, N1, K)]
        """
        arrays = [
            np.asarray(features, dtype=self.config.numeric_dtype)
            for features in charts_segment_features
        ]
        if not arrays:
            raise ValueError("forward_many needs at least one chart")
        for features in arrays:
            if features.ndim != 3:
                raise ValueError(
                    f"expected (M, N1, F1) chart features, got shape {features.shape}"
                )
            if features.shape[1:] != arrays[0].shape[1:]:
                raise ValueError(
                    "charts prepared under different configs cannot be "
                    f"batch-encoded: {features.shape[1:]} vs {arrays[0].shape[1:]}"
                )
        encoded = self.forward(np.concatenate(arrays, axis=0))
        outputs: List[Tensor] = []
        offset = 0
        for features in arrays:
            outputs.append(encoded[offset : offset + features.shape[0]])
            offset += features.shape[0]
        return outputs
