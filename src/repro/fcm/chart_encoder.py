"""Segment-level line chart encoder (Sec. IV-B).

Each line of the chart is a greyscale image that is divided into ``N1``
segment images of width ``P1``.  Every segment image is flattened and mapped
to a ``K``-dimensional embedding by a trainable linear projection, positional
embeddings are added, and a transformer encoder (Eq. 1) contextualises the
segment sequence.  The output for a chart with ``M`` lines is
``E_V ∈ R^{M×N1×K}``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import FCMConfig


class SegmentLineChartEncoder(Module):
    """ViT-style encoder over line-segment images."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.patch_projection = Linear(
            config.chart_segment_feature_dim, config.embed_dim, rng=rng
        )
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            max_positions=config.max_chart_segments,
            rng=rng,
        )

    def encode_line(self, segment_features: np.ndarray) -> Tensor:
        """Encode one line's ``(N1, F1)`` segment features into ``(N1, K)``."""
        features = np.asarray(segment_features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(
                f"expected (N1, F1) segment features, got shape {features.shape}"
            )
        embedded = self.patch_projection(Tensor(features))
        return self.encoder(embedded)

    def forward(self, chart_segment_features: np.ndarray) -> Tensor:
        """Encode a whole chart.

        Parameters
        ----------
        chart_segment_features:
            Array of shape ``(M, N1, F1)`` from
            :func:`repro.fcm.preprocessing.prepare_chart_input`.

        Returns
        -------
        Tensor
            ``E_V`` of shape ``(M, N1, K)``.
        """
        features = np.asarray(chart_segment_features, dtype=np.float64)
        if features.ndim != 3:
            raise ValueError(
                f"expected (M, N1, F1) chart features, got shape {features.shape}"
            )
        # All lines are encoded in one batched transformer call: the attention
        # blocks treat the leading axis as a batch dimension, so lines do not
        # attend to each other (matching the per-line encoding of Sec. IV-B)
        # while the Python-level op count stays independent of M.
        embedded = self.patch_projection(Tensor(features))
        return self.encoder(embedded)
