"""FCM training: example construction, ground-truth relevance, training loop.

Training follows Sec. V-E of the paper:

* training triplets ``(V_i, D_i, T_i)`` come from the training split of the
  corpus — the chart ``V_i`` is rendered from the table ``T_i`` using its
  visualization spec, optionally through a sampled aggregation operator;
* negatives are drawn from the mini-batch with a configurable strategy
  (semi-hard by default) using the ground-truth relevance ``Rel(D, T)``,
  which is available during training because the underlying data is known;
* the objective is the class-balanced binary cross-entropy of Eq. 2,
  optimised with Adam.

Since the batched-training engine landed, each minibatch's loss is computed
in a **single stacked forward/backward**: all charts are encoded in one
chart-encoder call, every distinct table in one padded dataset-encoder call,
and the (positive + negatives) pairs are zero-padded and scored by one
:meth:`FCMModel.match_pairs` forward.  The per-pair loop survives as
:meth:`FCMTrainer._batch_loss_reference` (``TrainerConfig(batched=False)``)
and is the ground truth the equivalence tests compare against.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..charts.spec import ChartSpec
from ..data.aggregation import AggregationSpec, sample_aggregation_spec
from ..data.corpus import CorpusRecord
from ..data.table import Table, UnderlyingData
from ..nn import Adam, GradientClipper, balanced_binary_cross_entropy, pad_stack, stack
from ..obs import get_logger
from ..relevance import RelevanceComputer, relevance_cache
from ..relevance.cache import data_fingerprint, table_fingerprint
from ..vision.extractor import VisualElementExtractor
from .config import FCMConfig
from .model import FCMModel
from .preprocessing import (
    ChartInput,
    TableInput,
    prepare_chart_input,
    prepare_table_input,
    resample_series,
)
from .sampling import NEGATIVE_STRATEGIES, batch_indices, select_negatives_batch

_log = get_logger("repro.fcm.training")


# --------------------------------------------------------------------------- #
# Training examples
# --------------------------------------------------------------------------- #
@dataclass
class TrainingExample:
    """One training triplet ``(V, D, T)`` in model-ready form."""

    chart_input: ChartInput
    underlying: UnderlyingData
    table_id: str
    num_lines: int
    aggregation: Optional[AggregationSpec] = None
    chart: Optional[LineChart] = None

    @property
    def is_aggregated(self) -> bool:
        return self.aggregation is not None and not self.aggregation.is_identity


@dataclass
class TrainingData:
    """Everything the trainer needs: examples plus the candidate tables."""

    examples: List[TrainingExample]
    tables: Dict[str, Table]
    table_inputs: Dict[str, TableInput]

    @property
    def table_ids(self) -> List[str]:
        return list(self.tables.keys())


def build_training_data(
    records: Sequence[CorpusRecord],
    config: FCMConfig,
    extractor: Optional[VisualElementExtractor] = None,
    aggregated_fraction: float = 0.5,
    seed: int = 0,
    keep_charts: bool = False,
) -> TrainingData:
    """Render charts for the training records and preprocess everything.

    Parameters
    ----------
    aggregated_fraction:
        Probability that a record's chart is rendered through a sampled
        aggregation operator (the paper trains on a mixture of DA and non-DA
        charts).
    keep_charts:
        Keep the rendered :class:`LineChart` objects on the examples (useful
        for diagnostics; costs memory).
    """
    extractor = extractor or VisualElementExtractor()
    rng = np.random.default_rng(seed)
    examples: List[TrainingExample] = []
    tables: Dict[str, Table] = {}
    table_inputs: Dict[str, TableInput] = {}

    for record in records:
        if record.spec.chart_type != "line":
            continue
        table = record.table
        tables[table.table_id] = table
        table_inputs[table.table_id] = prepare_table_input(table, config)

        aggregation: Optional[AggregationSpec] = None
        if rng.random() < aggregated_fraction:
            aggregation = sample_aggregation_spec(table.num_rows, rng)
        chart = render_chart_for_table(
            table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            aggregation=aggregation,
            spec=config.chart_spec,
        )
        elements = extractor.extract(chart)
        if elements.num_lines == 0:
            continue
        chart_input = prepare_chart_input(chart, elements, config)
        examples.append(
            TrainingExample(
                chart_input=chart_input,
                underlying=chart.underlying,
                table_id=table.table_id,
                num_lines=chart.num_lines,
                aggregation=aggregation,
                chart=chart if keep_charts else None,
            )
        )
    if not examples:
        raise ValueError("no line-chart training examples could be constructed")
    return TrainingData(examples=examples, tables=tables, table_inputs=table_inputs)


# --------------------------------------------------------------------------- #
# Ground-truth relevance (downsampled for training-time tractability)
# --------------------------------------------------------------------------- #
def ground_truth_relevance(
    data: UnderlyingData,
    table: Table,
    max_points: int = 48,
    computer: Optional[RelevanceComputer] = None,
) -> float:
    """``Rel(D, T)`` computed on series resampled to at most ``max_points``.

    Resampling keeps the DTW-based ground truth tractable during training and
    benchmark construction; the DTW is still exact on the resampled series.

    Scores are memoised per ``(data, table, max_points, computer)`` content
    fingerprint in the process-wide :func:`repro.relevance.relevance_cache`,
    so recomputing the same pair across negative-sampling strategies or
    epochs (the dominant fixture cost of the Figure 5 experiment) is a hash
    lookup.  Disable with ``REPRO_RELEVANCE_CACHE=0`` or
    :func:`repro.relevance.set_relevance_cache_enabled`.
    """
    computer = computer or RelevanceComputer(aggregate="mean")
    cache = relevance_cache()
    key = None
    if cache.enabled:
        key = cache.key(data, table, max_points, computer.signature)
        hit = cache.get(key)
        if hit is not None:
            return hit
    from ..data.column import Column
    from ..data.table import DataSeries

    series = []
    for s in data:
        y = resample_series(s.y, min(max_points, len(s.y)))
        series.append(DataSeries(x=np.arange(len(y), dtype=np.float64), y=y, name=s.name))
    columns = [
        Column(c.name, resample_series(c.values, min(max_points, len(c))), role=c.role)
        for c in table.columns
    ]
    small_data = UnderlyingData(series=series)
    small_table = Table(table.table_id, columns)
    score = computer.score(small_data, small_table)
    if key is not None:
        cache.put(key, score)
    return score


#: Per-process state for the parallel cold relevance pass: set once by the
#: pool initializer so the (potentially large) series/tables cross the
#: process boundary a single time rather than once per task.
_RELEVANCE_WORKER_STATE: Optional[Tuple[List[UnderlyingData], List[Table], int]] = None


def _init_relevance_worker(
    underlyings: List[UnderlyingData], tables: List[Table], max_points: int
) -> None:
    global _RELEVANCE_WORKER_STATE
    _RELEVANCE_WORKER_STATE = (underlyings, tables, max_points)


def _relevance_rows(row_indices: List[int]) -> Tuple[List[int], np.ndarray]:
    """Compute the relevance-matrix rows for ``row_indices`` in a worker."""
    if _RELEVANCE_WORKER_STATE is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("relevance worker used before initialisation")
    underlyings, tables, max_points = _RELEVANCE_WORKER_STATE
    computer = RelevanceComputer(aggregate="mean")
    rows = np.zeros((len(row_indices), len(tables)))
    for r, i in enumerate(row_indices):
        for j, table in enumerate(tables):
            rows[r, j] = ground_truth_relevance(
                underlyings[i], table, max_points=max_points, computer=computer
            )
    return row_indices, rows


def relevance_matrix(
    examples: Sequence[TrainingExample],
    tables: Dict[str, Table],
    max_points: int = 48,
    num_workers: int = 1,
    timeout: Optional[float] = None,
) -> Tuple[np.ndarray, List[str]]:
    """Ground-truth relevance of every example against every table.

    Returns the matrix (``num_examples x num_tables``) and the table-id order
    of its columns.

    The **cold** pass is the dominant fixture cost of training — O(examples
    x tables) DTW sweeps.  With ``num_workers > 1`` the example rows are
    fanned across a process pool (same pattern as
    :mod:`repro.serving.sharding`: pool-lifetime initializer, graceful
    in-process fallback on any pool failure, optional ``timeout``); each
    entry is a deterministic function of the data contents, so the parallel
    matrix is identical to the serial one.  Worker results are written back
    into the process-wide relevance memo, and a fully-warm call is served
    from the memo *without spawning a pool at all* — so recomputation across
    negative-sampling strategies stays a pure cache hit exactly as in the
    serial path.
    """
    table_ids = list(tables.keys())
    computer = RelevanceComputer(aggregate="mean")
    if num_workers > 1 and len(examples) > 1 and table_ids:
        cache = relevance_cache()
        keys = None
        if cache.enabled:
            # A warm pass must stay a pure cache hit (no pool spawn, no
            # pickling the corpus into workers): probe the memo first and
            # only fan out when something is actually missing.  Fingerprints
            # are hashed once per example/table (O(E+T)), not per pair.
            data_fps = [data_fingerprint(example.underlying) for example in examples]
            table_fps = [table_fingerprint(tables[tid]) for tid in table_ids]
            keys = [
                [
                    cache.key_from_fingerprints(
                        data_fp, table_fp, max_points, computer.signature
                    )
                    for table_fp in table_fps
                ]
                for data_fp in data_fps
            ]
            cached = [[cache.get(key) for key in row] for row in keys]
            if all(value is not None for row in cached for value in row):
                return np.asarray(cached, dtype=np.float64), table_ids
        matrix = _relevance_matrix_sharded(
            examples, [tables[tid] for tid in table_ids], max_points,
            num_workers=num_workers, timeout=timeout,
        )
        if matrix is not None:
            if keys is not None:
                for i, row in enumerate(keys):
                    for j, key in enumerate(row):
                        cache.put(key, float(matrix[i, j]))
            return matrix, table_ids
    matrix = np.zeros((len(examples), len(table_ids)))
    for i, example in enumerate(examples):
        for j, table_id in enumerate(table_ids):
            matrix[i, j] = ground_truth_relevance(
                example.underlying, tables[table_id], max_points=max_points, computer=computer
            )
    return matrix, table_ids


def _relevance_matrix_sharded(
    examples: Sequence[TrainingExample],
    tables: List[Table],
    max_points: int,
    num_workers: int,
    timeout: Optional[float] = None,
) -> Optional[np.ndarray]:
    """Row-sharded relevance matrix; ``None`` signals in-process fallback."""
    num_workers = max(1, min(int(num_workers), len(examples)))
    if num_workers <= 1:
        return None
    row_shards = [
        [int(i) for i in shard]
        for shard in np.array_split(np.arange(len(examples)), num_workers)
        if len(shard)
    ]
    underlyings = [example.underlying for example in examples]
    start = time.perf_counter()
    pool: Optional[ProcessPoolExecutor] = None
    try:
        context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(
            max_workers=len(row_shards),
            mp_context=context,
            initializer=_init_relevance_worker,
            initargs=(underlyings, tables, max_points),
        )
        futures = [pool.submit(_relevance_rows, shard) for shard in row_shards]
        deadline = None if timeout is None else start + timeout
        matrix = np.zeros((len(examples), len(tables)))
        for future in futures:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            row_indices, rows = future.result(timeout=remaining)
            matrix[row_indices] = rows
        pool.shutdown(wait=True)
        return matrix
    except Exception as exc:  # degrade to the serial pass, never fail training
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        warnings.warn(
            "parallel relevance pass fell back to the serial in-process sweep: "
            f"{type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# --------------------------------------------------------------------------- #
# Trainer
# --------------------------------------------------------------------------- #
@dataclass
class TrainerConfig:
    """Optimisation hyper-parameters (Sec. VII-B, scaled)."""

    epochs: int = 10
    batch_size: int = 8
    learning_rate: float = 1e-3
    num_negatives: int = 3
    strategy: str = "semi-hard"
    grad_clip: Optional[float] = 5.0
    seed: int = 0
    relevance_max_points: int = 48
    #: Worker processes for the cold ground-truth relevance pass (the first
    #: O(examples x tables) DTW sweep); ``<= 1`` computes it in-process.
    #: Results are identical either way — see :func:`relevance_matrix`.
    relevance_workers: int = 1
    #: Compute each minibatch's contrastive loss through one stacked
    #: forward/backward (:meth:`FCMTrainer._batch_loss`) instead of the
    #: per-pair loop (:meth:`FCMTrainer._batch_loss_reference`).  Both paths
    #: draw identical negatives and agree on loss and parameter gradients to
    #: floating-point accuracy (pinned by ``tests/test_batched_training.py``);
    #: with ``dropout > 0`` they sample different dropout masks and are only
    #: statistically equivalent.
    batched: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in NEGATIVE_STRATEGIES:
            raise ValueError(
                f"unknown negative-sampling strategy {self.strategy!r}; "
                f"expected one of {NEGATIVE_STRATEGIES}"
            )
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.num_negatives < 1:
            raise ValueError("num_negatives (N-) must be >= 1")


@dataclass
class EpochStats:
    """Per-epoch training statistics."""

    epoch: int
    loss: float
    seconds: float
    eval_metric: Optional[float] = None


@dataclass
class TrainingHistory:
    """The full training trace of one model."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]

    @property
    def eval_metrics(self) -> List[Optional[float]]:
        return [e.eval_metric for e in self.epochs]

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].loss


class FCMTrainer:
    """Trains an :class:`FCMModel` on prepared :class:`TrainingData`."""

    def __init__(
        self,
        model: FCMModel,
        trainer_config: Optional[TrainerConfig] = None,
    ) -> None:
        self.model = model
        self.config = trainer_config or TrainerConfig()
        self._clipper = (
            GradientClipper(self.config.grad_clip) if self.config.grad_clip else None
        )

    def train(
        self,
        data: TrainingData,
        relevance: Optional[np.ndarray] = None,
        table_order: Optional[List[str]] = None,
        eval_fn: Optional[Callable[[FCMModel], float]] = None,
    ) -> TrainingHistory:
        """Run the training loop.

        Parameters
        ----------
        data:
            Output of :func:`build_training_data`.
        relevance, table_order:
            Optional precomputed ground-truth relevance matrix (and its
            column order).  Computed on demand otherwise — precomputing and
            reusing it across strategies is how the Figure 5 experiment keeps
            its cost linear in the number of strategies.
        eval_fn:
            Optional callback evaluated after every epoch (e.g. validation
            prec@k); its value is recorded in the history.
        """
        if relevance is None or table_order is None:
            relevance, table_order = relevance_matrix(
                data.examples,
                data.tables,
                max_points=self.config.relevance_max_points,
                num_workers=self.config.relevance_workers,
            )
        table_index = {table_id: j for j, table_id in enumerate(table_order)}

        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        rng = np.random.default_rng(self.config.seed)
        history = TrainingHistory()

        self.model.train()
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            epoch_losses: List[float] = []
            for batch in batch_indices(len(data.examples), self.config.batch_size, rng):
                batch_table_ids = sorted({data.examples[i].table_id for i in batch})
                loss_fn = (
                    self._batch_loss if self.config.batched else self._batch_loss_reference
                )
                loss = loss_fn(
                    [int(i) for i in batch], batch_table_ids, data, relevance, table_index, rng
                )
                if loss is None:
                    continue
                optimizer.zero_grad()
                loss.backward()
                if self._clipper is not None:
                    self._clipper.clip(self.model.parameters())
                optimizer.step()
                epoch_losses.append(loss.item())
            elapsed = time.perf_counter() - start
            metric = None
            if eval_fn is not None:
                self.model.eval()
                metric = float(eval_fn(self.model))
                self.model.train()
            stats = EpochStats(
                epoch=epoch,
                loss=float(np.mean(epoch_losses)) if epoch_losses else float("nan"),
                seconds=elapsed,
                eval_metric=metric,
            )
            history.epochs.append(stats)
            _log.info(
                "epoch_finished",
                epoch=stats.epoch,
                total_epochs=self.config.epochs,
                loss=stats.loss,
                seconds=stats.seconds,
                eval_metric=stats.eval_metric,
                batches=len(epoch_losses),
            )
        self.model.eval()
        return history

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _select_batch_negatives(
        self,
        batch_example_indices: Sequence[int],
        batch_table_ids: List[str],
        data: TrainingData,
        relevance: np.ndarray,
        table_index: Dict[str, int],
        rng: np.random.Generator,
    ) -> List[List[int]]:
        """Negative positions (into ``batch_table_ids``) for every example.

        Shared by both loss paths so they draw *identical* negatives from the
        same generator state.
        """
        rows = [
            relevance[example_index, [table_index[t] for t in batch_table_ids]]
            for example_index in batch_example_indices
        ]
        positives = [
            batch_table_ids.index(data.examples[example_index].table_id)
            for example_index in batch_example_indices
        ]
        return select_negatives_batch(
            rows,
            positives,
            self.config.num_negatives,
            strategy=self.config.strategy,
            rng=rng,
        )

    def _batch_loss(
        self,
        batch_example_indices: Sequence[int],
        batch_table_ids: List[str],
        data: TrainingData,
        relevance: np.ndarray,
        table_index: Dict[str, int],
        rng: np.random.Generator,
    ):
        """Contrastive loss of one minibatch in a single stacked forward.

        The batched training path (the per-pair loop it replaces survives as
        :meth:`_batch_loss_reference`):

        1. every chart in the batch is encoded through *one* stacked
           chart-encoder call, every **distinct** table through *one* padded
           dataset-encoder call — the reference path re-encodes the same
           table for every pair that touches it;
        2. each example's chart representation is paired with its positive
           and each sampled negative; the ragged pair list is zero-padded and
           stacked (:func:`repro.nn.pad_stack`, differentiable) into
           ``(P, M, N1, K)`` / ``(P, NC, N2, K)`` batches;
        3. one :meth:`FCMModel.match_pairs` forward scores all ``P`` pairs,
           and the class-balanced BCE of Eq. 2 over those scores is the
           single tensor the caller backpropagates through.

        Loss and parameter gradients match the reference within
        floating-point accuracy (``tests/test_batched_training.py`` pins
        1e-6); only with ``dropout > 0`` do the paths diverge, because each
        forward samples its own dropout masks.
        """
        negatives = self._select_batch_negatives(
            batch_example_indices, batch_table_ids, data, relevance, table_index, rng
        )
        pair_slots: List[int] = []  # index into the batch's chart list, per pair
        pair_table_ids: List[str] = []
        labels: List[float] = []
        for slot, example_index in enumerate(batch_example_indices):
            example = data.examples[example_index]
            pair_slots.append(slot)
            pair_table_ids.append(example.table_id)
            labels.append(1.0)
            for pos in negatives[slot]:
                pair_slots.append(slot)
                pair_table_ids.append(batch_table_ids[pos])
                labels.append(0.0)
        if not pair_table_ids:
            return None

        chart_reprs = self.model.encode_chart_batch(
            [data.examples[i].chart_input for i in batch_example_indices]
        )
        distinct_ids = list(dict.fromkeys(pair_table_ids))
        table_reprs = dict(
            zip(
                distinct_ids,
                self.model.encode_table_batch(
                    [data.table_inputs[table_id] for table_id in distinct_ids]
                ),
            )
        )

        chart_batch, chart_mask = pad_stack([chart_reprs[slot] for slot in pair_slots])
        table_batch, table_mask = pad_stack(
            [table_reprs[table_id] for table_id in pair_table_ids]
        )
        predictions = self.model.match_pairs(
            chart_batch, table_batch, chart_mask[..., 0], table_mask[..., 0]
        )
        return balanced_binary_cross_entropy(
            predictions.reshape(-1), np.asarray(labels)
        )

    def _batch_loss_reference(
        self,
        batch_example_indices: Sequence[int],
        batch_table_ids: List[str],
        data: TrainingData,
        relevance: np.ndarray,
        table_index: Dict[str, int],
        rng: np.random.Generator,
    ):
        """Per-pair reference path: one matcher forward per (chart, table).

        Kept as the ground truth the batched-vs-reference equivalence tests
        compare against, and selectable via ``TrainerConfig(batched=False)``.
        """
        negatives = self._select_batch_negatives(
            batch_example_indices, batch_table_ids, data, relevance, table_index, rng
        )
        predictions = []
        labels: List[float] = []
        for slot, example_index in enumerate(batch_example_indices):
            example = data.examples[example_index]
            chart_repr = self.model.encode_chart(example.chart_input)

            positive_input = data.table_inputs[example.table_id]
            predictions.append(self.model.match(chart_repr, self.model.encode_table(positive_input)))
            labels.append(1.0)

            for pos in negatives[slot]:
                negative_input = data.table_inputs[batch_table_ids[pos]]
                predictions.append(
                    self.model.match(chart_repr, self.model.encode_table(negative_input))
                )
                labels.append(0.0)
        if not predictions:
            return None
        stacked = stack([p.reshape(1) for p in predictions], axis=0).reshape(-1)
        return balanced_binary_cross_entropy(stacked, np.asarray(labels))


def train_fcm(
    records: Sequence[CorpusRecord],
    config: Optional[FCMConfig] = None,
    trainer_config: Optional[TrainerConfig] = None,
    extractor: Optional[VisualElementExtractor] = None,
    aggregated_fraction: float = 0.5,
    eval_fn: Optional[Callable[[FCMModel], float]] = None,
) -> Tuple[FCMModel, TrainingHistory, TrainingData]:
    """End-to-end convenience: build data, create the model, train it."""
    config = config or FCMConfig()
    model = FCMModel(config)
    data = build_training_data(
        records,
        config,
        extractor=extractor,
        aggregated_fraction=aggregated_fraction,
        seed=(trainer_config.seed if trainer_config else 0),
    )
    trainer = FCMTrainer(model, trainer_config)
    history = trainer.train(data, eval_fn=eval_fn)
    return model, history, data
