"""The FCM model: encoders + matcher producing ``Rel'(V, T)``.

The model composes the segment-level line chart encoder (Sec. IV-B), the
segment-level dataset encoder (Sec. IV-C, optionally with the DA layers of
Sec. V) and the cross-modal matcher (Sec. IV-D).  Its two ablations are
selected through :class:`~repro.fcm.config.FCMConfig`:

* ``use_hcman=False`` — FCM−HCMAN (Table V);
* ``enable_da_layers=False`` — FCM−DA (Table VI).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module, Tensor
from .chart_encoder import SegmentLineChartEncoder
from .config import FCMConfig
from .dataset_encoder import SegmentDatasetEncoder
from .matcher import build_matcher
from .preprocessing import ChartInput, TableInput


class FCMModel(Module):
    """Fine-grained Cross-modal Relevance Learning Model."""

    def __init__(self, config: Optional[FCMConfig] = None) -> None:
        super().__init__()
        self.config = config or FCMConfig()
        rng = np.random.default_rng(self.config.seed)
        self.chart_encoder = SegmentLineChartEncoder(self.config, rng)
        self.dataset_encoder = SegmentDatasetEncoder(self.config, rng)
        self.matcher = build_matcher(self.config, rng)

    # ------------------------------------------------------------------ #
    # Differentiable building blocks
    # ------------------------------------------------------------------ #
    def encode_chart(self, chart_input: ChartInput) -> Tensor:
        """``E_V`` of shape ``(M, N1, K)``."""
        return self.chart_encoder(chart_input.segment_features)

    def encode_table(self, table_input: TableInput) -> Tensor:
        """``E_T`` of shape ``(NC, N2, K)``."""
        if table_input.is_empty:
            raise ValueError(
                f"table {table_input.table_id!r} has no columns to encode"
            )
        return self.dataset_encoder(table_input.segments)

    def match(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        """``Rel'(V, T)`` as a scalar tensor in ``[0, 1]``."""
        return self.matcher(chart_repr, table_repr)

    def match_batch(
        self,
        chart_repr: Tensor,
        table_batch: Tensor,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
    ) -> Tensor:
        """``Rel'(V, T_b)`` for ``B`` stacked candidates, shape ``(B,)``.

        ``table_batch`` holds zero-padded table representations of shape
        ``(B, NC, N2, K)``; ``segment_mask``/``column_mask`` mark the real
        ``(B, NC, N2)`` segments and ``(B, NC)`` columns.  One stacked matcher
        forward replaces ``B`` per-pair :meth:`match` calls and returns the
        same scores (padding never wins a max and gets zero softmax weight).
        """
        return self.matcher.forward_batch(
            chart_repr, table_batch, segment_mask, column_mask
        )

    def forward(self, chart_input: ChartInput, table_input: TableInput) -> Tensor:
        return self.match(self.encode_chart(chart_input), self.encode_table(table_input))

    # ------------------------------------------------------------------ #
    # Inference helpers (no gradient bookkeeping needed by callers)
    # ------------------------------------------------------------------ #
    def relevance(self, chart_input: ChartInput, table_input: TableInput) -> float:
        """Scalar relevance score for one (chart, table) pair (no gradients)."""
        with self.inference():
            return float(self.forward(chart_input, table_input).item())

    def column_embeddings(self, table_input: TableInput) -> np.ndarray:
        """Column-level embeddings for the LSH index, shape ``(NC, K)``."""
        with self.inference():
            return self.dataset_encoder.column_embeddings(table_input.segments)

    def line_embeddings(self, chart_input: ChartInput) -> np.ndarray:
        """Line-level embeddings (mean over segments), shape ``(M, K)``."""
        with self.inference():
            return self.encode_chart(chart_input).numpy().mean(axis=1)
