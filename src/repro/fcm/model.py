"""The FCM model: encoders + matcher producing ``Rel'(V, T)``.

The model composes the segment-level line chart encoder (Sec. IV-B), the
segment-level dataset encoder (Sec. IV-C, optionally with the DA layers of
Sec. V) and the cross-modal matcher (Sec. IV-D).  Its two ablations are
selected through :class:`~repro.fcm.config.FCMConfig`:

* ``use_hcman=False`` — FCM−HCMAN (Table V);
* ``enable_da_layers=False`` — FCM−DA (Table VI).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Module, Tensor, using_dtype
from .chart_encoder import SegmentLineChartEncoder
from .config import FCMConfig
from .dataset_encoder import SegmentDatasetEncoder
from .matcher import build_matcher
from .preprocessing import ChartInput, TableInput


class FCMModel(Module):
    """Fine-grained Cross-modal Relevance Learning Model.

    Precision: the model's dtype is pinned at construction — an explicit
    ``config.dtype`` wins, otherwise the process-wide policy
    (:mod:`repro.nn.dtype`) is adopted and written back onto the config.
    Parameters are initialised under that dtype (same random value stream as
    float64, rounded), encoder inputs are cast to it, and downstream
    consumers (scorer caches, LSH, snapshots, sharded-build workers) read it
    from ``config`` so a model and its index structures can never disagree.
    """

    def __init__(self, config: Optional[FCMConfig] = None) -> None:
        super().__init__()
        config = config or FCMConfig()
        if config.dtype is None:
            config = config.with_overrides(dtype=str(config.numeric_dtype))
        self.config = config
        rng = np.random.default_rng(self.config.seed)
        with using_dtype(self.config.numeric_dtype):
            self.chart_encoder = SegmentLineChartEncoder(self.config, rng)
            self.dataset_encoder = SegmentDatasetEncoder(self.config, rng)
            self.matcher = build_matcher(self.config, rng)

    # ------------------------------------------------------------------ #
    # Differentiable building blocks
    # ------------------------------------------------------------------ #
    def encode_chart(self, chart_input: ChartInput) -> Tensor:
        """``E_V`` of shape ``(M, N1, K)``."""
        return self.chart_encoder(chart_input.segment_features)

    def encode_table(self, table_input: TableInput) -> Tensor:
        """``E_T`` of shape ``(NC, N2, K)``."""
        if table_input.is_empty:
            raise ValueError(
                f"table {table_input.table_id!r} has no columns to encode"
            )
        return self.dataset_encoder(table_input.segments)

    def match(self, chart_repr: Tensor, table_repr: Tensor) -> Tensor:
        """``Rel'(V, T)`` as a scalar tensor in ``[0, 1]``."""
        return self.matcher(chart_repr, table_repr)

    def match_batch(
        self,
        chart_repr: Tensor,
        table_batch: Tensor,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
    ) -> Tensor:
        """``Rel'(V, T_b)`` for ``B`` stacked candidates, shape ``(B,)``.

        ``table_batch`` holds zero-padded table representations of shape
        ``(B, NC, N2, K)``; ``segment_mask``/``column_mask`` mark the real
        ``(B, NC, N2)`` segments and ``(B, NC)`` columns.  One stacked matcher
        forward replaces ``B`` per-pair :meth:`match` calls and returns the
        same scores (padding never wins a max and gets zero softmax weight).
        """
        return self.matcher.forward_batch(
            chart_repr, table_batch, segment_mask, column_mask
        )

    def encode_chart_batch(self, chart_inputs: Sequence[ChartInput]) -> List[Tensor]:
        """``E_V`` for several charts via one stacked chart-encoder call.

        Returns one ``(M_i, N1, K)`` tensor per input, each equal to
        :meth:`encode_chart` on that chart alone (all charts prepared under
        one config share ``N1``/``F1``, so their lines concatenate into a
        single transformer batch).  Differentiable — the batched trainer
        encodes every chart of a minibatch through here.
        """
        return self.chart_encoder.forward_many(
            [chart_input.segment_features for chart_input in chart_inputs]
        )

    def encode_table_batch(self, table_inputs: Sequence[TableInput]) -> List[Tensor]:
        """``E_T`` for several tables via one padded dataset-encoder call.

        Columns of all tables are flattened into one batch, zero-padded along
        the segment axis to a common ``N2`` and encoded in a single
        transformer call with a key-padding attention mask; the result is
        split back into per-table ``(NC_i, N2_i, K)`` tensors matching
        :meth:`encode_table` on each table alone to floating-point accuracy.
        Used with gradients by the batched trainer and under
        :meth:`~repro.nn.Module.inference` by
        :meth:`FCMScorer.index_repository <repro.fcm.scorer.FCMScorer.index_repository>`.
        """
        for table_input in table_inputs:
            if table_input.is_empty:
                raise ValueError(
                    f"table {table_input.table_id!r} has no columns to encode"
                )
        return self.dataset_encoder.forward_many(
            [table_input.segments for table_input in table_inputs]
        )

    def match_pairs(
        self,
        chart_batch: Tensor,
        table_batch: Tensor,
        chart_mask: np.ndarray,
        segment_mask: np.ndarray,
    ) -> Tensor:
        """``Rel'(V_p, T_p)`` for ``P`` independent padded pairs, shape ``(P,)``.

        The training-path counterpart of :meth:`match_batch`: instead of one
        chart shared by every candidate, each pair carries its own padded
        chart ``(P, M, N1, K)`` (masked by ``chart_mask`` ``(P, M, N1)``)
        against its own padded table ``(P, NC, N2, K)`` (masked by
        ``segment_mask`` ``(P, NC, N2)``).  One stacked, fully differentiable
        matcher forward replaces ``P`` per-pair :meth:`match` calls and
        returns the same scores.

        Example
        -------
        >>> chart_batch, cmask = pad_stack([chart_repr, chart_repr])
        >>> table_batch, tmask = pad_stack([positive_repr, negative_repr])
        >>> scores = model.match_pairs(chart_batch, table_batch,
        ...                            cmask[..., 0], tmask[..., 0])  # (2,)
        """
        return self.matcher.forward_pairs(
            chart_batch, table_batch, chart_mask, segment_mask
        )

    def forward(self, chart_input: ChartInput, table_input: TableInput) -> Tensor:
        return self.match(self.encode_chart(chart_input), self.encode_table(table_input))

    # ------------------------------------------------------------------ #
    # Inference helpers (no gradient bookkeeping needed by callers)
    # ------------------------------------------------------------------ #
    def relevance(self, chart_input: ChartInput, table_input: TableInput) -> float:
        """Scalar relevance score for one (chart, table) pair (no gradients)."""
        with self.inference():
            return float(self.forward(chart_input, table_input).item())

    def column_embeddings(self, table_input: TableInput) -> np.ndarray:
        """Column-level embeddings for the LSH index, shape ``(NC, K)``."""
        with self.inference():
            return self.dataset_encoder.column_embeddings(table_input.segments)

    def line_embeddings(self, chart_input: ChartInput) -> np.ndarray:
        """Line-level embeddings (mean over segments), shape ``(M, K)``."""
        with self.inference():
            return self.encode_chart(chart_input).numpy().mean(axis=1)
