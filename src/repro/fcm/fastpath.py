"""Inference-only fused kernels and the int8 quantized pre-filter.

Two independent speed layers for query-time scoring, both strictly
value-preserving with respect to the existing batched matcher path:

* **Fused kernels** (:class:`FusedMatchKernel`) — the hot chain of
  :meth:`SegmentLevelAttention.forward_batch` →
  :meth:`LineColumnAttention.forward_batch` →
  :meth:`InteractionHead.forward_batch` re-expressed as plain
  ``np.matmul(..., out=)`` calls over a per-scorer scratch-buffer pool
  (:class:`ScratchPool`).  No :class:`~repro.nn.Tensor` objects, no autograd
  graph, and the large per-op temporaries (key projections, similarity
  matrices, value projections, weighted products) are written into
  preallocated arenas instead of fresh allocations.  Every operation
  reproduces the exact NumPy expression the Tensor op would have run —
  including the float64 accumulation in ``sum``/``softmax`` denominators and
  the scalar-lifting dtype rules — so fused scores are bit-identical to the
  graphed batched path in float64 and agree to normal rounding noise in
  float32.

* **Quantized pre-filter** (:func:`quantize_table`,
  :func:`build_quantized_pack`, :func:`quantized_scores`) — an int8
  symmetric-quantized copy of the cached table encodings with one scale
  factor per table (``x ≈ codes · scale``, ``scale = max|x| / 127``).  At
  pack-build time each table is dequantized, groups of
  :data:`PREFILTER_POOL` consecutive segment rows are mean-pooled, and the
  pooled vectors are re-quantized into one padded int8 batch.  The
  pre-filter then scores every candidate with the **real matcher** (the
  fused kernel, or the graphed path for unsupported matchers) on that
  ``pool``-times-smaller input and keeps only the ``top-(k · overscan)``
  candidates for exact float re-scoring.  Because the coarse score passes
  through the same attention and MLP nonlinearities as the exact one, its
  ranking tracks the exact ranking closely — a raw dot-product proxy does
  not (the matcher's output is not monotone in representation similarity).
  The coarse score never replaces the exact one: the final ranking is
  always produced by the full matcher on the kept set, so parity is a
  recall property (pinned by tests on the trained fixture) rather than a
  numerical one.

The module deliberately has no dependency on the scorer or serving layers;
it consumes raw ``np.ndarray`` encodings plus live parameter references from
the matcher modules (weights are read at call time, so training steps or
``load_state_dict`` are picked up without invalidation).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .matcher import AveragedMatcher, HCMANMatcher

__all__ = [
    "ScratchPool",
    "FusedMatchKernel",
    "QuantizedTable",
    "QuantizedPack",
    "PREFILTER_DTYPE",
    "PREFILTER_POOL",
    "quantize_table",
    "pooled_vectors",
    "build_quantized_pack",
    "quantized_scores",
    "CoarseCache",
    "build_coarse_cache",
    "coarse_scores",
]


class ScratchPool:
    """Per-scorer pool of reusable scratch arenas.

    One flat arena per ``(tag, dtype)``; :meth:`take` returns a contiguous
    view of the requested shape, growing the arena when the batch shape
    outgrows it.  Chunked scoring over a stable repository therefore
    allocates only on the first pass (and whenever a new largest shape
    appears); every later chunk is served from the arena.  ``hits`` /
    ``misses`` feed the observability counters.
    """

    __slots__ = ("_arenas", "hits", "misses")

    def __init__(self) -> None:
        self._arenas: Dict[Tuple[str, np.dtype], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A writable scratch array of ``shape``/``dtype`` (contents arbitrary)."""
        dtype = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arena = self._arenas.get((tag, dtype))
        if arena is None or arena.size < size:
            arena = np.empty(max(size, 1), dtype=dtype)
            self._arenas[(tag, dtype)] = arena
            self.misses += 1
        else:
            self.hits += 1
        return arena[:size].reshape(shape)

    def nbytes(self) -> int:
        return sum(arena.nbytes for arena in self._arenas.values())

    def clear(self) -> None:
        self._arenas.clear()


def _linear(
    pool: ScratchPool, tag: str, x: np.ndarray, weight, bias, exact: bool = True
) -> np.ndarray:
    """``x @ W + b`` into a pooled buffer — the exact :class:`Linear` forward.

    When ``x`` is narrower than the stored weights (the pre-filter's float32
    coarse pass under a float64 session) the tiny weight/bias matrices are
    cast down so the GEMM runs at the input precision instead of silently
    promoting to a float64 contraction.

    ``exact=True`` calls ``np.matmul`` on the operand shapes the Tensor op
    would see (bitwise parity with the graphed path).  ``exact=False``
    flattens the batch axes into one 2-D GEMM first: the coarse pass feeds
    this helper ``(B, few, K)`` stacks whose stacked matmul dispatches B
    tiny per-slice GEMMs.
    """
    w = weight.data
    if w.dtype != x.dtype:
        w = w.astype(x.dtype)
    out = pool.take(tag, x.shape[:-1] + (w.shape[1],), x.dtype)
    if exact or x.ndim <= 2:
        np.matmul(x, w, out=out)
    else:
        np.matmul(
            x.reshape(-1, x.shape[-1]), w, out=out.reshape(-1, w.shape[1])
        )
    if bias is not None:
        b = bias.data
        out += b.astype(x.dtype) if b.dtype != x.dtype else b
    return out


def _softmax(
    pool: ScratchPool, tag: str, x: np.ndarray, exact: bool = True
) -> np.ndarray:
    """Replicates ``Tensor.softmax(axis=-1)`` including the float64 denominator.

    ``exact=False`` (the pre-filter's coarse pass) accumulates the
    denominator in the input dtype instead — mixed-precision reductions
    fall off NumPy's vectorized path and dominate the float32 profile.
    """
    shifted = pool.take(tag + ".shift", x.shape, x.dtype)
    np.subtract(x, x.max(axis=-1, keepdims=True), out=shifted)
    np.exp(shifted, out=shifted)
    acc = np.float64 if exact else x.dtype
    denom = shifted.sum(axis=-1, keepdims=True, dtype=acc)
    return (shifted / denom).astype(x.dtype, copy=False)


def _sum_cast(x: np.ndarray, axis, exact: bool = True) -> np.ndarray:
    """Replicates ``Tensor.sum``: accumulate in float64, cast back.

    ``exact=False`` accumulates natively (see :func:`_softmax`).
    """
    if not exact:
        return x.sum(axis=axis)
    out = x.sum(axis=axis, dtype=np.float64)
    return np.asarray(out).astype(x.dtype, copy=False)


def _mean_cast(x: np.ndarray, axis, exact: bool = True) -> np.ndarray:
    """Replicates ``Tensor.mean``: float64-accumulated sum times ``1/count``."""
    axes = axis if isinstance(axis, tuple) else (axis,)
    count = int(np.prod([x.shape[a] for a in axes]))
    inv = np.asarray(1.0 / count, dtype=x.dtype)
    return _sum_cast(x, axis, exact) * inv


def _masked_fill_(x: np.ndarray, keep: np.ndarray, fill: float) -> np.ndarray:
    """In-place ``masked_keep``: positions where ``keep`` is False get ``fill``."""
    np.copyto(x, np.asarray(fill, dtype=x.dtype), where=~keep)
    return x


def _masked_mean(
    values: np.ndarray, mask: np.ndarray, exact: bool = True
) -> np.ndarray:
    """Replicates :func:`repro.fcm.matcher._masked_mean` on raw arrays."""
    axes = tuple(range(1, values.ndim))
    counts = np.asarray(mask, dtype=bool).sum(axis=axes).astype(values.dtype)
    kept = np.where(mask, values, np.asarray(0.0, dtype=values.dtype))
    total = _sum_cast(kept, axes, exact)
    return (total * (1.0 / np.maximum(counts, 1.0))).reshape(-1, 1)


class FusedMatchKernel:
    """Fused, graph-free replacement for ``matcher.forward_batch``.

    Supports the two shipped matcher variants (:class:`HCMANMatcher` and the
    :class:`AveragedMatcher` ablation); any other matcher reports
    ``supported == False`` and callers fall back to the Tensor path.  The
    kernel holds only a :class:`ScratchPool` and a reference to the matcher —
    parameters are read live on every call.
    """

    def __init__(self, matcher) -> None:
        self._matcher = matcher
        self.pool = ScratchPool()

    @property
    def supported(self) -> bool:
        matcher = self._matcher
        if isinstance(matcher, AveragedMatcher):
            return len(matcher.head.mlp.layers) == 2
        if isinstance(matcher, HCMANMatcher):
            return (
                len(matcher.head.mlp.layers) == 2
                and matcher.head.mlp.activation_name == "relu"
            )
        return False

    def score_batch(
        self,
        chart_repr: np.ndarray,
        table_batch: np.ndarray,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
        exact: bool = True,
    ) -> np.ndarray:
        """``(B,)`` relevance scores; equals ``matcher.forward_batch(...)``.

        ``chart_repr`` is the raw ``(M, N1, K)`` chart encoding array and
        ``table_batch`` the zero-padded ``(B, NC, N2, K)`` candidate stack in
        the same dtype; masks follow :func:`pad_candidate_batch`.

        ``exact=True`` (the default, used by exact verification) replays the
        Tensor graph's float64-accumulated reductions so float64 scores are
        bitwise identical to the graphed path.  ``exact=False`` (the coarse
        pre-filter pass) accumulates in the input dtype — the scores only
        feed the overscan cut, and mixed-precision reductions are the
        dominant cost of a float32 batch.
        """
        matcher = self._matcher
        if isinstance(matcher, AveragedMatcher):
            return self._averaged(chart_repr, table_batch, segment_mask, exact)
        return self._hcman(
            chart_repr, table_batch, segment_mask, column_mask, exact
        )

    # ------------------------------------------------------------------ #
    # HCMAN chain
    # ------------------------------------------------------------------ #
    def _hcman(
        self,
        chart_repr: np.ndarray,
        table_batch: np.ndarray,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
        exact: bool = True,
    ) -> np.ndarray:
        seg = self._matcher.segment_level
        b, nc, n2, dim = table_batch.shape
        table_flat = table_batch.reshape(b, nc * n2, dim)
        keys = _linear(self.pool, "sl.k", table_flat, seg.key_proj.weight, seg.key_proj.bias, exact)
        table_values = _linear(self.pool, "sl.tv", table_batch, seg.value_proj.weight, seg.value_proj.bias, exact)
        return self._hcman_core(
            chart_repr, keys, table_values, segment_mask, column_mask, exact
        )

    def _hcman_core(
        self,
        chart_repr: np.ndarray,
        keys: np.ndarray,
        table_values: np.ndarray,
        segment_mask: np.ndarray,
        column_mask: np.ndarray,
        exact: bool = True,
    ) -> np.ndarray:
        """HCMAN chain after the table-side projections.

        ``keys``/``table_values`` are the key/value projections of the
        candidate batch — computed per call by :meth:`_hcman` or served from
        a prebuilt :class:`CoarseCache` by :func:`coarse_scores` (they only
        depend on the candidates and the matcher weights, not the query).
        Both are read-only here so cached projections survive the call.
        """
        pool = self.pool
        matcher = self._matcher
        seg = matcher.segment_level
        dtype = table_values.dtype

        m, n1, dim = chart_repr.shape
        b, nc, n2, _ = table_values.shape
        chart_flat = chart_repr.reshape(m * n1, dim)
        seg_valid = np.asarray(segment_mask, dtype=bool)
        flat_valid = seg_valid.reshape(b, 1, nc * n2)
        scale = np.asarray(1.0 / np.sqrt(dim), dtype=dtype)

        # --- SL-SAN ---------------------------------------------------- #
        queries = _linear(pool, "sl.q", chart_flat, seg.query_proj.weight, seg.query_proj.bias, exact)
        sim = pool.take("sl.sim", (b, m * n1, nc * n2), dtype)
        np.matmul(queries, keys.swapaxes(-1, -2), out=sim)
        sim *= scale
        _masked_fill_(sim, flat_valid, -np.inf)

        chart_scores = sim.reshape(b, m, n1, nc * n2).max(axis=-1)  # (B, M, N1)
        # max over the chart axis equals the transposed-reshape max of the
        # graphed path without materialising the (B, NC, N2, M*N1) copy.
        table_scores = sim.max(axis=1).reshape(b, nc, n2)  # (B, NC, N2)

        chart_weights = _softmax(pool, "sl.cw", chart_scores, exact)[..., None]
        column_alive = seg_valid.any(axis=-1)[..., None]  # (B, NC, 1)
        masked_ts = pool.take("sl.mts", table_scores.shape, dtype)
        np.copyto(masked_ts, table_scores)
        _masked_fill_(masked_ts, column_alive, 0.0)
        table_weights = _softmax(pool, "sl.tw", masked_ts, exact)[..., None]

        chart_values = _linear(pool, "sl.cv", chart_repr, seg.value_proj.weight, seg.value_proj.bias, exact)
        if exact:
            weighted = pool.take("sl.wgt", (b, m, n1, dim), dtype)
            np.multiply(chart_values, chart_weights, out=weighted)
            lines = _sum_cast(weighted, 2, exact)  # (B, M, K)
            weighted_tv = pool.take("sl.tvw", table_values.shape, dtype)
            np.multiply(table_values, table_weights, out=weighted_tv)
            columns = _sum_cast(weighted_tv, 2, exact)  # (B, NC, K)
        else:
            # One fused contraction instead of a broadcast multiply plus a
            # reduction over a (B, ·, ·, K) scratch — the multiply+sum pair
            # is the single most expensive op group of the coarse pass.
            lines = np.einsum(
                "mnk,bmn->bmk", chart_values, chart_weights[..., 0]
            )
            columns = np.einsum(
                "bcsk,bcs->bck", table_values, table_weights[..., 0]
            )
        segment_evidence = np.concatenate(
            [
                _mean_cast(chart_scores, (1, 2), exact).reshape(-1, 1),
                _masked_mean(table_scores, seg_valid, exact),
            ],
            axis=-1,
        )

        # --- LL-SAN ---------------------------------------------------- #
        line = matcher.line_level
        col_valid = np.asarray(column_mask, dtype=bool)
        lq = _linear(pool, "ll.q", lines, line.query_proj.weight, line.query_proj.bias, exact)
        lk = _linear(pool, "ll.k", columns, line.key_proj.weight, line.key_proj.bias, exact)
        sim2 = pool.take("ll.sim", (b, m, nc), dtype)
        np.matmul(lq, lk.swapaxes(-1, -2), out=sim2)
        sim2 *= scale
        _masked_fill_(sim2, col_valid[:, None, :], -np.inf)

        line_scores = sim2.max(axis=-1)  # (B, M)
        column_scores = sim2.max(axis=1)  # (B, NC); == swapaxes(-1,-2).max(-1)

        line_weights = _softmax(pool, "ll.lw", line_scores, exact)[..., None]
        column_weights = _softmax(pool, "ll.cw", column_scores, exact)[..., None]

        line_values = _linear(pool, "ll.lv", lines, line.value_proj.weight, line.value_proj.bias, exact)
        np.multiply(line_values, line_weights, out=line_values)
        chart_vecs = _sum_cast(line_values, 1, exact)  # (B, K)
        column_values = _linear(pool, "ll.cv", columns, line.value_proj.weight, line.value_proj.bias, exact)
        np.multiply(column_values, column_weights, out=column_values)
        table_vecs = _sum_cast(column_values, 1, exact)  # (B, K)
        line_evidence = np.concatenate(
            [
                _mean_cast(line_scores, (-1,), exact).reshape(-1, 1),
                _masked_mean(column_scores, col_valid, exact),
            ],
            axis=-1,
        )

        evidence = np.concatenate([segment_evidence, line_evidence], axis=-1)
        return self._head(chart_vecs, table_vecs, evidence, exact)

    # ------------------------------------------------------------------ #
    # Averaged ablation
    # ------------------------------------------------------------------ #
    def _averaged(
        self,
        chart_repr: np.ndarray,
        table_batch: np.ndarray,
        segment_mask: np.ndarray,
        exact: bool = True,
    ) -> np.ndarray:
        dtype = table_batch.dtype
        seg_valid = np.asarray(segment_mask, dtype=bool)
        counts = seg_valid.sum(axis=(1, 2))  # (B,)
        masked = self.pool.take("avg.mask", table_batch.shape, dtype)
        np.multiply(table_batch, seg_valid[..., None].astype(dtype), out=masked)
        inv = (1.0 / np.maximum(counts, 1.0))[:, None].astype(dtype)
        table_vecs = _sum_cast(masked, (1, 2), exact) * inv
        return self._averaged_core(chart_repr, table_vecs, exact)

    def _averaged_core(
        self,
        chart_repr: np.ndarray,
        table_vecs: np.ndarray,
        exact: bool = True,
    ) -> np.ndarray:
        """Averaged chain after the masked table mean (read-only, cacheable)."""
        dtype = table_vecs.dtype
        b = table_vecs.shape[0]
        chart_vec = _mean_cast(chart_repr, (0, 1), exact)  # (K,)
        chart_vecs = chart_vec[None] + np.zeros((b, 1), dtype=dtype)
        return self._head(chart_vecs, table_vecs, None, exact)

    # ------------------------------------------------------------------ #
    # Interaction head
    # ------------------------------------------------------------------ #
    def _head(
        self,
        chart_vecs: np.ndarray,
        table_vecs: np.ndarray,
        extra: Optional[np.ndarray],
        exact: bool = True,
    ) -> np.ndarray:
        pool = self.pool
        head = self._matcher.head
        dtype = chart_vecs.dtype
        eps = np.asarray(1e-8, dtype=dtype)

        product = chart_vecs * table_vecs
        difference = np.abs(chart_vecs - table_vecs)
        chart_norm = (
            _sum_cast(chart_vecs * chart_vecs, -1, exact)[..., None] + eps
        ) ** 0.5
        table_norm = (
            _sum_cast(table_vecs * table_vecs, -1, exact)[..., None] + eps
        ) ** 0.5
        cosine = _sum_cast(product, -1, exact)[..., None] / (
            chart_norm * table_norm
        )
        parts = [chart_vecs, table_vecs, product, difference, cosine]
        if head.num_extra_features:
            if extra is None:
                raise ValueError(
                    f"head expects {head.num_extra_features} extra features"
                )
            parts.append(extra.reshape(-1, head.num_extra_features))
        joint = np.concatenate(parts, axis=-1)

        fc0, fc1 = head.mlp.layers
        hidden = _linear(pool, "head.h", joint, fc0.weight, fc0.bias, exact)
        hidden *= hidden > 0  # relu, exactly as Tensor.relu computes it
        logits = _linear(pool, "head.o", hidden, fc1.weight, fc1.bias, exact)
        scores = 1.0 / (1.0 + np.exp(-logits))
        return np.squeeze(scores, axis=-1)


# ---------------------------------------------------------------------- #
# int8 symmetric quantization + packed pre-filter
# ---------------------------------------------------------------------- #
class QuantizedTable(NamedTuple):
    """int8 copy of one table's encodings: ``representations ≈ codes · scale``."""

    codes: np.ndarray  # (NC, N2, K) int8 — mirrors the representation shape
    scale: float  # dequantization multiplier; 0.0 for all-zero tables


class QuantizedPack(NamedTuple):
    """Every candidate's *pooled* quantized encoding, padded into one batch.

    The pack is the pre-filter's scoring input: per table, the int8 codes
    are dequantized, groups of :attr:`pool` consecutive segment rows are
    mean-pooled, and the pooled vectors are re-quantized to int8 (one scale
    per table).  Scoring a candidate chunk is then a single matcher call on
    a ``pool``-times-smaller batch — the pre-filter runs the *real* matcher
    (fused or graphed) on a coarse input, so its ranking tracks the exact
    score through every attention and MLP nonlinearity instead of relying
    on a raw-similarity proxy.
    """

    table_ids: Tuple[str, ...]
    codes: np.ndarray  # (T, NC_max, NS_max, K) int8 — pooled segment rows
    segment_mask: np.ndarray  # (T, NC_max, NS_max) bool
    column_mask: np.ndarray  # (T, NC_max) bool
    scales: np.ndarray  # (T,) float64
    pool: int  # segment rows mean-pooled per coarse row
    index: Dict[str, int]  # table_id -> position in the arrays above


def quantize_table(representations: np.ndarray) -> QuantizedTable:
    """Symmetric per-table int8 quantization of an ``(NC, N2, K)`` encoding.

    ``scale = max|x| / 127`` so the full dynamic range maps onto
    ``[-127, 127]``; all-zero (or non-finite-free constant-zero) tables get
    ``scale = 0.0`` and all-zero codes — the guard every consumer relies on
    instead of dividing by zero.
    """
    reps = np.asarray(representations)
    amax = float(np.max(np.abs(reps))) if reps.size else 0.0
    if not np.isfinite(amax) or amax == 0.0:
        return QuantizedTable(
            codes=np.zeros(reps.shape, dtype=np.int8), scale=0.0
        )
    scale = amax / 127.0
    codes = np.clip(np.rint(reps / scale), -127, 127).astype(np.int8)
    return QuantizedTable(codes=codes, scale=scale)


#: Precision of the coarse pre-filter pass.  The coarse score only feeds
#: the overscan cut (survivors are re-scored exactly), so it always runs
#: in float32 — under a float64 session the narrower GEMMs roughly halve
#: the coarse pass without touching the recall floor.
PREFILTER_DTYPE = np.float32

#: Default segment rows mean-pooled per coarse row of the pre-filter pack.
#: The coarse score is the real matcher on pooled input, so larger pools
#: trade score fidelity for speed: on undertrained models with near-flat
#: score landscapes a pool of 4 can push true top-k tables outside the
#: default overscan cut, while 2 keeps them at roughly half the FLOPs.
PREFILTER_POOL = 2

#: Candidate tables dequantized + matcher-scored per pre-filter chunk;
#: bounds the float copy of the pooled batch to a few tens of MB.
PREFILTER_CHUNK_TABLES = 2048


def _pooled_dequant(quantized: QuantizedTable, pool: int) -> np.ndarray:
    """Dequantize one table and mean-pool segment rows in groups of ``pool``.

    Returns ``(NC, ceil(N2 / pool), K)`` float64; trailing groups shorter
    than ``pool`` average only their real rows (no zero-dilution).
    """
    codes = quantized.codes.astype(np.float64) * float(quantized.scale)
    nc, n2, dim = codes.shape
    ns = max(1, -(-n2 // max(int(pool), 1)))
    padded = np.zeros((nc, ns * pool, dim), dtype=np.float64)
    padded[:, :n2] = codes
    counts = np.clip(n2 - np.arange(ns) * pool, 1, pool).astype(np.float64)
    return padded.reshape(nc, ns, pool, dim).sum(axis=2) / counts[None, :, None]


def pooled_vectors(
    quantized: QuantizedTable, pool: int = PREFILTER_POOL
) -> np.ndarray:
    """The pooled float vectors one table contributes to a pack.

    Public wrapper around the per-table pooling step of
    :func:`build_quantized_pack`, so callers that maintain an incremental
    pack (the scorer's dirty-segment refresh: only entries whose content
    changed are re-pooled) compute exactly the vectors a from-scratch pack
    build would.
    """
    return _pooled_dequant(quantized, pool)


def build_quantized_pack(
    items: Sequence[Tuple[str, QuantizedTable]],
    pool: int = PREFILTER_POOL,
    pooled: Optional[Sequence[np.ndarray]] = None,
) -> QuantizedPack:
    """Pool + re-quantize every table and pad into one scoring batch.

    ``pooled`` optionally supplies the per-table pooled vectors (one array
    per item, as produced by :func:`pooled_vectors` with the same ``pool``)
    so an incremental caller only pays the pooling cost for entries whose
    content actually changed; ``None`` pools everything here.
    """
    table_ids = tuple(table_id for table_id, _ in items)
    index = {table_id: position for position, table_id in enumerate(table_ids)}
    if pooled is None:
        pooled = [_pooled_dequant(quantized, pool) for _, quantized in items]
    else:
        if len(pooled) != len(items):
            raise ValueError(
                f"pooled= carries {len(pooled)} arrays for {len(items)} items"
            )
        pooled = list(pooled)
    if not pooled:
        return QuantizedPack(
            table_ids=table_ids,
            codes=np.zeros((0, 1, 1, 1), dtype=np.int8),
            segment_mask=np.zeros((0, 1, 1), dtype=bool),
            column_mask=np.zeros((0, 1), dtype=bool),
            scales=np.zeros(0, dtype=np.float64),
            pool=int(pool),
            index=index,
        )
    nc_max = max(p.shape[0] for p in pooled)
    ns_max = max(p.shape[1] for p in pooled)
    dim = pooled[0].shape[2]
    codes = np.zeros((len(pooled), nc_max, ns_max, dim), dtype=np.int8)
    segment_mask = np.zeros((len(pooled), nc_max, ns_max), dtype=bool)
    column_mask = np.zeros((len(pooled), nc_max), dtype=bool)
    scales = np.zeros(len(pooled), dtype=np.float64)
    for position, vectors in enumerate(pooled):
        nc, ns, _ = vectors.shape
        amax = float(np.max(np.abs(vectors))) if vectors.size else 0.0
        if np.isfinite(amax) and amax > 0.0:
            scales[position] = amax / 127.0
            codes[position, :nc, :ns] = np.clip(
                np.rint(vectors / scales[position]), -127, 127
            ).astype(np.int8)
        segment_mask[position, :nc, :ns] = True
        column_mask[position, :nc] = True
    return QuantizedPack(
        table_ids=table_ids,
        codes=codes,
        segment_mask=segment_mask,
        column_mask=column_mask,
        scales=scales,
        pool=int(pool),
        index=index,
    )


def quantized_scores(
    pack: QuantizedPack,
    chart_repr: np.ndarray,
    table_ids: Sequence[str],
    score_fn,
    chunk_tables: int = PREFILTER_CHUNK_TABLES,
) -> np.ndarray:
    """Coarse pre-filter scores for ``table_ids``, one float per id.

    ``chart_repr`` is the raw ``(M, N1, K)`` chart encoding array and
    ``score_fn(chart_repr, table_batch, segment_mask, column_mask)`` the
    matcher entry point to run on each dequantized candidate chunk —
    :meth:`FusedMatchKernel.score_batch`, or a graphed fallback with the
    same signature.  Unknown ids score ``-inf`` so they are dropped before
    exact re-scoring ever sees them.
    """
    chart = np.ascontiguousarray(chart_repr)
    out = np.full(len(table_ids), -np.inf, dtype=np.float64)
    positions = np.asarray(
        [pack.index.get(table_id, -1) for table_id in table_ids], dtype=np.int64
    )
    known = positions >= 0
    if not known.any() or chart.size == 0:
        return out
    known_positions = positions[known]
    scores = np.empty(len(known_positions), dtype=np.float64)
    step = max(int(chunk_tables), 1)
    for start in range(0, len(known_positions), step):
        chunk = known_positions[start : start + step]
        batch = pack.codes[chunk].astype(chart.dtype)
        batch *= pack.scales[chunk][:, None, None, None].astype(chart.dtype)
        scores[start : start + len(chunk)] = np.atleast_1d(
            score_fn(
                chart, batch, pack.segment_mask[chunk], pack.column_mask[chunk]
            )
        )
    out[known] = scores
    return out


class CoarseCache(NamedTuple):
    """Query-independent half of the coarse pass, prebuilt from the pack.

    The pre-filter pack is static between index mutations and the matcher
    weights are fixed during serving, so everything the coarse matcher call
    derives from the *table* side — the dequantized batch, its key/value
    projections (HCMAN) or the masked segment mean (averaged ablation) —
    can be computed once per pack instead of once per query.  Stored at
    :data:`PREFILTER_DTYPE`; roughly ``2 · NC · NS · K`` floats per table
    (~3 KB at the default config), all derived state that is rebuilt with
    the pack and never persisted.

    ``sorted_ids`` / ``sorted_positions`` are the vectorized id→row lookup
    (``np.searchsorted`` replaces a Python dict probe per candidate).
    """

    keys: Optional[np.ndarray]  # (T, NC·NS, K) — HCMAN key projection
    table_values: Optional[np.ndarray]  # (T, NC, NS, K) — HCMAN value proj
    table_vecs: Optional[np.ndarray]  # (T, K) — averaged-matcher table mean
    sorted_ids: np.ndarray  # (T,) unicode — pack ids, lexicographic
    sorted_positions: np.ndarray  # (T,) int64 — pack row of sorted_ids[i]


def _project(x: np.ndarray, layer) -> np.ndarray:
    """``x @ W + b`` into a fresh array (cache build; no pooled scratch)."""
    w = layer.weight.data
    out = x @ (w.astype(x.dtype) if w.dtype != x.dtype else w)
    if layer.bias is not None:
        b = layer.bias.data
        out += b.astype(x.dtype) if b.dtype != x.dtype else b
    return out


def build_coarse_cache(kernel: FusedMatchKernel, pack: QuantizedPack) -> CoarseCache:
    """Dequantize + project the whole pack once, for :func:`coarse_scores`."""
    dtype = PREFILTER_DTYPE
    ids = np.asarray(pack.table_ids)
    order = np.argsort(ids) if ids.size else np.zeros(0, dtype=np.int64)
    sorted_ids = ids[order]
    batch = pack.codes.astype(dtype)
    batch *= pack.scales[:, None, None, None].astype(dtype)
    matcher = kernel._matcher
    if isinstance(matcher, AveragedMatcher):
        seg_valid = np.asarray(pack.segment_mask, dtype=bool)
        counts = seg_valid.sum(axis=(1, 2))
        np.multiply(batch, seg_valid[..., None].astype(dtype), out=batch)
        inv = (1.0 / np.maximum(counts, 1.0))[:, None].astype(dtype)
        table_vecs = batch.sum(axis=(1, 2)) * inv
        return CoarseCache(None, None, table_vecs, sorted_ids, order)
    seg = matcher.segment_level
    t, nc, ns, dim = batch.shape
    keys = _project(batch.reshape(t, nc * ns, dim), seg.key_proj)
    table_values = _project(batch, seg.value_proj)
    return CoarseCache(keys, table_values, None, sorted_ids, order)


def coarse_scores(
    kernel: FusedMatchKernel,
    pack: QuantizedPack,
    cache: CoarseCache,
    chart_repr: np.ndarray,
    table_ids: Sequence[str],
    chunk_tables: int = PREFILTER_CHUNK_TABLES,
) -> np.ndarray:
    """Pre-filter scores via the cached projections (fused kernel only).

    The per-query work drops to the chart-side projections plus the
    attention/head chain — no dequantize, no table-side GEMMs.  Scores are
    identical to :func:`quantized_scores` with an ``exact=False`` fused
    ``score_fn`` at :data:`PREFILTER_DTYPE`; unknown ids score ``-inf``.
    """
    chart = np.ascontiguousarray(
        np.asarray(chart_repr).astype(PREFILTER_DTYPE, copy=False)
    )
    out = np.full(len(table_ids), -np.inf, dtype=np.float64)
    if not len(table_ids) or not cache.sorted_ids.size or chart.size == 0:
        return out
    query_ids = np.asarray(table_ids)
    if len(query_ids) == len(cache.sorted_ids) and np.array_equal(
        query_ids, cache.sorted_ids
    ):
        # Exhaustive verification asks for every indexed table in sorted
        # order — exactly ``sorted_ids``, so the lookup is precomputed.
        positions = cache.sorted_positions
    else:
        loc = np.searchsorted(cache.sorted_ids, query_ids)
        loc = np.minimum(loc, len(cache.sorted_ids) - 1)
        positions = np.where(
            cache.sorted_ids[loc] == query_ids, cache.sorted_positions[loc], -1
        )
    known = positions >= 0
    if not known.any():
        return out
    known_positions = positions[known]
    scores = np.empty(len(known_positions), dtype=np.float64)
    step = max(int(chunk_tables), 1)
    for start in range(0, len(known_positions), step):
        chunk = known_positions[start : start + step]
        if len(chunk) == int(chunk[-1]) - int(chunk[0]) + 1 and bool(
            (np.diff(chunk) == 1).all()
        ):
            # Contiguous rows (the exhaustive-verification common case):
            # plain slices make every cache/mask access a view, not a
            # fancy-index copy.
            sel = slice(int(chunk[0]), int(chunk[0]) + len(chunk))
        else:
            sel = chunk
        if cache.table_vecs is not None:
            batch_scores = kernel._averaged_core(
                chart, cache.table_vecs[sel], exact=False
            )
        else:
            batch_scores = kernel._hcman_core(
                chart,
                cache.keys[sel],
                cache.table_values[sel],
                pack.segment_mask[sel],
                pack.column_mask[sel],
                exact=False,
            )
        scores[start : start + len(chunk)] = np.atleast_1d(batch_scores)
    out[known] = scores
    return out
