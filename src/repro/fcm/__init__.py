"""``repro.fcm`` — the paper's core contribution: FCM model, training, scoring."""

from .chart_encoder import SegmentLineChartEncoder
from .config import FCMConfig, paper_scale_config
from .da_layers import (
    DataAggregationEncoder,
    HierarchicalMultiScaleLayer,
    MixtureOfExpertsLayer,
    TransformationLayer,
)
from .dataset_encoder import SegmentDatasetEncoder
from .matcher import AveragedMatcher, HCMANMatcher, build_matcher
from .model import FCMModel
from .preprocessing import (
    ChartInput,
    TableInput,
    column_segments,
    line_segment_features,
    prepare_chart_input,
    prepare_table_input,
    resample_series,
)
from .sampling import (
    NEGATIVE_STRATEGIES,
    batch_indices,
    select_negatives,
    select_negatives_batch,
)
from .scorer import EncodedTable, FCMScorer, build_scorer_for_repository
from .training import (
    EpochStats,
    FCMTrainer,
    TrainerConfig,
    TrainingData,
    TrainingExample,
    TrainingHistory,
    build_training_data,
    ground_truth_relevance,
    relevance_matrix,
    train_fcm,
)

__all__ = [
    "AveragedMatcher",
    "ChartInput",
    "DataAggregationEncoder",
    "EncodedTable",
    "EpochStats",
    "FCMConfig",
    "FCMModel",
    "FCMScorer",
    "FCMTrainer",
    "HCMANMatcher",
    "HierarchicalMultiScaleLayer",
    "MixtureOfExpertsLayer",
    "NEGATIVE_STRATEGIES",
    "SegmentDatasetEncoder",
    "SegmentLineChartEncoder",
    "TableInput",
    "TrainerConfig",
    "TrainingData",
    "TrainingExample",
    "TrainingHistory",
    "TransformationLayer",
    "batch_indices",
    "build_matcher",
    "build_scorer_for_repository",
    "build_training_data",
    "column_segments",
    "ground_truth_relevance",
    "line_segment_features",
    "paper_scale_config",
    "prepare_chart_input",
    "prepare_table_input",
    "relevance_matrix",
    "resample_series",
    "select_negatives",
    "select_negatives_batch",
    "train_fcm",
]
