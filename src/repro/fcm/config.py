"""Configuration for the FCM model and its training.

The paper's configuration (Sec. VII-B) uses a 768-dimensional, 12-layer,
8-head transformer, line-segment width ``P1 = 60`` and data-segment size
``P2 = 64``.  The defaults here keep the architectural choices (pre-norm
transformer encoders, P1/P2, the DA layers, the HCMAN matcher) but shrink the
embedding size and depth so the full experiment suite trains on a CPU; the
paper-scale settings remain expressible through the same dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from ..charts.spec import ChartSpec
from ..nn import default_dtype, resolve_dtype


@dataclass
class FCMConfig:
    """Hyper-parameters of FCM (model architecture + preprocessing).

    Attributes
    ----------
    embed_dim:
        Embedding size ``K``.
    num_heads, num_layers, mlp_ratio, dropout:
        Transformer-encoder settings shared by the chart and dataset encoders.
    line_segment_width:
        ``P1``: pixel width of each line-segment image (Sec. IV-B).
    image_pool:
        Average-pooling factor applied to line-segment images before the
        linear projection (a CPU-friendliness substitution; 1 disables it).
    data_segment_size:
        ``P2``: number of data points per column segment (Sec. IV-C).
    max_chart_segments, max_data_segments:
        Upper bounds on the number of segments (positional-embedding capacity
        and a cost cap for very long columns).
    beta:
        DA pre-processing sub-segment exponent: each data segment is split
        into ``2**beta`` sub-segments before the HMRL tree (Sec. V-A).
    enable_da_layers:
        Include the transformation/HMRL/MoE layers (the FCM-DA ablation of
        Table VI turns this off).
    use_hcman:
        Use the hierarchical cross-modal attention matcher; when false the
        model averages segment representations and concatenates them into an
        MLP (the FCM-HCMAN ablation of Table V).
    column_filter_tolerance:
        Relative tolerance of the y-tick based column filter (Sec. IV-C).
    normalize_columns:
        Whether column segments are z-normalised per column before encoding.
    chart_spec:
        Geometry of the rendered charts; needed to derive feature sizes.
    seed:
        Seed for parameter initialisation.
    dtype:
        Numeric precision of the model: ``"float32"``, ``"float64"`` or
        ``None`` (adopt the process-wide policy of :mod:`repro.nn.dtype` at
        model construction; :class:`~repro.fcm.model.FCMModel` pins the
        resolved name back onto its config so encoders, cached encodings,
        index structures, snapshots and sharded-build workers all agree).
    """

    embed_dim: int = 32
    num_heads: int = 2
    num_layers: int = 2
    mlp_ratio: float = 2.0
    dropout: float = 0.0

    line_segment_width: int = 60
    image_pool: int = 4
    data_segment_size: int = 64
    max_chart_segments: int = 16
    max_data_segments: int = 8

    beta: int = 3
    enable_da_layers: bool = True
    use_hcman: bool = True

    column_filter_tolerance: float = 0.25
    normalize_columns: bool = True

    chart_spec: ChartSpec = field(default_factory=ChartSpec)
    seed: int = 0
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.dtype is not None:
            # Normalise (np.float32, "float32", dtype('float32') all work)
            # and reject anything but the supported float precisions.
            self.dtype = resolve_dtype(self.dtype).name
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        if self.line_segment_width <= 0 or self.data_segment_size <= 0:
            raise ValueError("segment sizes must be positive")
        if self.image_pool < 1:
            raise ValueError("image_pool must be >= 1")
        if self.beta < 1:
            raise ValueError("beta must be >= 1")
        if self.data_segment_size % (2 ** self.beta) != 0:
            raise ValueError(
                f"data_segment_size ({self.data_segment_size}) must be divisible by "
                f"2**beta ({2 ** self.beta}) so sub-segments have equal size"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_chart_segments(self) -> int:
        """``N1``: segments per line given the plot width and ``P1``."""
        n1 = max(self.chart_spec.plot_width // self.line_segment_width, 1)
        return min(n1, self.max_chart_segments)

    @property
    def pooled_segment_height(self) -> int:
        return max(self.chart_spec.plot_height // self.image_pool, 1)

    @property
    def pooled_segment_width(self) -> int:
        return max(self.line_segment_width // self.image_pool, 1)

    @property
    def chart_segment_feature_dim(self) -> int:
        """Flattened feature size of one pooled line-segment image."""
        return self.pooled_segment_height * self.pooled_segment_width

    @property
    def sub_segment_size(self) -> int:
        """Length of one HMRL leaf sub-segment."""
        return self.data_segment_size // (2 ** self.beta)

    @property
    def num_experts(self) -> int:
        """Four aggregation operators plus the identity expert (Sec. V-B)."""
        return 5

    @property
    def numeric_dtype(self) -> np.dtype:
        """The resolved numeric precision of this configuration.

        ``dtype=None`` follows the process-wide policy *at call time*; a
        constructed :class:`~repro.fcm.model.FCMModel` pins the resolved name
        onto its config so the model's precision never drifts with later
        policy changes.
        """
        if self.dtype is None:
            return default_dtype()
        return np.dtype(self.dtype)

    def with_overrides(self, **kwargs) -> "FCMConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_scale_config() -> FCMConfig:
    """The configuration reported in Sec. VII-B of the paper.

    Provided for completeness/documentation; training it requires far more
    compute than this reproduction environment offers.
    """
    return FCMConfig(
        embed_dim=768,
        num_heads=8,
        num_layers=12,
        line_segment_width=60,
        data_segment_size=64,
        image_pool=1,
    )
