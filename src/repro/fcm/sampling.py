"""Negative sampling strategies for FCM training (Sec. V-E and Appendix B/E).

For each positive training pair ``(V_i, T_i)``, ``N−`` negative tables are
selected from the current mini-batch.  The paper compares four strategies —
the ground-truth relevance ``Rel(D, T)`` between the chart's underlying data
and every candidate table in the batch is available at training time, so each
strategy simply picks from the ranked candidates:

* **semi-hard** (default): candidates with *middle*-ranked relevance;
* **random**: uniform over the batch;
* **hard**: the highest-relevance non-positive candidates;
* **easy**: the lowest-relevance candidates.

Figure 5 and Table IX study these choices; the corresponding experiment
harness lives in ``repro.bench.experiments``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

NEGATIVE_STRATEGIES = ("semi-hard", "random", "hard", "easy")


def select_negatives(
    relevance_row: np.ndarray,
    positive_index: int,
    num_negatives: int,
    strategy: str = "semi-hard",
    rng: np.random.Generator | None = None,
) -> List[int]:
    """Select negative candidate indices for one positive pair.

    Parameters
    ----------
    relevance_row:
        ``Rel(D_i, T_j)`` for the chart ``V_i`` against every candidate table
        ``T_j`` in the mini-batch (1-D array).
    positive_index:
        Index of the positive table in the row (never selected).
    num_negatives:
        ``N−``: how many negatives to return (clipped to the number of
        available candidates).
    strategy:
        One of :data:`NEGATIVE_STRATEGIES`.
    rng:
        Random generator (needed by the ``random`` strategy; optional
        otherwise).
    """
    if strategy not in NEGATIVE_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {NEGATIVE_STRATEGIES}"
        )
    relevance_row = np.asarray(relevance_row, dtype=np.float64)
    candidates = [i for i in range(relevance_row.shape[0]) if i != positive_index]
    if not candidates:
        return []
    num_negatives = min(num_negatives, len(candidates))
    if num_negatives <= 0:
        return []

    if strategy == "random":
        rng = rng or np.random.default_rng()
        chosen = rng.choice(len(candidates), size=num_negatives, replace=False)
        return [candidates[int(i)] for i in chosen]

    # Rank candidates by decreasing ground-truth relevance.
    ranked = sorted(candidates, key=lambda i: relevance_row[i], reverse=True)
    if strategy == "hard":
        return ranked[:num_negatives]
    if strategy == "easy":
        return ranked[-num_negatives:]
    # Semi-hard: the middle of the ranking.
    middle = len(ranked) // 2
    half = num_negatives // 2
    start = max(0, min(middle - half, len(ranked) - num_negatives))
    return ranked[start : start + num_negatives]


def select_negatives_batch(
    relevance_rows: Sequence[np.ndarray],
    positive_positions: Sequence[int],
    num_negatives: int,
    strategy: str = "semi-hard",
    rng: np.random.Generator | None = None,
) -> List[List[int]]:
    """Negative selection for a whole minibatch of positives at once.

    Row ``i`` of the result holds the negatives for ``(relevance_rows[i],
    positive_positions[i])``.  Selection runs row by row *in order*, so the
    ``random`` strategy consumes ``rng`` exactly like the equivalent sequence
    of single-row :func:`select_negatives` calls — the batched trainer and
    the per-pair reference path therefore draw identical negatives from the
    same generator state, which is what makes their losses and gradients
    directly comparable.
    """
    if len(relevance_rows) != len(positive_positions):
        raise ValueError(
            "relevance_rows and positive_positions must have equal length"
        )
    return [
        select_negatives(row, positive, num_negatives, strategy=strategy, rng=rng)
        for row, positive in zip(relevance_rows, positive_positions)
    ]


def batch_indices(
    num_examples: int, batch_size: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Shuffle example indices and split them into mini-batches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = rng.permutation(num_examples)
    return [order[start : start + batch_size] for start in range(0, num_examples, batch_size)]
