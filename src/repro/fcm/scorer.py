"""Query-time scoring: rank a repository of tables for a line chart query.

The scorer wraps the trained FCM model with the pieces a deployment needs:

* the visual element extractor turning a query chart into lines + y range;
* a cache of dataset-encoder outputs so each table is encoded once and only
  the (cheap) cross-modal matcher runs per (query, table) pair;
* the y-tick column filter of Sec. IV-C, applied by *selecting* the cached
  column representations whose value range overlaps the query's y range.

Inference contract
------------------
All scoring entry points run under :meth:`repro.nn.Module.inference` — the
model is switched to eval mode and no autodiff graph is built (see the
inference-mode notes in :mod:`repro.nn.tensor`).  This is safe because query
scores are never differentiated; training goes through
:class:`~repro.fcm.training.FCMTrainer`, which calls the model directly.

Two scoring paths produce identical results:

* :meth:`FCMScorer.score_pair` / :meth:`FCMScorer.score_chart` — the per-pair
  reference path, one matcher forward per candidate table;
* :meth:`FCMScorer.score_chart_batch` — the batched path: the cached table
  representations of *all* candidates are stacked (zero-padded) along a new
  candidate axis and one matcher forward scores every candidate at once.
  Padded cells are excluded from every max/softmax/mean inside the matcher,
  so the scores match the per-pair path to floating-point accuracy.

:meth:`FCMScorer.rank` and the index layer use the batched path; the per-pair
path remains the ground truth the equivalence tests compare against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.repository import DataRepository
from ..data.table import Table
from ..nn import Tensor
from ..vision.extractor import VisualElementExtractor
from .config import FCMConfig
from .model import FCMModel
from .preprocessing import ChartInput, prepare_chart_input, prepare_table_input


def pad_candidate_batch(
    representations: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack per-table ``(NC_i, N2_i, K)`` representations into one batch.

    Candidates are zero-padded to the largest column/segment counts in the
    batch.  Returns ``(batch, segment_mask, column_mask)`` where ``batch`` has
    shape ``(B, NC_max, N2_max, K)``, ``segment_mask`` is boolean
    ``(B, NC_max, N2_max)`` marking real segments and ``column_mask`` is
    boolean ``(B, NC_max)`` marking real columns.
    """
    if not representations:
        raise ValueError("cannot build a batch from zero candidates")
    dim = representations[0].shape[-1]
    nc_max = max(rep.shape[0] for rep in representations)
    n2_max = max(rep.shape[1] for rep in representations)
    batch = np.zeros((len(representations), nc_max, n2_max, dim))
    segment_mask = np.zeros((len(representations), nc_max, n2_max), dtype=bool)
    column_mask = np.zeros((len(representations), nc_max), dtype=bool)
    for i, rep in enumerate(representations):
        nc, n2, _ = rep.shape
        batch[i, :nc, :n2] = rep
        segment_mask[i, :nc, :n2] = True
        column_mask[i, :nc] = True
    return batch, segment_mask, column_mask


@dataclass
class EncodedTable:
    """Cached dataset-encoder output for one table."""

    table_id: str
    representations: np.ndarray  # (NC, N2, K)
    column_names: List[str]
    column_ranges: List[Tuple[float, float]]
    column_embeddings: np.ndarray  # (NC, K), mean over segments


class FCMScorer:
    """Ranks candidate tables for line chart queries using a trained FCM."""

    #: Number of recently prepared query charts memoised by :meth:`prepare_query`.
    QUERY_CACHE_SIZE = 16

    def __init__(
        self,
        model: FCMModel,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> None:
        self.model = model
        self.config: FCMConfig = model.config
        self.extractor = extractor or VisualElementExtractor()
        self._encoded: Dict[str, EncodedTable] = {}
        # Maps id(chart) -> (chart, ChartInput).  Holding the chart reference
        # keeps the id stable; preprocessing is model-independent, so entries
        # never go stale even while the model trains.
        self._query_cache: "OrderedDict[int, Tuple[LineChart, ChartInput]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    # Table indexing
    # ------------------------------------------------------------------ #
    def index_table(self, table: Table) -> EncodedTable:
        """Encode ``table`` once and cache the result."""
        if table.table_id in self._encoded:
            return self._encoded[table.table_id]
        table_input = prepare_table_input(table, self.config)
        with self.model.inference():
            representations = self.model.encode_table(table_input).numpy()
        encoded = EncodedTable(
            table_id=table.table_id,
            representations=representations,
            column_names=table_input.column_names,
            column_ranges=[table.column(n).value_range() for n in table_input.column_names],
            column_embeddings=representations.mean(axis=1),
        )
        self._encoded[table.table_id] = encoded
        return encoded

    def index_repository(self, repository: Iterable[Table]) -> None:
        """Encode every table in the repository (idempotent)."""
        for table in repository:
            self.index_table(table)

    @property
    def indexed_table_ids(self) -> List[str]:
        return list(self._encoded.keys())

    def encoded_table(self, table_id: str) -> EncodedTable:
        if table_id not in self._encoded:
            raise KeyError(f"table {table_id!r} has not been indexed")
        return self._encoded[table_id]

    # ------------------------------------------------------------------ #
    # Query processing
    # ------------------------------------------------------------------ #
    def clear_query_cache(self) -> None:
        """Drop all memoised query preparations (see :meth:`prepare_query`)."""
        self._query_cache.clear()

    def prepare_query(self, chart: LineChart) -> ChartInput:
        """Extract visual elements and build the chart encoder input.

        Results are memoised per chart object (small LRU): a single query is
        prepared once even when it is scored under several index strategies
        or against several candidate batches.  The cache assumes charts are
        immutable once scored — every in-repo producer returns a fresh
        :class:`LineChart` — so a caller that mutates a chart in place must
        call :meth:`clear_query_cache` (or pass a new object) before
        re-scoring it.
        """
        key = id(chart)
        hit = self._query_cache.get(key)
        if hit is not None and hit[0] is chart:
            self._query_cache.move_to_end(key)
            return hit[1]
        elements = self.extractor.extract(chart)
        chart_input = prepare_chart_input(chart, elements, self.config)
        self._query_cache[key] = (chart, chart_input)
        while len(self._query_cache) > self.QUERY_CACHE_SIZE:
            self._query_cache.popitem(last=False)
        return chart_input

    def query_line_embeddings(self, chart: LineChart) -> np.ndarray:
        """Line-level embeddings of a query chart (for the LSH index)."""
        chart_input = self.prepare_query(chart)
        with self.model.inference():
            return self.model.line_embeddings(chart_input)

    def _select_columns(
        self, encoded: EncodedTable, y_range: Tuple[float, float]
    ) -> np.ndarray:
        """Apply the y-tick column filter to a cached table encoding."""
        low, high = y_range
        tolerance = self.config.column_filter_tolerance
        pad = tolerance * max(abs(low), abs(high), 1.0)
        keep = [
            idx
            for idx, (c_low, c_high) in enumerate(encoded.column_ranges)
            if c_high >= low - pad and c_low <= high + pad
        ]
        if not keep:
            keep = list(range(len(encoded.column_ranges)))
        return encoded.representations[keep]

    def score_pair(self, chart_input: ChartInput, encoded: EncodedTable) -> float:
        """Relevance of one query against one cached table."""
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
            table_repr = Tensor(self._select_columns(encoded, chart_input.y_range))
            return float(self.model.match(chart_repr, table_repr).item())

    def score_chart(
        self,
        chart: LineChart,
        table_ids: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Relevance against the indexed tables, one matcher call per table.

        This is the per-pair reference path; :meth:`score_chart_batch` returns
        the same scores with one stacked matcher call and is what the ranking
        and index layers use.
        """
        chart_input = self.prepare_query(chart)
        ids = list(table_ids) if table_ids is not None else self.indexed_table_ids
        scores: Dict[str, float] = {}
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
            for table_id in ids:
                encoded = self.encoded_table(table_id)
                table_repr = Tensor(self._select_columns(encoded, chart_input.y_range))
                scores[table_id] = float(self.model.match(chart_repr, table_repr).item())
        return scores

    def score_chart_batch(
        self,
        chart: LineChart,
        table_ids: Optional[Sequence[str]] = None,
        batch_size: Optional[int] = 256,
    ) -> Dict[str, float]:
        """Relevance against the indexed tables via one stacked matcher call.

        The chart is encoded once; the cached (column-filtered) table
        representations of every candidate are zero-padded into a
        ``(B, NC_max, N2_max, K)`` batch and scored by a single
        :meth:`FCMModel.match_batch` forward.  Scores match
        :meth:`score_chart` to floating-point accuracy.

        Parameters
        ----------
        batch_size:
            Upper bound on candidates scored per stacked forward (bounds the
            padded batch memory); ``None`` scores all candidates in one call.
        """
        chart_input = self.prepare_query(chart)
        ids = list(table_ids) if table_ids is not None else self.indexed_table_ids
        if not ids:
            return {}
        scores: Dict[str, float] = {}
        chunk = len(ids) if not batch_size else max(1, int(batch_size))
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
            for start in range(0, len(ids), chunk):
                chunk_ids = ids[start : start + chunk]
                selected = [
                    self._select_columns(self.encoded_table(tid), chart_input.y_range)
                    for tid in chunk_ids
                ]
                batch, segment_mask, column_mask = pad_candidate_batch(selected)
                batch_scores = self.model.match_batch(
                    chart_repr, Tensor(batch), segment_mask, column_mask
                ).numpy()
                batch_scores = np.atleast_1d(batch_scores)
                for table_id, score in zip(chunk_ids, batch_scores):
                    scores[table_id] = float(score)
        return scores

    def rank(
        self,
        chart: LineChart,
        k: Optional[int] = None,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-``k`` (table_id, score) pairs for the query chart."""
        scores = self.score_chart_batch(chart, table_ids=table_ids)
        ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
        return ranked if k is None else ranked[:k]

    def top_k_ids(
        self,
        chart: LineChart,
        k: int,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[str]:
        return [table_id for table_id, _ in self.rank(chart, k=k, table_ids=table_ids)]


def build_scorer_for_repository(
    model: FCMModel,
    repository: DataRepository,
    extractor: Optional[VisualElementExtractor] = None,
) -> FCMScorer:
    """Create a scorer and pre-index the whole repository."""
    scorer = FCMScorer(model, extractor=extractor)
    scorer.index_repository(repository)
    return scorer
