"""Query-time scoring: rank a repository of tables for a line chart query.

The scorer wraps the trained FCM model with the pieces a deployment needs:

* the visual element extractor turning a query chart into lines + y range;
* a cache of dataset-encoder outputs so each table is encoded once and only
  the (cheap) cross-modal matcher runs per (query, table) pair;
* the y-tick column filter of Sec. IV-C, applied by *selecting* the cached
  column representations whose value range overlaps the query's y range.

Inference contract
------------------
All scoring entry points run under :meth:`repro.nn.Module.inference` — the
model is switched to eval mode and no autodiff graph is built (see the
inference-mode notes in :mod:`repro.nn.tensor`).  This is safe because query
scores are never differentiated; training goes through
:class:`~repro.fcm.training.FCMTrainer`, which calls the model directly.

Two scoring paths produce identical results:

* :meth:`FCMScorer.score_pair` / :meth:`FCMScorer.score_chart` — the per-pair
  reference path, one matcher forward per candidate table;
* :meth:`FCMScorer.score_chart_batch` — the batched path: the cached table
  representations of *all* candidates are stacked (zero-padded) along a new
  candidate axis and one matcher forward scores every candidate at once.
  Padded cells are excluded from every max/softmax/mean inside the matcher,
  so the scores match the per-pair path to floating-point accuracy.

:meth:`FCMScorer.rank` and the index layer use the batched path; the per-pair
path remains the ground truth the equivalence tests compare against.

Index builds are batched the same way: :meth:`FCMScorer.index_repository`
flattens the columns of a whole chunk of tables into one zero-padded stack
and runs the dataset-encoder transformer once per chunk (with a key-padding
attention mask), instead of once per table; :meth:`FCMScorer.index_table`
remains the per-table reference path producing identical cached encodings.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.repository import DataRepository
from ..data.table import Table
from ..nn import Tensor
from ..obs import get_registry, span
from ..vision.extractor import VisualElementExtractor
from .config import FCMConfig
from .fastpath import (
    CoarseCache,
    FusedMatchKernel,
    QuantizedPack,
    QuantizedTable,
    build_coarse_cache,
    build_quantized_pack,
    coarse_scores,
    pooled_vectors,
    quantize_table,
    quantized_scores,
)
from .model import FCMModel
from .preprocessing import (
    ChartInput,
    TableInput,
    prepare_chart_input,
    prepare_table_input,
)


def pad_candidate_batch(
    representations: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stack per-table ``(NC_i, N2_i, K)`` representations into one batch.

    Candidates are zero-padded to the largest column/segment counts in the
    batch.  Returns ``(batch, segment_mask, column_mask)`` where ``batch`` has
    shape ``(B, NC_max, N2_max, K)``, ``segment_mask`` is boolean
    ``(B, NC_max, N2_max)`` marking real segments and ``column_mask`` is
    boolean ``(B, NC_max)`` marking real columns.

    Example
    -------
    >>> batch, seg_mask, col_mask = pad_candidate_batch(
    ...     [np.ones((2, 3, 8)), np.ones((1, 2, 8))])
    >>> batch.shape, col_mask.tolist()
    ((2, 2, 3, 8), [[True, True], [True, False]])

    (For the differentiable training-path analogue over :class:`Tensor`
    inputs see :func:`repro.nn.pad_stack`.)
    """
    if not representations:
        raise ValueError("cannot build a batch from zero candidates")
    dim = representations[0].shape[-1]
    nc_max = max(rep.shape[0] for rep in representations)
    n2_max = max(rep.shape[1] for rep in representations)
    # The padded batch inherits the cached representations' dtype, so a
    # float32 model's scoring batches stay float32 end to end.
    batch = np.zeros(
        (len(representations), nc_max, n2_max, dim), dtype=representations[0].dtype
    )
    segment_mask = np.zeros((len(representations), nc_max, n2_max), dtype=bool)
    column_mask = np.zeros((len(representations), nc_max), dtype=bool)
    for i, rep in enumerate(representations):
        nc, n2, _ = rep.shape
        batch[i, :nc, :n2] = rep
        segment_mask[i, :nc, :n2] = True
        column_mask[i, :nc] = True
    return batch, segment_mask, column_mask


@dataclass
class EncodedTable:
    """Cached dataset-encoder output for one table."""

    table_id: str
    representations: np.ndarray  # (NC, N2, K)
    column_names: List[str]
    column_ranges: List[Tuple[float, float]]
    column_embeddings: np.ndarray  # (NC, K), mean over segments
    #: int8 symmetric-quantized copy of ``representations`` for the cheap
    #: pre-filter pass; ``None`` entries (e.g. tables restored from a snapshot
    #: without the q8 sidecar) are quantized lazily at pack-build time.
    quantized: Optional[QuantizedTable] = None


class FCMScorer:
    """Ranks candidate tables for line chart queries using a trained FCM."""

    #: Number of recently prepared query charts memoised by :meth:`prepare_query`.
    QUERY_CACHE_SIZE = 16

    #: Number of padded candidate batches memoised per scorer (keyed by the
    #: chunk's table-id tuple + the query's column-filter y-range); a stable
    #: repository re-pads nothing between queries.
    PAD_CACHE_SIZE = 8

    def __init__(
        self,
        model: FCMModel,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> None:
        self.model = model
        self.config: FCMConfig = model.config
        self.extractor = extractor or VisualElementExtractor()
        #: Score chunks through the fused inference kernels when the matcher
        #: supports them (see :mod:`repro.fcm.fastpath`); per-call override
        #: via ``score_encoded_batch(..., fused=...)``.
        self.fused = True
        self._encoded: Dict[str, EncodedTable] = {}
        self._kernel: Optional[FusedMatchKernel] = None
        self._pad_cache: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._quant_pack: Optional[QuantizedPack] = None
        self._coarse_cache: Optional[CoarseCache] = None
        # Stream (segment-granular) registry: a *stream* table is stored as
        # an ordered family of window-segment entries in ``_encoded`` (each
        # under a composite segment id) and scored through a composed
        # parent-level EncodedTable built by concatenating the per-window
        # representations.  ``_segments`` maps parent id -> ordered segment
        # ids, ``_segment_owner`` is the reverse map, ``_composed`` caches
        # the composed entries (invalidated per-parent when a segment of
        # that parent changes — never wholesale).
        self._segments: Dict[str, List[str]] = {}
        self._segment_owner: Dict[str, str] = {}
        self._composed: Dict[str, EncodedTable] = {}
        # Per-entry pooled coarse vectors for the quantized pack: keyed by
        # scorable/segment id and invalidated per-entry, so a dirty-segment
        # refresh re-pools only what changed instead of the whole index.
        self._pooled: Dict[str, np.ndarray] = {}
        # Maps chart *content hash* -> ChartInput (see LineChart.fingerprint):
        # equal charts share an entry even when they are distinct objects,
        # and a chart mutated in place hashes to a new key, so entries can
        # never go stale.  Preprocessing is model-independent, so entries
        # stay valid while the model trains.
        self._query_cache: "OrderedDict[str, ChartInput]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Table indexing
    # ------------------------------------------------------------------ #
    def _cache_encoding(
        self, table: Table, table_input: TableInput, representations: np.ndarray
    ) -> EncodedTable:
        encoded = EncodedTable(
            table_id=table.table_id,
            representations=representations,
            column_names=table_input.column_names,
            column_ranges=[table.column(n).value_range() for n in table_input.column_names],
            column_embeddings=representations.mean(axis=1),
            quantized=quantize_table(representations),
        )
        self._encoded[table.table_id] = encoded
        self._touch_entry(table.table_id)
        self._invalidate_candidates()
        return encoded

    def index_table(self, table: Table) -> EncodedTable:
        """Encode ``table`` once and cache the result.

        This is the per-table reference path; :meth:`index_repository` fills
        the same cache with chunked padded-batch encoder calls and is what
        bulk index builds use.
        """
        if table.table_id in self._encoded:
            return self._encoded[table.table_id]
        table_input = prepare_table_input(table, self.config)
        with self.model.inference():
            representations = self.model.encode_table(table_input).numpy()
        return self._cache_encoding(table, table_input, representations)

    #: Tables encoded per stacked dataset-encoder call during a bulk index
    #: build (bounds the zero-padded batch memory).
    INDEX_BATCH_SIZE = 32

    def index_repository(
        self,
        repository: Iterable[Table],
        batch_size: Optional[int] = None,
    ) -> None:
        """Encode every table in the repository (idempotent), in batches.

        Instead of one dataset-encoder transformer call per table, tables are
        chunked (``batch_size``, default :attr:`INDEX_BATCH_SIZE`; ``None``
        uses the default, ``0`` or negative disables chunking), their columns
        flattened into one stack, zero-padded along the segment axis to the
        chunk's largest ``N2`` and encoded by a *single* masked transformer
        forward per chunk (:meth:`FCMModel.encode_table_batch`).  The cached
        encodings match :meth:`index_table`'s to floating-point accuracy —
        padded key positions are excluded from every attention softmax.

        Example
        -------
        >>> scorer = FCMScorer(model)
        >>> scorer.index_repository(repository)          # chunked batch build
        >>> scorer.rank(chart, k=5)                      # uses the same cache
        """
        pending: List[Table] = []
        seen: set = set()
        for table in repository:
            if table.table_id in self._encoded or table.table_id in seen:
                continue
            seen.add(table.table_id)
            pending.append(table)
        if not pending:
            return
        if batch_size is None:
            batch_size = self.INDEX_BATCH_SIZE
        chunk = len(pending) if batch_size <= 0 else max(1, int(batch_size))
        for start in range(0, len(pending), chunk):
            chunk_tables = pending[start : start + chunk]
            inputs = [prepare_table_input(table, self.config) for table in chunk_tables]
            with self.model.inference():
                representations = self.model.encode_table_batch(inputs)
            for table, table_input, rep in zip(chunk_tables, inputs, representations):
                # Copy: the split tensors are views into the chunk's padded
                # batch; caching views would pin the whole batch in memory.
                self._cache_encoding(table, table_input, rep.numpy().copy())

    def add_encoded(self, encoded: EncodedTable) -> None:
        """Insert a precomputed :class:`EncodedTable` into the cache.

        This is how the serving layer merges shard-worker outputs and
        restores snapshots without re-running the dataset encoder; the entry
        is indistinguishable from one produced by :meth:`index_table`.  The
        arrays may be read-only views — e.g. zero-copy slices of a
        memory-mapped v2 snapshot (:mod:`repro.serving.persistence`); every
        scoring path only reads them (candidate gathers copy via fancy
        indexing), so mapped entries behave exactly like heap copies.
        """
        self._encoded[encoded.table_id] = encoded
        self._touch_entry(encoded.table_id)
        self._invalidate_candidates()

    def evict_table(self, table_id: str) -> bool:
        """Drop the cached encoding of ``table_id`` (incremental removal)."""
        removed = self._encoded.pop(table_id, None) is not None
        if removed:
            self._touch_entry(table_id)
            self._invalidate_candidates()
        return removed

    def _invalidate_candidates(self) -> None:
        """The table set changed: padded batches and the quantized pack built
        from the previous set can no longer be reused.  Per-entry state
        (pooled coarse vectors, composed stream entries) is invalidated at
        finer grain by :meth:`_touch_entry` — a dirty segment only discards
        its own and its parent's derived state."""
        self._pad_cache.clear()
        self._quant_pack = None
        self._coarse_cache = None

    def _touch_entry(self, table_id: str) -> None:
        """Per-entry invalidation: ``table_id``'s content changed (or it was
        evicted), so its pooled coarse vectors — and, for a stream segment,
        the owning parent's composed entry and pooled vectors — are stale."""
        self._pooled.pop(table_id, None)
        owner = self._segment_owner.get(table_id)
        if owner is not None:
            self._composed.pop(owner, None)
            self._pooled.pop(owner, None)

    # ------------------------------------------------------------------ #
    # Streams: segment families composed into parent-level entries
    # ------------------------------------------------------------------ #
    def bind_stream(self, parent_id: str, segment_ids: Sequence[str]) -> None:
        """Register (or replace) the ordered segment family of a stream.

        Every segment id must already be encoded (``_encoded``); the parent
        becomes scorable through the composed entry returned by
        :meth:`encoded_table`.  Rebinding after an append drops only the
        parent's composed/pooled state — sealed segments keep theirs.
        """
        segment_ids = list(segment_ids)
        if not segment_ids:
            raise ValueError(f"stream {parent_id!r} needs at least one segment")
        missing = [s for s in segment_ids if s not in self._encoded]
        if missing:
            raise KeyError(
                f"stream {parent_id!r} references unencoded segment(s) {missing}"
            )
        for stale in self._segments.get(parent_id, ()):  # rebind: drop old owners
            self._segment_owner.pop(stale, None)
        self._segments[parent_id] = segment_ids
        for segment_id in segment_ids:
            self._segment_owner[segment_id] = parent_id
        self._composed.pop(parent_id, None)
        self._pooled.pop(parent_id, None)
        self._invalidate_candidates()

    def drop_stream(self, parent_id: str) -> List[str]:
        """Forget a stream's registry entry; returns its segment ids.

        The segment encodings themselves are *not* evicted here — callers
        evict them individually (they may be mid-replacement).
        """
        segment_ids = self._segments.pop(parent_id, [])
        for segment_id in segment_ids:
            self._segment_owner.pop(segment_id, None)
        self._composed.pop(parent_id, None)
        self._pooled.pop(parent_id, None)
        if segment_ids:
            self._invalidate_candidates()
        return list(segment_ids)

    def is_stream(self, table_id: str) -> bool:
        return table_id in self._segments

    def segment_owner(self, table_id: str) -> Optional[str]:
        """The stream parent owning segment ``table_id`` (``None`` otherwise)."""
        return self._segment_owner.get(table_id)

    def stream_segment_ids(self, parent_id: str) -> List[str]:
        return list(self._segments.get(parent_id, ()))

    def _compose_stream(self, parent_id: str) -> EncodedTable:
        """The parent-level entry of a stream: per-window representations
        concatenated along the segment axis, ranges merged element-wise.

        Deterministic in the segment contents alone, so an incrementally
        grown stream composes bit-identically to a from-scratch rebuild
        over the same rows (the streaming-parity property).
        """
        cached = self._composed.get(parent_id)
        if cached is not None:
            return cached
        parts = [self._encoded[s] for s in self._segments[parent_id]]
        names = list(parts[0].column_names)
        for part in parts[1:]:
            if list(part.column_names) != names:
                raise ValueError(
                    f"stream {parent_id!r} has segments with mismatched "
                    f"columns: {names} vs {list(part.column_names)}"
                )
        representations = np.concatenate(
            [part.representations for part in parts], axis=1
        )
        ranges: List[Tuple[float, float]] = []
        for column in range(len(names)):
            lows_highs = [part.column_ranges[column] for part in parts]
            ranges.append(
                (
                    min(float(pair[0]) for pair in lows_highs),
                    max(float(pair[1]) for pair in lows_highs),
                )
            )
        composed = EncodedTable(
            table_id=parent_id,
            representations=representations,
            column_names=names,
            column_ranges=ranges,
            column_embeddings=representations.mean(axis=1),
            quantized=quantize_table(representations),
        )
        self._composed[parent_id] = composed
        return composed

    @property
    def indexed_table_ids(self) -> List[str]:
        """The scorable ids: plain tables plus stream parents.

        Stream *segment* ids are internal — they never appear here; the
        parent id (scored through its composed entry) does.
        """
        if not self._segments:
            return list(self._encoded.keys())
        ids = [t for t in self._encoded if t not in self._segment_owner]
        ids.extend(self._segments.keys())
        return ids

    def cache_nbytes(self) -> int:
        """Total bytes of the cached encoding arrays (reps + column embeddings).

        Counts array payloads only (not Python-object overhead).  Note that
        for memory-mapped entries this is the *mapped* size, not resident
        memory: untouched pages cost address space, no RAM — which is the
        point of ``ServingConfig(mmap_index=True)``.
        """
        return sum(
            int(e.representations.nbytes) + int(e.column_embeddings.nbytes)
            for e in self._encoded.values()
        ) + sum(
            int(e.representations.nbytes) + int(e.column_embeddings.nbytes)
            for e in self._composed.values()
        )

    def encoded_table(self, table_id: str) -> EncodedTable:
        """The cached entry for ``table_id`` — composed for stream parents.

        Plain tables and stream *segments* come straight from the cache; a
        stream parent id returns the composed (concatenated) entry, built
        lazily and cached until one of its segments changes.
        """
        if table_id in self._segments:
            return self._compose_stream(table_id)
        if table_id not in self._encoded:
            raise KeyError(f"table {table_id!r} has not been indexed")
        return self._encoded[table_id]

    # ------------------------------------------------------------------ #
    # Query processing
    # ------------------------------------------------------------------ #
    def clear_query_cache(self) -> None:
        """Drop all memoised query preparations (see :meth:`prepare_query`)."""
        self._query_cache.clear()

    def prepare_query(self, chart: LineChart) -> ChartInput:
        """Extract visual elements and build the chart encoder input.

        Results are memoised per chart *content* (small LRU keyed by
        :meth:`LineChart.fingerprint <repro.charts.rasterizer.LineChart.fingerprint>`):
        a single query is prepared once even when it is scored under several
        index strategies, against several candidate batches, or arrives as a
        *different object with equal pixels* (the same table rendered twice).
        Mutating a chart in place simply hashes to a new key — no stale
        entry can be returned.
        """
        key = chart.fingerprint()
        hit = self._query_cache.get(key)
        if hit is not None:
            self._query_cache.move_to_end(key)
            return hit
        with span("prepare_query"):
            elements = self.extractor.extract(chart)
            chart_input = prepare_chart_input(chart, elements, self.config)
        self._query_cache[key] = chart_input
        while len(self._query_cache) > self.QUERY_CACHE_SIZE:
            self._query_cache.popitem(last=False)
        return chart_input

    def query_line_embeddings(self, chart: LineChart) -> np.ndarray:
        """Line-level embeddings of a query chart (for the LSH index)."""
        chart_input = self.prepare_query(chart)
        with self.model.inference():
            return self.model.line_embeddings(chart_input)

    def _select_columns(
        self, encoded: EncodedTable, y_range: Tuple[float, float]
    ) -> np.ndarray:
        """Apply the y-tick column filter to a cached table encoding."""
        low, high = y_range
        tolerance = self.config.column_filter_tolerance
        pad = tolerance * max(abs(low), abs(high), 1.0)
        keep = [
            idx
            for idx, (c_low, c_high) in enumerate(encoded.column_ranges)
            if c_high >= low - pad and c_low <= high + pad
        ]
        if not keep:
            keep = list(range(len(encoded.column_ranges)))
        return encoded.representations[keep]

    def score_pair(self, chart_input: ChartInput, encoded: EncodedTable) -> float:
        """Relevance of one query against one cached table."""
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
            table_repr = Tensor(
                self._select_columns(encoded, chart_input.y_range),
                dtype=self.config.numeric_dtype,
            )
            return float(self.model.match(chart_repr, table_repr).item())

    def score_chart(
        self,
        chart: LineChart,
        table_ids: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Relevance against the indexed tables, one matcher call per table.

        This is the per-pair reference path; :meth:`score_chart_batch` returns
        the same scores with one stacked matcher call and is what the ranking
        and index layers use.
        """
        chart_input = self.prepare_query(chart)
        ids = list(table_ids) if table_ids is not None else self.indexed_table_ids
        scores: Dict[str, float] = {}
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
            for table_id in ids:
                encoded = self.encoded_table(table_id)
                table_repr = Tensor(
                    self._select_columns(encoded, chart_input.y_range),
                    dtype=self.config.numeric_dtype,
                )
                scores[table_id] = float(self.model.match(chart_repr, table_repr).item())
        return scores

    def score_chart_batch(
        self,
        chart: LineChart,
        table_ids: Optional[Sequence[str]] = None,
        batch_size: Optional[int] = 256,
        fused: Optional[bool] = None,
    ) -> Dict[str, float]:
        """Relevance against the indexed tables via one stacked matcher call.

        The chart is encoded once; the cached (column-filtered) table
        representations of every candidate are zero-padded into a
        ``(B, NC_max, N2_max, K)`` batch and scored by a single
        :meth:`FCMModel.match_batch` forward.  Scores match
        :meth:`score_chart` to floating-point accuracy.

        Parameters
        ----------
        batch_size:
            Upper bound on candidates scored per stacked forward (bounds the
            padded batch memory); ``None`` scores all candidates in one call.

        Example
        -------
        >>> scorer.index_repository(repository)
        >>> scores = scorer.score_chart_batch(chart)       # {table_id: score}
        >>> reference = scorer.score_chart(chart)          # per-pair path
        >>> max(abs(scores[t] - reference[t]) for t in scores) < 1e-8
        True
        """
        chart_input = self.prepare_query(chart)
        ids = list(table_ids) if table_ids is not None else self.indexed_table_ids
        return self.score_encoded_batch(
            chart_input, ids, batch_size=batch_size, fused=fused
        )

    def _fused_kernel(self) -> Optional[FusedMatchKernel]:
        """The per-scorer fused kernel, or ``None`` for unsupported matchers."""
        if self._kernel is None:
            self._kernel = FusedMatchKernel(self.model.matcher)
        return self._kernel if self._kernel.supported else None

    def _padded_batch(
        self, chunk_ids: Sequence[str], y_range: Tuple[float, float]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Column-filter + zero-pad one candidate chunk, memoised.

        Keyed by the chunk's table ids and the query's y-range (the column
        filter depends on both); any table add/evict clears the whole cache.
        Hits and misses are counted in the metrics registry under
        ``repro_pad_cache_total``.
        """
        key = (tuple(chunk_ids), (float(y_range[0]), float(y_range[1])))
        cached = self._pad_cache.get(key)
        counter = get_registry().counter(
            "repro_pad_cache_total", "padded candidate-batch cache lookups"
        )
        if cached is not None:
            self._pad_cache.move_to_end(key)
            counter.inc(result="hit")
            return cached
        counter.inc(result="miss")
        selected = [
            self._select_columns(self.encoded_table(tid), y_range)
            for tid in chunk_ids
        ]
        padded = pad_candidate_batch(selected)
        self._pad_cache[key] = padded
        while len(self._pad_cache) > self.PAD_CACHE_SIZE:
            self._pad_cache.popitem(last=False)
        return padded

    def score_encoded_batch(
        self,
        chart_input: ChartInput,
        table_ids: Sequence[str],
        batch_size: Optional[int] = 256,
        fused: Optional[bool] = None,
    ) -> Dict[str, float]:
        """Score a *prepared* query against a shard of cached table encodings.

        The shard-local entry point of the process-parallel query engine
        (:mod:`repro.serving.workers`): the parent process extracts visual
        elements and preprocesses the chart **once** (:meth:`prepare_query`),
        then ships the resulting :class:`~repro.fcm.preprocessing.ChartInput`
        to each worker together with that worker's shard of candidate table
        ids.  Because the chart input, the cached encodings and the model
        weights are all identical to the parent's, the scores are identical
        to the single-process :meth:`score_chart_batch` path.

        Every listed table id must already be in the encoding cache
        (:meth:`index_repository` / :meth:`add_encoded`); unknown ids raise
        ``KeyError``.  ``batch_size`` bounds candidates per stacked matcher
        forward exactly as in :meth:`score_chart_batch`.

        ``fused`` selects the graph-free fused kernels
        (:class:`~repro.fcm.fastpath.FusedMatchKernel`); ``None`` follows the
        scorer-wide :attr:`fused` flag.  Fused and graphed scores are
        identical (bitwise in float64; rounding noise in float32) — the flag
        exists as an operational fallback, not a quality trade-off.
        """
        ids = list(table_ids)
        if not ids:
            return {}
        use_fused = self.fused if fused is None else bool(fused)
        kernel = self._fused_kernel() if use_fused else None
        scores: Dict[str, float] = {}
        chunk = len(ids) if not batch_size else max(1, int(batch_size))
        with self.model.inference():
            with span("encode_chart"):
                chart_repr = self.model.encode_chart(chart_input)
            if kernel is not None:
                chart_data = np.ascontiguousarray(chart_repr.numpy())
                with span("verify_fused", tables=len(ids)):
                    for start in range(0, len(ids), chunk):
                        chunk_ids = ids[start : start + chunk]
                        batch, segment_mask, column_mask = self._padded_batch(
                            chunk_ids, chart_input.y_range
                        )
                        batch_scores = np.atleast_1d(
                            kernel.score_batch(
                                chart_data, batch, segment_mask, column_mask
                            )
                        )
                        for table_id, score in zip(chunk_ids, batch_scores):
                            scores[table_id] = float(score)
                return scores
            for start in range(0, len(ids), chunk):
                chunk_ids = ids[start : start + chunk]
                batch, segment_mask, column_mask = self._padded_batch(
                    chunk_ids, chart_input.y_range
                )
                batch_scores = self.model.match_batch(
                    chart_repr,
                    Tensor(batch, dtype=self.config.numeric_dtype),
                    segment_mask,
                    column_mask,
                ).numpy()
                batch_scores = np.atleast_1d(batch_scores)
                for table_id, score in zip(chunk_ids, batch_scores):
                    scores[table_id] = float(score)
        return scores

    # ------------------------------------------------------------------ #
    # Quantized pre-filter
    # ------------------------------------------------------------------ #
    def quantized_pack(self) -> QuantizedPack:
        """The packed int8 copy of every cached encoding, built lazily.

        Tables whose :attr:`EncodedTable.quantized` is ``None`` (snapshots
        predating the q8 sidecar, worker sync payloads from older peers) are
        quantized here from their float representations.  The pack covers
        every scorable id (plain tables + composed stream parents) **and**
        every stream segment id, so the coarse pass serves both query
        pre-filtering (parents) and subscription notification on dirty
        windows (segments).  The padded pack arrays are rebuilt whenever
        the table set changes, but the per-entry pooled vectors are cached
        and only recomputed for entries whose content changed — the
        dirty-segment refresh: a tail-window append re-pools one segment
        and its parent, not the whole index.
        """
        if self._quant_pack is None:
            ids = list(self._encoded.keys())
            ids.extend(self._segments.keys())
            items = []
            pooled: List[np.ndarray] = []
            for table_id in ids:
                encoded = self.encoded_table(table_id)
                quantized = encoded.quantized
                if quantized is None:
                    quantized = quantize_table(encoded.representations)
                    encoded.quantized = quantized
                vectors = self._pooled.get(table_id)
                if vectors is None:
                    vectors = pooled_vectors(quantized)
                    self._pooled[table_id] = vectors
                items.append((table_id, quantized))
                pooled.append(vectors)
            self._quant_pack = build_quantized_pack(items, pooled=pooled)
        return self._quant_pack

    def prefilter_ids(
        self,
        chart_input: ChartInput,
        table_ids: Sequence[str],
        keep: int,
    ) -> List[str]:
        """Rank ``table_ids`` by the coarse int8 score and keep the best.

        The coarse score runs the real matcher (fused when supported, the
        graphed batched path otherwise) on the segment-pooled quantized pack
        — see :func:`repro.fcm.fastpath.quantized_scores`.  Returns up to
        ``keep`` table ids (lexicographically sorted, like the candidate
        sets the verify stage consumes); ties break on table id so the cut
        is deterministic.  When ``keep`` covers the whole candidate set this
        is the identity.
        """
        ids = list(table_ids)
        if keep >= len(ids):
            return ids
        with self.model.inference():
            chart_repr = self.model.encode_chart(chart_input)
        chart_data = np.ascontiguousarray(chart_repr.numpy())
        kernel = self._fused_kernel()
        if kernel is not None:
            # The coarse pass only ranks for the overscan cut, so it runs at
            # PREFILTER_DTYPE (float32) with native-dtype accumulation even
            # under a float64 session — the exact re-score of the survivors
            # restores full precision.  The table side (dequantize + key/
            # value projections) is query-independent and served from a
            # per-pack cache, so each query pays only the chart-side
            # projections and the attention/head chain.
            pack = self.quantized_pack()
            if self._coarse_cache is None:
                self._coarse_cache = build_coarse_cache(kernel, pack)
            scores = coarse_scores(
                kernel, pack, self._coarse_cache, chart_data, ids
            )
        else:

            def score_fn(chart, batch, segment_mask, column_mask):
                with self.model.inference():
                    return self.model.match_batch(
                        chart_repr,
                        Tensor(batch, dtype=self.config.numeric_dtype),
                        segment_mask,
                        column_mask,
                    ).numpy()

            scores = quantized_scores(
                self.quantized_pack(), chart_data, ids, score_fn
            )
        # Descending score, ties broken on table id, so the cut is
        # deterministic.  Partitioning first restricts the id-aware sort to
        # the survivors plus their boundary ties instead of every candidate.
        keep = max(int(keep), 0)
        if keep == 0:
            return []
        ids_arr = np.asarray(ids)
        neg = -scores
        threshold = np.partition(neg, keep - 1)[keep - 1]
        surviving = np.flatnonzero(neg <= threshold)
        order = np.lexsort((ids_arr[surviving], neg[surviving]))
        return sorted(ids_arr[surviving[order[:keep]]].tolist())

    def rank(
        self,
        chart: LineChart,
        k: Optional[int] = None,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-``k`` (table_id, score) pairs for the query chart."""
        scores = self.score_chart_batch(chart, table_ids=table_ids)
        ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
        return ranked if k is None else ranked[:k]

    def top_k_ids(
        self,
        chart: LineChart,
        k: int,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[str]:
        return [table_id for table_id, _ in self.rank(chart, k=k, table_ids=table_ids)]


def build_scorer_for_repository(
    model: FCMModel,
    repository: DataRepository,
    extractor: Optional[VisualElementExtractor] = None,
) -> FCMScorer:
    """Create a scorer and pre-index the whole repository."""
    scorer = FCMScorer(model, extractor=extractor)
    scorer.index_repository(repository)
    return scorer
