"""Query-time scoring: rank a repository of tables for a line chart query.

The scorer wraps the trained FCM model with the pieces a deployment needs:

* the visual element extractor turning a query chart into lines + y range;
* a cache of dataset-encoder outputs so each table is encoded once and only
  the (cheap) cross-modal matcher runs per (query, table) pair;
* the y-tick column filter of Sec. IV-C, applied by *selecting* the cached
  column representations whose value range overlaps the query's y range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.repository import DataRepository
from ..data.table import Table
from ..nn import Tensor
from ..vision.extractor import VisualElementExtractor
from .config import FCMConfig
from .model import FCMModel
from .preprocessing import ChartInput, prepare_chart_input, prepare_table_input


@dataclass
class EncodedTable:
    """Cached dataset-encoder output for one table."""

    table_id: str
    representations: np.ndarray  # (NC, N2, K)
    column_names: List[str]
    column_ranges: List[Tuple[float, float]]
    column_embeddings: np.ndarray  # (NC, K), mean over segments


class FCMScorer:
    """Ranks candidate tables for line chart queries using a trained FCM."""

    def __init__(
        self,
        model: FCMModel,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> None:
        self.model = model
        self.config: FCMConfig = model.config
        self.extractor = extractor or VisualElementExtractor()
        self._encoded: Dict[str, EncodedTable] = {}

    # ------------------------------------------------------------------ #
    # Table indexing
    # ------------------------------------------------------------------ #
    def index_table(self, table: Table) -> EncodedTable:
        """Encode ``table`` once and cache the result."""
        if table.table_id in self._encoded:
            return self._encoded[table.table_id]
        self.model.eval()
        table_input = prepare_table_input(table, self.config)
        representations = self.model.encode_table(table_input).numpy()
        encoded = EncodedTable(
            table_id=table.table_id,
            representations=representations,
            column_names=table_input.column_names,
            column_ranges=[table.column(n).value_range() for n in table_input.column_names],
            column_embeddings=representations.mean(axis=1),
        )
        self._encoded[table.table_id] = encoded
        return encoded

    def index_repository(self, repository: Iterable[Table]) -> None:
        """Encode every table in the repository (idempotent)."""
        for table in repository:
            self.index_table(table)

    @property
    def indexed_table_ids(self) -> List[str]:
        return list(self._encoded.keys())

    def encoded_table(self, table_id: str) -> EncodedTable:
        if table_id not in self._encoded:
            raise KeyError(f"table {table_id!r} has not been indexed")
        return self._encoded[table_id]

    # ------------------------------------------------------------------ #
    # Query processing
    # ------------------------------------------------------------------ #
    def prepare_query(self, chart: LineChart) -> ChartInput:
        """Extract visual elements and build the chart encoder input."""
        elements = self.extractor.extract(chart)
        return prepare_chart_input(chart, elements, self.config)

    def query_line_embeddings(self, chart: LineChart) -> np.ndarray:
        """Line-level embeddings of a query chart (for the LSH index)."""
        chart_input = self.prepare_query(chart)
        return self.model.line_embeddings(chart_input)

    def _select_columns(
        self, encoded: EncodedTable, y_range: Tuple[float, float]
    ) -> np.ndarray:
        """Apply the y-tick column filter to a cached table encoding."""
        low, high = y_range
        tolerance = self.config.column_filter_tolerance
        pad = tolerance * max(abs(low), abs(high), 1.0)
        keep = [
            idx
            for idx, (c_low, c_high) in enumerate(encoded.column_ranges)
            if c_high >= low - pad and c_low <= high + pad
        ]
        if not keep:
            keep = list(range(len(encoded.column_ranges)))
        return encoded.representations[keep]

    def score_pair(self, chart_input: ChartInput, encoded: EncodedTable) -> float:
        """Relevance of one query against one cached table."""
        self.model.eval()
        chart_repr = self.model.encode_chart(chart_input)
        table_repr = Tensor(self._select_columns(encoded, chart_input.y_range))
        return float(self.model.match(chart_repr, table_repr).item())

    def score_chart(
        self,
        chart: LineChart,
        table_ids: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Relevance of ``chart`` against the (subset of the) indexed tables."""
        chart_input = self.prepare_query(chart)
        chart_repr = self.model.encode_chart(chart_input)
        ids = list(table_ids) if table_ids is not None else self.indexed_table_ids
        scores: Dict[str, float] = {}
        for table_id in ids:
            encoded = self.encoded_table(table_id)
            table_repr = Tensor(self._select_columns(encoded, chart_input.y_range))
            scores[table_id] = float(self.model.match(chart_repr, table_repr).item())
        return scores

    def rank(
        self,
        chart: LineChart,
        k: Optional[int] = None,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, float]]:
        """Top-``k`` (table_id, score) pairs for the query chart."""
        scores = self.score_chart(chart, table_ids=table_ids)
        ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
        return ranked if k is None else ranked[:k]

    def top_k_ids(
        self,
        chart: LineChart,
        k: int,
        table_ids: Optional[Sequence[str]] = None,
    ) -> List[str]:
        return [table_id for table_id, _ in self.rank(chart, k=k, table_ids=table_ids)]


def build_scorer_for_repository(
    model: FCMModel,
    repository: DataRepository,
    extractor: Optional[VisualElementExtractor] = None,
) -> FCMScorer:
    """Create a scorer and pre-index the whole repository."""
    scorer = FCMScorer(model, extractor=extractor)
    scorer.index_repository(repository)
    return scorer
