"""Segment-level dataset encoder (Sec. IV-C, extended by Sec. V).

Each surviving column of the candidate table is partitioned into ``N2``
segments of ``P2`` data points.  Each segment is mapped to a ``K``-dimensional
embedding — either by a plain trainable linear projection (base FCM) or by
the data-aggregation pipeline (transformation layers → HMRL → MoE) when the
DA extension is enabled — and then contextualised by a transformer encoder.
The output for a table with ``NC`` surviving columns is
``E_T ∈ R^{NC×N2×K}``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import FCMConfig
from .da_layers import DataAggregationEncoder


class SegmentDatasetEncoder(Module):
    """Transformer encoder over per-column data segments."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.segment_projection = Linear(
            config.data_segment_size, config.embed_dim, rng=rng
        )
        self.da_encoder: Optional[DataAggregationEncoder]
        if config.enable_da_layers:
            self.da_encoder = DataAggregationEncoder(config, rng)
        else:
            self.da_encoder = None
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            max_positions=config.max_data_segments,
            rng=rng,
        )

    def embed_segments(self, segments: np.ndarray) -> Tensor:
        """Per-segment embeddings before the transformer, shape ``(..., K)``."""
        if self.da_encoder is not None:
            return self.da_encoder(segments)
        return self.segment_projection(Tensor(np.asarray(segments, dtype=np.float64)))

    def encode_column(self, segments: np.ndarray) -> Tensor:
        """Encode one column's ``(N2, P2)`` segments into ``(N2, K)``."""
        segments = np.asarray(segments, dtype=np.float64)
        if segments.ndim != 2:
            raise ValueError(
                f"expected (N2, P2) column segments, got shape {segments.shape}"
            )
        embedded = self.embed_segments(segments)
        return self.encoder(embedded)

    def forward(self, table_segments: np.ndarray) -> Tensor:
        """Encode a whole table.

        Parameters
        ----------
        table_segments:
            Array of shape ``(NC, N2, P2)`` from
            :func:`repro.fcm.preprocessing.prepare_table_input`.

        Returns
        -------
        Tensor
            ``E_T`` of shape ``(NC, N2, K)``.
        """
        segments = np.asarray(table_segments, dtype=np.float64)
        if segments.ndim != 3:
            raise ValueError(
                f"expected (NC, N2, P2) table segments, got shape {segments.shape}"
            )
        if segments.shape[0] == 0:
            raise ValueError("cannot encode a table with zero surviving columns")
        # All columns are encoded in one batched transformer call: the leading
        # axis is treated as a batch dimension, so segments of one column only
        # attend to segments of the same column (Sec. IV-C) while the
        # Python-level op count stays independent of NC.
        embedded = self.embed_segments(segments)
        return self.encoder(embedded)

    # ------------------------------------------------------------------ #
    # Query-time helpers
    # ------------------------------------------------------------------ #
    def column_embeddings(self, table_segments: np.ndarray) -> np.ndarray:
        """Mean-pooled column embeddings, shape ``(NC, K)``.

        Used by the LSH index (Sec. VI-A): each column is represented by the
        average of its segment embeddings.  Computed without gradients.
        """
        encoded = self.forward(table_segments)
        return encoded.numpy().mean(axis=1)

    def moe_gate_weights(self, segments: np.ndarray) -> Optional[np.ndarray]:
        """MoE gate weights for one column (None when DA layers are off)."""
        if self.da_encoder is None:
            return None
        _, gates = self.da_encoder(segments, return_gates=True)
        return gates.numpy()
