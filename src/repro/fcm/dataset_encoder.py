"""Segment-level dataset encoder (Sec. IV-C, extended by Sec. V).

Each surviving column of the candidate table is partitioned into ``N2``
segments of ``P2`` data points.  Each segment is mapped to a ``K``-dimensional
embedding — either by a plain trainable linear projection (base FCM) or by
the data-aggregation pipeline (transformation layers → HMRL → MoE) when the
DA extension is enabled — and then contextualised by a transformer encoder.
The output for a table with ``NC`` surviving columns is
``E_T ∈ R^{NC×N2×K}``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import FCMConfig
from .da_layers import DataAggregationEncoder


class SegmentDatasetEncoder(Module):
    """Transformer encoder over per-column data segments."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.segment_projection = Linear(
            config.data_segment_size, config.embed_dim, rng=rng
        )
        self.da_encoder: Optional[DataAggregationEncoder]
        if config.enable_da_layers:
            self.da_encoder = DataAggregationEncoder(config, rng)
        else:
            self.da_encoder = None
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            mlp_ratio=config.mlp_ratio,
            dropout=config.dropout,
            max_positions=config.max_data_segments,
            rng=rng,
        )

    def embed_segments(self, segments: np.ndarray) -> Tensor:
        """Per-segment embeddings before the transformer, shape ``(..., K)``."""
        if self.da_encoder is not None:
            return self.da_encoder(segments)
        # The explicit Tensor dtype pins the model's precision even when the
        # ambient policy differs (per-model dtype support).
        return self.segment_projection(
            Tensor(
                np.asarray(segments, dtype=self.config.numeric_dtype),
                dtype=self.config.numeric_dtype,
            )
        )

    def encode_column(self, segments: np.ndarray) -> Tensor:
        """Encode one column's ``(N2, P2)`` segments into ``(N2, K)``."""
        segments = np.asarray(segments, dtype=self.config.numeric_dtype)
        if segments.ndim != 2:
            raise ValueError(
                f"expected (N2, P2) column segments, got shape {segments.shape}"
            )
        embedded = self.embed_segments(segments)
        return self.encoder(embedded)

    def forward(self, table_segments: np.ndarray) -> Tensor:
        """Encode a whole table.

        Parameters
        ----------
        table_segments:
            Array of shape ``(NC, N2, P2)`` from
            :func:`repro.fcm.preprocessing.prepare_table_input`.

        Returns
        -------
        Tensor
            ``E_T`` of shape ``(NC, N2, K)``.
        """
        segments = np.asarray(table_segments, dtype=self.config.numeric_dtype)
        if segments.ndim != 3:
            raise ValueError(
                f"expected (NC, N2, P2) table segments, got shape {segments.shape}"
            )
        if segments.shape[0] == 0:
            raise ValueError("cannot encode a table with zero surviving columns")
        # All columns are encoded in one batched transformer call: the leading
        # axis is treated as a batch dimension, so segments of one column only
        # attend to segments of the same column (Sec. IV-C) while the
        # Python-level op count stays independent of NC.
        embedded = self.embed_segments(segments)
        return self.encoder(embedded)

    def forward_padded(self, segments: np.ndarray, segment_mask: np.ndarray) -> Tensor:
        """Encode zero-padded column segments with a key-padding mask.

        Parameters
        ----------
        segments:
            Array of shape ``(B, N2_max, P2)``: one row per column (possibly
            drawn from *different* tables), zero-padded along the segment
            axis to a common ``N2_max``.
        segment_mask:
            Boolean ``(B, N2_max)``; True marks real segments.

        Returns
        -------
        Tensor
            ``(B, N2_max, K)``.  Padded key positions are excluded from every
            self-attention softmax, so the real rows equal what :meth:`forward`
            would produce on each column's unpadded segments; outputs at
            padded positions are meaningless and must be sliced away by the
            caller.
        """
        segments = np.asarray(segments, dtype=self.config.numeric_dtype)
        valid = np.asarray(segment_mask, dtype=bool)
        if segments.ndim != 3 or valid.shape != segments.shape[:2]:
            raise ValueError(
                f"expected (B, N2, P2) segments with a (B, N2) mask, got "
                f"{segments.shape} / {valid.shape}"
            )
        embedded = self.embed_segments(segments)
        # (B, 1, 1, N2): broadcast over heads and query positions inside the
        # multi-head attention blocks.  Skipped entirely when nothing is
        # padded so the unpadded fast path stays bit-identical to forward().
        attention_mask = None if valid.all() else valid[:, None, None, :]
        return self.encoder(embedded, mask=attention_mask)

    def forward_many(self, tables_segments: Sequence[np.ndarray]) -> List[Tensor]:
        """Encode several tables in one padded transformer call.

        The ``(NC_i, N2_i, P2)`` segment blocks of every table are flattened
        along the column axis (columns only ever attend within themselves, so
        no cross-table attention can occur), zero-padded along the segment
        axis to the largest ``N2`` in the batch and encoded by a *single*
        :meth:`forward_padded` call.  The result is split back into per-table
        ``(NC_i, N2_i, K)`` tensors that match :meth:`forward` on each table
        alone to floating-point accuracy.  Differentiable: each split is a
        sliced view into the shared graph node, so the batched training path
        reuses this to encode every distinct table of a minibatch once.

        Example
        -------
        >>> reprs = encoder.forward_many([input_a.segments, input_b.segments])
        >>> [r.shape for r in reprs]   # [(NC_a, N2_a, K), (NC_b, N2_b, K)]
        """
        arrays = [
            np.asarray(block, dtype=self.config.numeric_dtype)
            for block in tables_segments
        ]
        if not arrays:
            raise ValueError("forward_many needs at least one table")
        p2 = self.config.data_segment_size
        for block in arrays:
            if block.ndim != 3 or block.shape[2] != p2:
                raise ValueError(
                    f"expected (NC, N2, {p2}) table segments, got shape {block.shape}"
                )
            if block.shape[0] == 0:
                raise ValueError("cannot encode a table with zero surviving columns")
        total_columns = sum(block.shape[0] for block in arrays)
        n2_max = max(block.shape[1] for block in arrays)
        flat = np.zeros((total_columns, n2_max, p2), dtype=self.config.numeric_dtype)
        mask = np.zeros((total_columns, n2_max), dtype=bool)
        offset = 0
        for block in arrays:
            nc, n2, _ = block.shape
            flat[offset : offset + nc, :n2] = block
            mask[offset : offset + nc, :n2] = True
            offset += nc
        encoded = self.forward_padded(flat, mask)
        outputs: List[Tensor] = []
        offset = 0
        for block in arrays:
            nc, n2, _ = block.shape
            outputs.append(encoded[offset : offset + nc, :n2])
            offset += nc
        return outputs

    # ------------------------------------------------------------------ #
    # Query-time helpers
    # ------------------------------------------------------------------ #
    def column_embeddings(self, table_segments: np.ndarray) -> np.ndarray:
        """Mean-pooled column embeddings, shape ``(NC, K)``.

        Used by the LSH index (Sec. VI-A): each column is represented by the
        average of its segment embeddings.  Computed without gradients.
        """
        encoded = self.forward(table_segments)
        return encoded.numpy().mean(axis=1)

    def moe_gate_weights(self, segments: np.ndarray) -> Optional[np.ndarray]:
        """MoE gate weights for one column (None when DA layers are off)."""
        if self.da_encoder is None:
            return None
        _, gates = self.da_encoder(segments, return_gates=True)
        return gates.numpy()
