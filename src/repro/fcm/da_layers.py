"""Data-aggregation layers of the extended FCM (Sec. V).

Three layers are added to the dataset encoder so that charts rendered from
*aggregated* data can still be matched against the original tables:

* :class:`TransformationLayer` — one two-layer MLP per aggregation operator
  (avg, sum, max, min) plus one for the identity (non-aggregated) case; each
  learns how its operator transforms raw data (Sec. V-B).
* :class:`HierarchicalMultiScaleLayer` (HMRL) — a binary tree over the
  ``2**beta`` sub-segments of a data segment.  Parents combine their children
  with an MLP, so the root mixes information from window sizes
  ``sub_segment_size, 2·sub_segment_size, …, P2`` (Sec. V-C).
* :class:`MixtureOfExpertsLayer` — a gating network that infers which
  aggregation operator (expert) most likely produced the chart and blends the
  experts' root representations accordingly (Sec. V-D).

:class:`DataAggregationEncoder` wires the three together: it turns the raw
``(N2, P2)`` segments of one column into ``(N2, K)`` segment embeddings that
replace the plain linear projection of the base dataset encoder.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..data.aggregation import ALL_OPERATORS
from ..nn import MLP, Linear, Module, ModuleList, Tensor, concatenate, stack
from .config import FCMConfig


class TransformationLayer(Module):
    """Two-layer MLP modelling one aggregation operator's transformation."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator, operator: str) -> None:
        super().__init__()
        self.operator = operator
        hidden = max(config.embed_dim, config.sub_segment_size)
        self.mlp = MLP(
            in_features=config.sub_segment_size,
            hidden_features=[hidden],
            out_features=config.embed_dim,
            activation="relu",
            rng=rng,
        )

    def forward(self, sub_segments: Tensor) -> Tensor:
        """Map ``(..., sub_segment_size)`` values to ``(..., K)`` embeddings."""
        return self.mlp(sub_segments)


class HierarchicalMultiScaleLayer(Module):
    """HMRL: combine ``2**beta`` leaf embeddings up a binary tree.

    Every internal node applies a shared-per-level MLP to the concatenation
    of its two children, so the root representation integrates information
    from every scale between the leaf sub-segment and the full segment.
    """

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.beta = config.beta
        self.combiners = ModuleList(
            [
                MLP(
                    in_features=2 * config.embed_dim,
                    hidden_features=[config.embed_dim],
                    out_features=config.embed_dim,
                    activation="relu",
                    rng=rng,
                )
                for _ in range(config.beta)
            ]
        )

    def forward(self, leaves: Tensor) -> Tensor:
        """Reduce ``(..., 2**beta, K)`` leaf embeddings to ``(..., K)`` roots."""
        current = leaves
        num_nodes = current.shape[-2]
        if num_nodes != 2 ** self.beta:
            raise ValueError(
                f"expected {2 ** self.beta} leaves, got {num_nodes}"
            )
        for level in range(self.beta):
            count = current.shape[-2]
            left = current[..., 0:count:2, :]
            right = current[..., 1:count:2, :]
            paired = concatenate([left, right], axis=-1)
            current = self.combiners[level](paired)
        # A single node remains along the tree axis; drop that axis.
        return current.squeeze(axis=-2)


class MixtureOfExpertsLayer(Module):
    """Gating over the per-operator experts (Sec. V-D).

    The gate for expert ``i`` scores that expert's own root representation
    with two fully connected layers (LeakyReLU between them); a softmax over
    the expert scores yields the blending weights.
    """

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_experts = config.num_experts
        self.gate_hidden = ModuleList(
            [Linear(config.embed_dim, config.embed_dim, rng=rng) for _ in range(self.num_experts)]
        )
        self.gate_out = ModuleList(
            [Linear(config.embed_dim, 1, rng=rng) for _ in range(self.num_experts)]
        )

    def gate_scores(self, expert_roots: Tensor) -> Tensor:
        """Softmax gate weights, shape ``(..., num_experts)``.

        ``expert_roots`` has shape ``(num_experts, ..., K)`` (expert axis
        first).
        """
        scores: List[Tensor] = []
        for i in range(self.num_experts):
            hidden = self.gate_hidden[i](expert_roots[i]).leaky_relu()
            scores.append(self.gate_out[i](hidden).squeeze(axis=-1))
        stacked = stack(scores, axis=-1)
        return stacked.softmax(axis=-1)

    def forward(self, expert_roots: Tensor) -> Tuple[Tensor, Tensor]:
        """Blend expert roots into the final representation.

        Parameters
        ----------
        expert_roots:
            Tensor of shape ``(num_experts, ..., K)``.

        Returns
        -------
        (blended, gates):
            ``blended`` has shape ``(..., K)``; ``gates`` has shape
            ``(..., num_experts)`` and sums to one over the last axis.
        """
        gates = self.gate_scores(expert_roots)
        blended = None
        for i in range(self.num_experts):
            weight = gates[..., i].expand_dims(-1)
            contribution = expert_roots[i] * weight
            blended = contribution if blended is None else blended + contribution
        return blended, gates


class DataAggregationEncoder(Module):
    """Full DA pipeline: raw segments → MoE-blended segment embeddings."""

    def __init__(self, config: FCMConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.transformations = ModuleList(
            [TransformationLayer(config, rng, operator) for operator in ALL_OPERATORS]
        )
        self.hmrl = HierarchicalMultiScaleLayer(config, rng)
        self.moe = MixtureOfExpertsLayer(config, rng)

    def forward(self, segments: np.ndarray, return_gates: bool = False):
        """Encode data segments of shape ``(..., P2)``.

        The leading axes are arbitrary (e.g. ``(N2,)`` for one column or
        ``(NC, N2)`` for a whole table); the output replaces the trailing
        ``P2`` axis by ``K`` — i.e. ``(..., K)`` segment embeddings (and
        optionally the MoE gate weights of shape ``(..., num_experts)``).
        """
        segments = np.asarray(segments, dtype=self.config.numeric_dtype)
        if segments.ndim < 2 or segments.shape[-1] != self.config.data_segment_size:
            raise ValueError(
                f"expected (..., {self.config.data_segment_size}) segments, "
                f"got shape {segments.shape}"
            )
        num_leaves = 2 ** self.config.beta
        sub_segments = segments.reshape(
            *segments.shape[:-1], num_leaves, self.config.sub_segment_size
        )
        sub_tensor = Tensor(sub_segments, dtype=self.config.numeric_dtype)

        expert_roots: List[Tensor] = []
        for transformation in self.transformations:
            leaves = transformation(sub_tensor)  # (..., 2**beta, K)
            roots = self.hmrl(leaves)  # (..., K)
            expert_roots.append(roots)
        stacked = stack(expert_roots, axis=0)  # (num_experts, ..., K)
        blended, gates = self.moe(stacked)
        if return_gates:
            return blended, gates
        return blended
