"""Preprocessing: charts and tables → fixed-shape numeric model inputs.

The encoders of FCM consume:

* **chart input** — for every line of the chart, the sequence of ``N1``
  line-segment images (greyscale crops of width ``P1``), pooled and flattened
  into feature vectors (Sec. IV-B);
* **table input** — for every (surviving) column of the candidate table, the
  sequence of ``N2`` data segments of ``P2`` values each (Sec. IV-C).  The
  y-tick range extracted from the chart filters out columns whose values
  cannot plausibly have produced the chart.

Both are plain NumPy arrays so they can be cached and reused across training
epochs and across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.table import Table
from ..vision.elements import VisualElements
from .config import FCMConfig


@dataclass
class ChartInput:
    """Model-ready features of one line chart query.

    Attributes
    ----------
    segment_features:
        Array of shape ``(M, N1, F1)``: per line, per segment, the pooled and
        flattened segment image.
    y_range:
        The y-axis value range extracted from the ticks.
    num_lines:
        ``M``.
    """

    segment_features: np.ndarray
    y_range: Tuple[float, float]

    @property
    def num_lines(self) -> int:
        return int(self.segment_features.shape[0])

    @property
    def num_segments(self) -> int:
        return int(self.segment_features.shape[1])


@dataclass
class TableInput:
    """Model-ready segments of one candidate table.

    Attributes
    ----------
    segments:
        Array of shape ``(NC', N2, P2)`` holding the (resampled, optionally
        z-normalised) data segments of the surviving columns.
    column_names:
        Names of the surviving columns, aligned with the first axis.
    table_id:
        Source table id.
    """

    segments: np.ndarray
    column_names: List[str]
    table_id: str

    @property
    def num_columns(self) -> int:
        return int(self.segments.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.num_columns == 0


# --------------------------------------------------------------------------- #
# Chart preprocessing
# --------------------------------------------------------------------------- #
def _pool2d(image: np.ndarray, factor: int) -> np.ndarray:
    """Average-pool ``image`` by ``factor`` in both dimensions (crop remainder)."""
    if factor == 1:
        return image
    height, width = image.shape
    new_h, new_w = height // factor, width // factor
    if new_h == 0 or new_w == 0:
        return image
    cropped = image[: new_h * factor, : new_w * factor]
    return cropped.reshape(new_h, factor, new_w, factor).mean(axis=(1, 3))


def line_segment_features(
    line_image: np.ndarray, config: FCMConfig
) -> np.ndarray:
    """Split a single line image into pooled, flattened segment features.

    Parameters
    ----------
    line_image:
        Full-size chart image containing only one line's pixels (values in
        ``[0, 1]``); typically a boolean instance mask cast to float.
    """
    spec = config.chart_spec
    plot = line_image[spec.plot_top : spec.plot_bottom, spec.plot_left : spec.plot_right]
    n1 = config.num_chart_segments
    p1 = config.line_segment_width
    features = np.zeros((n1, config.chart_segment_feature_dim))
    for seg_idx in range(n1):
        left = seg_idx * p1
        right = min(left + p1, plot.shape[1])
        segment = np.zeros((plot.shape[0], p1))
        segment[:, : right - left] = plot[:, left:right]
        pooled = _pool2d(segment, config.image_pool)
        flat = pooled.ravel()
        features[seg_idx, : flat.shape[0]] = flat[: config.chart_segment_feature_dim]
    return features


def prepare_chart_input(
    chart: LineChart,
    elements: VisualElements,
    config: FCMConfig,
) -> ChartInput:
    """Build the chart encoder's input from extracted visual elements.

    The pooled segment images are standardised over the whole chart (zero
    mean, unit variance) so the linear projection of the chart encoder sees
    inputs on the same scale as the (z-normalised) data segments of the
    dataset encoder — sparse binary masks would otherwise produce activations
    orders of magnitude smaller than the table side.
    """
    if elements.num_lines == 0:
        raise ValueError("cannot encode a chart with no extracted lines")
    per_line = [
        line_segment_features(line.mask.astype(np.float64), config)
        for line in elements.lines
    ]
    features = np.stack(per_line)
    std = features.std()
    if std > 1e-8:
        features = (features - features.mean()) / std
    # Stored in the model's precision: chart inputs are cached (query-prep
    # LRU, training examples), so the policy's memory win applies to them
    # too.  Standardisation above stays in float64 for exactness.
    return ChartInput(
        segment_features=features.astype(config.numeric_dtype, copy=False),
        y_range=elements.y_range,
    )


# --------------------------------------------------------------------------- #
# Table preprocessing
# --------------------------------------------------------------------------- #
def resample_series(values: np.ndarray, target_length: int) -> np.ndarray:
    """Resample a series to ``target_length`` points by linear interpolation."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] == target_length:
        return values.copy()
    src = np.linspace(0.0, 1.0, values.shape[0])
    dst = np.linspace(0.0, 1.0, target_length)
    return np.interp(dst, src, values)


def column_segments(values: np.ndarray, config: FCMConfig) -> np.ndarray:
    """Split a column into ``(N2, P2)`` segments after resampling.

    ``N2`` is the number of ``P2``-sized segments needed to cover the column,
    capped at ``max_data_segments``; the column is linearly resampled to
    exactly ``N2 * P2`` points so all segments are full.
    """
    values = np.asarray(values, dtype=np.float64)
    p2 = config.data_segment_size
    n2 = int(np.ceil(values.shape[0] / p2))
    n2 = int(np.clip(n2, 1, config.max_data_segments))
    resampled = resample_series(values, n2 * p2)
    if config.normalize_columns:
        std = resampled.std()
        if std > 1e-8:
            resampled = (resampled - resampled.mean()) / std
        else:
            resampled = resampled - resampled.mean()
    return resampled.reshape(n2, p2)


def prepare_table_input(
    table: Table,
    config: FCMConfig,
    y_range: Optional[Tuple[float, float]] = None,
) -> TableInput:
    """Build the dataset encoder's input for one candidate table.

    When ``y_range`` is given, columns whose value range cannot overlap the
    chart's y-axis range (within the configured tolerance) are dropped, which
    is the y-tick filtering step of Sec. IV-C.  If the filter removes every
    column, all columns are kept — an empty encoding would make the table
    unscorable, whereas the paper's filter is only a pruning heuristic.
    """
    if y_range is not None:
        columns = table.filter_columns_by_range(
            y_range[0], y_range[1], tolerance=config.column_filter_tolerance
        )
        if not columns:
            columns = table.columns
    else:
        columns = table.columns

    segment_blocks: List[np.ndarray] = []
    names: List[str] = []
    max_n2 = 1
    per_column = []
    for column in columns:
        segments = column_segments(column.values, config)
        per_column.append(segments)
        names.append(column.name)
        max_n2 = max(max_n2, segments.shape[0])
    # Pad all columns to the same number of segments (repeat the last segment
    # so padding does not inject an artificial flat shape).
    for segments in per_column:
        if segments.shape[0] < max_n2:
            pad = np.repeat(segments[-1:], max_n2 - segments.shape[0], axis=0)
            segments = np.concatenate([segments, pad], axis=0)
        segment_blocks.append(segments)
    stacked = (
        np.stack(segment_blocks)
        if segment_blocks
        else np.zeros((0, 1, config.data_segment_size))
    )
    # Stored in the model's precision (segmentation/normalisation above runs
    # in float64): table inputs are cached across epochs and index builds.
    return TableInput(
        segments=stacked.astype(config.numeric_dtype, copy=False),
        column_names=names,
        table_id=table.table_id,
    )
