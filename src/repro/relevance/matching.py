"""Weighted maximum bipartite matching between data series and columns.

Sec. III-A: the high-level relevance ``Rel(D, T)`` treats each data series
``d_i`` of the underlying data and each column ``C_j`` of the candidate table
as the two sides of a bipartite graph whose edge weights are the low-level
relevances ``rel(d_i, C_j)``.  The relevance of the pair is the weight of the
maximum-weight matching (no two edges sharing a node).

The assignment is solved exactly with the Hungarian algorithm
(``scipy.optimize.linear_sum_assignment``); a pure-``networkx`` fallback is
also provided and used in tests to cross-validate the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # scipy is a hard dependency of the project, but keep the import local.
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - exercised only in stripped envs
    linear_sum_assignment = None

import networkx as nx


@dataclass
class MatchingResult:
    """Result of a maximum-weight bipartite matching.

    Attributes
    ----------
    pairs:
        List of ``(series_index, column_index)`` pairs in the matching.
    total_weight:
        Sum of the matched edge weights.
    weights:
        The full weight matrix the matching was computed from
        (``num_series x num_columns``).
    """

    pairs: List[Tuple[int, int]]
    total_weight: float
    weights: np.ndarray

    @property
    def mean_weight(self) -> float:
        """Average matched weight (0 when nothing was matched)."""
        if not self.pairs:
            return 0.0
        return self.total_weight / len(self.pairs)

    def as_mapping(self) -> Dict[int, int]:
        return dict(self.pairs)


def max_weight_matching(weights: np.ndarray) -> MatchingResult:
    """Maximum-weight bipartite matching via the Hungarian algorithm.

    Parameters
    ----------
    weights:
        ``(num_series, num_columns)`` non-negative weight matrix.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError("weights must be a 2-D matrix")
    if weights.size == 0:
        return MatchingResult(pairs=[], total_weight=0.0, weights=weights)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if linear_sum_assignment is None:  # pragma: no cover
        return max_weight_matching_networkx(weights)
    row_idx, col_idx = linear_sum_assignment(weights, maximize=True)
    pairs = [(int(r), int(c)) for r, c in zip(row_idx, col_idx) if weights[r, c] > 0]
    total = float(sum(weights[r, c] for r, c in pairs))
    return MatchingResult(pairs=pairs, total_weight=total, weights=weights)


def max_weight_matching_networkx(weights: np.ndarray) -> MatchingResult:
    """Reference implementation using ``networkx.max_weight_matching``.

    Slower than the Hungarian solver but independent of scipy; used to
    cross-check correctness in the property tests.
    """
    weights = np.asarray(weights, dtype=np.float64)
    num_series, num_columns = weights.shape
    graph = nx.Graph()
    for i in range(num_series):
        for j in range(num_columns):
            if weights[i, j] > 0:
                graph.add_edge(("s", i), ("c", j), weight=float(weights[i, j]))
    matching = nx.max_weight_matching(graph, maxcardinality=False)
    pairs: List[Tuple[int, int]] = []
    total = 0.0
    for u, v in matching:
        if u[0] == "c":
            u, v = v, u
        pairs.append((u[1], v[1]))
        total += float(weights[u[1], v[1]])
    pairs.sort()
    return MatchingResult(pairs=pairs, total_weight=total, weights=weights)
