"""``repro.relevance`` — ground-truth relevance: DTW, matching, Rel(D, T)."""

from .cache import (
    RelevanceCache,
    RelevanceCacheInfo,
    clear_relevance_cache,
    relevance_cache,
    relevance_cache_info,
    set_relevance_cache_enabled,
)
from .dtw import (
    dtw_distance,
    dtw_distance_banded,
    dtw_distance_reference,
    dtw_path,
    znormalize,
)
from .matching import MatchingResult, max_weight_matching, max_weight_matching_networkx
from .relevance import RelevanceComputer, RelevanceScore, low_level_relevance

__all__ = [
    "MatchingResult",
    "RelevanceCache",
    "RelevanceCacheInfo",
    "RelevanceComputer",
    "RelevanceScore",
    "clear_relevance_cache",
    "dtw_distance",
    "dtw_distance_banded",
    "dtw_distance_reference",
    "dtw_path",
    "low_level_relevance",
    "max_weight_matching",
    "max_weight_matching_networkx",
    "relevance_cache",
    "relevance_cache_info",
    "set_relevance_cache_enabled",
    "znormalize",
]
