"""``repro.relevance`` — ground-truth relevance: DTW, matching, Rel(D, T)."""

from .dtw import (
    dtw_distance,
    dtw_distance_banded,
    dtw_distance_reference,
    dtw_path,
    znormalize,
)
from .matching import MatchingResult, max_weight_matching, max_weight_matching_networkx
from .relevance import RelevanceComputer, RelevanceScore, low_level_relevance

__all__ = [
    "MatchingResult",
    "RelevanceComputer",
    "RelevanceScore",
    "dtw_distance",
    "dtw_distance_banded",
    "dtw_distance_reference",
    "dtw_path",
    "low_level_relevance",
    "max_weight_matching",
    "max_weight_matching_networkx",
    "znormalize",
]
