"""Process-wide memo for ground-truth relevance scores.

The DTW-based ground truth is the dominant fixture cost at training time:
``relevance_matrix`` computes O(examples x tables) ``Rel(D, T)`` pairs, and
experiments that sweep negative-sampling strategies or retrain across epochs
recompute the *same* pairs again and again.  Scores depend only on the data
contents and the computer settings, so they are memoised here under a cheap
content fingerprint (BLAKE2 over the raw arrays — O(n) against the O(n^2)
DTW it saves, and safe against reused table ids across corpora).

The cache is enabled by default; disable it with the environment variable
``REPRO_RELEVANCE_CACHE=0`` (checked per lookup) or programmatically via
:func:`set_relevance_cache_enabled`.  :func:`clear_relevance_cache` empties
it, :func:`relevance_cache_info` reports hits/misses/size.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..data.table import Table, UnderlyingData

_ENV_FLAG = "REPRO_RELEVANCE_CACHE"


def _array_digest(values: np.ndarray) -> str:
    values = np.ascontiguousarray(values, dtype=np.float64)
    return hashlib.blake2b(values.tobytes(), digest_size=16).hexdigest()


def data_fingerprint(data: UnderlyingData) -> Tuple[Tuple[int, str], ...]:
    """Content fingerprint of the underlying data (y values only — DTW
    ignores x)."""
    return tuple((len(series.y), _array_digest(series.y)) for series in data)


def table_fingerprint(table: Table) -> Tuple[Tuple[str, int, str], ...]:
    """Content fingerprint of a table's columns (ids alone are not unique
    across corpora)."""
    return tuple(
        (column.name, len(column), _array_digest(column.values))
        for column in table.columns
    )


@dataclass
class RelevanceCacheInfo:
    """Snapshot of the cache state."""

    hits: int
    misses: int
    size: int
    enabled: bool


class RelevanceCache:
    """A keyed store of relevance scores with an on/off switch."""

    def __init__(self) -> None:
        self._store: Dict[Tuple, float] = {}
        self.hits = 0
        self.misses = 0
        self._enabled_override: Optional[bool] = None

    @property
    def enabled(self) -> bool:
        if self._enabled_override is not None:
            return self._enabled_override
        return os.environ.get(_ENV_FLAG, "1").lower() not in ("0", "false", "no")

    def set_enabled(self, value: Optional[bool]) -> None:
        """Force the cache on/off; ``None`` restores the env-flag default."""
        self._enabled_override = value

    def key(
        self,
        data: UnderlyingData,
        table: Table,
        max_points: int,
        signature: Tuple,
    ) -> Tuple:
        """Cache key for one ``Rel(D, T)`` evaluation."""
        return self.key_from_fingerprints(
            data_fingerprint(data), table_fingerprint(table), max_points, signature
        )

    @staticmethod
    def key_from_fingerprints(
        data_fp: Tuple,
        table_fp: Tuple,
        max_points: int,
        signature: Tuple,
    ) -> Tuple:
        """Cache key from precomputed fingerprints.

        Batch callers (e.g. the warm probe of
        :func:`repro.fcm.training.relevance_matrix`) hash each data series
        and table once — O(E+T) — and combine the fingerprints per pair,
        instead of re-hashing the same arrays O(E*T) times through
        :meth:`key`.
        """
        return (data_fp, table_fp, max_points, signature)

    def get(self, key: Tuple) -> Optional[float]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Tuple, value: float) -> None:
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> RelevanceCacheInfo:
        return RelevanceCacheInfo(
            hits=self.hits, misses=self.misses, size=len(self._store), enabled=self.enabled
        )


#: The process-wide cache used by ``repro.fcm.training.ground_truth_relevance``.
_GLOBAL_CACHE = RelevanceCache()


def relevance_cache() -> RelevanceCache:
    """The process-wide relevance memo."""
    return _GLOBAL_CACHE


def clear_relevance_cache() -> None:
    _GLOBAL_CACHE.clear()


def set_relevance_cache_enabled(value: Optional[bool]) -> None:
    _GLOBAL_CACHE.set_enabled(value)


def relevance_cache_info() -> RelevanceCacheInfo:
    return _GLOBAL_CACHE.info()
