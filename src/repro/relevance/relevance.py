"""Ground-truth relevance ``Rel(D, T)`` between underlying data and a table.

Defined bottom-up in Sec. III-A of the paper:

* **Low-level relevance** ``rel(d, C) = 1 / (1 + DTW(d.y, C))`` between a
  single data series (one line) and a single column, ignoring x values.
* **High-level relevance** ``Rel(D, T)``: a maximum-weight bipartite matching
  between the data series of ``D`` and the columns of ``T`` with low-level
  relevances as edge weights.

This score is used to (a) construct the benchmark ground truth (top-50
relevant tables per query) and (b) select semi-hard negatives during FCM
training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..data.table import Table, UnderlyingData
from .dtw import dtw_distance, dtw_distance_banded
from .matching import MatchingResult, max_weight_matching

DistanceFn = Callable[[np.ndarray, np.ndarray], float]


def low_level_relevance(
    series_y: np.ndarray,
    column_values: np.ndarray,
    distance_fn: Optional[DistanceFn] = None,
) -> float:
    """``rel(d, C) = 1 / (1 + dist(d, C))`` with DTW as the distance."""
    distance_fn = distance_fn or dtw_distance
    distance = distance_fn(np.asarray(series_y), np.asarray(column_values))
    if distance < 0:
        raise ValueError("distance function returned a negative value")
    return 1.0 / (1.0 + distance)


@dataclass
class RelevanceScore:
    """The high-level relevance together with its matching explanation."""

    score: float
    matching: MatchingResult

    def matched_columns(self, table: Table) -> List[str]:
        """Names of the table columns participating in the matching."""
        return [table.column_names[j] for _, j in self.matching.pairs]


class RelevanceComputer:
    """Computes ``Rel(D, T)`` with a configurable DTW backend.

    Parameters
    ----------
    use_banded_dtw:
        Use the Sakoe–Chiba banded DTW (faster, slightly approximate) instead
        of the exact dynamic program.
    band:
        Band width for the banded DTW (see :func:`dtw_distance_banded`).
    normalize:
        Whether series/columns are z-normalised before DTW.
    aggregate:
        How per-pair weights combine into the final score: ``"sum"`` (the
        matching weight, as in the paper) or ``"mean"`` (scale-free variant
        useful when comparing queries with different numbers of lines).
    """

    def __init__(
        self,
        use_banded_dtw: bool = False,
        band: Optional[int] = None,
        normalize: bool = True,
        aggregate: str = "sum",
    ) -> None:
        if aggregate not in ("sum", "mean"):
            raise ValueError("aggregate must be 'sum' or 'mean'")
        self.normalize = normalize
        self.aggregate = aggregate
        # The distance settings are captured by the ``_distance`` closure at
        # construction time (mutating e.g. ``self.normalize`` afterwards does
        # not change what is computed), so the signature snapshots them here.
        self._distance_signature = (
            "banded" if use_banded_dtw else "exact",
            band,
            normalize,
        )
        if use_banded_dtw:
            self._distance: DistanceFn = lambda a, b: dtw_distance_banded(
                a, b, band=band, normalize=normalize
            )
        else:
            self._distance = lambda a, b: dtw_distance(a, b, normalize=normalize)

    @property
    def signature(self) -> tuple:
        """Hashable identity of the computation this instance performs.

        Part of the ``repro.relevance.cache`` memo key, so scores computed
        under different settings never collide.  ``aggregate`` is read live
        (the :meth:`relevance` method consults the attribute per call); the
        distance settings are the ones frozen into the DTW closure.
        """
        return self._distance_signature + (self.aggregate,)

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #
    def weight_matrix(self, data: UnderlyingData, table: Table) -> np.ndarray:
        """Pairwise ``rel(d_i, C_j)`` weights, shape ``(M, NC)``."""
        weights = np.zeros((data.num_lines, table.num_columns))
        for i, series in enumerate(data):
            for j, column in enumerate(table.columns):
                weights[i, j] = low_level_relevance(
                    series.y, column.values, distance_fn=self._distance
                )
        return weights

    def relevance(self, data: UnderlyingData, table: Table) -> RelevanceScore:
        """Compute ``Rel(D, T)`` and the matching that realises it."""
        weights = self.weight_matrix(data, table)
        matching = max_weight_matching(weights)
        if self.aggregate == "sum":
            score = matching.total_weight
        else:
            score = matching.mean_weight
        return RelevanceScore(score=score, matching=matching)

    def score(self, data: UnderlyingData, table: Table) -> float:
        """Convenience wrapper returning only the scalar relevance."""
        return self.relevance(data, table).score

    # ------------------------------------------------------------------ #
    # Batch helpers
    # ------------------------------------------------------------------ #
    def rank_tables(
        self, data: UnderlyingData, tables: Sequence[Table]
    ) -> List[tuple]:
        """Return ``(table_id, score)`` pairs sorted by decreasing relevance."""
        scored = [(table.table_id, self.score(data, table)) for table in tables]
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored

    def top_k(
        self, data: UnderlyingData, tables: Sequence[Table], k: int
    ) -> List[str]:
        """Ids of the ``k`` most relevant tables."""
        if k <= 0:
            raise ValueError("k must be positive")
        return [table_id for table_id, _ in self.rank_tables(data, tables)[:k]]
