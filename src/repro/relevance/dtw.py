"""Dynamic time warping distance (Sec. III-A).

The ground-truth relevance between a data series ``d`` (one line of the
underlying data) and a column ``C`` is ``rel(d, C) = 1 / (1 + DTW(d, C))``.
DTW tolerates the differing lengths and temporal resolutions that arise when
aggregated data is compared against the original column.

Two implementations are provided:

* :func:`dtw_distance` — exact O(n·m) dynamic program, vectorised as an
  anti-diagonal NumPy sweep (cells on one anti-diagonal only depend on the
  two previous diagonals, so each diagonal is filled in a single vector
  step); :func:`dtw_distance_reference` keeps the plain per-cell loop the
  sweep is tested against;
* :func:`dtw_distance_banded` — the Sakoe–Chiba banded variant, an optional
  accelerator whose band width trades accuracy for speed (the band is exact
  when it is at least as wide as the length difference of the inputs).

Series are optionally z-normalised before the distance is computed so that a
chart's *shape* rather than its absolute scale drives the match, matching how
the paper treats value ranges (the range is handled separately by the y-tick
filter and the interval-tree index).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def znormalize(series: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Return the z-normalised copy of ``series`` (constant series → zeros)."""
    series = np.asarray(series, dtype=np.float64)
    std = series.std()
    if std < eps:
        return np.zeros_like(series)
    return (series - series.mean()) / std


def _validate(series: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def _accumulate_antidiagonal(cost: np.ndarray) -> np.ndarray:
    """Fill the full ``(n+1, m+1)`` DTW table for a ``(n, m)`` cost matrix.

    The classic recurrence ``acc[i, j] = cost[i-1, j-1] + min(acc[i-1, j],
    acc[i, j-1], acc[i-1, j-1])`` is serial along rows *and* columns, but all
    cells on one anti-diagonal ``i + j = d`` depend only on diagonals
    ``d - 1`` and ``d - 2`` — so each diagonal is computed in one vectorised
    step instead of a Python-level inner loop.  ``inf`` entries in ``cost``
    (used by the banded variant) propagate exactly as in the scalar loop.
    """
    n, m = cost.shape
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for d in range(2, n + m + 2):
        i_lo = max(1, d - (m + 1) + 1)
        i_hi = min(n, d - 1)
        if i_lo > i_hi:
            continue
        i = np.arange(i_lo, i_hi + 1)
        j = d - i
        best = np.minimum(
            np.minimum(acc[i - 1, j], acc[i, j - 1]), acc[i - 1, j - 1]
        )
        acc[i, j] = cost[i - 1, j - 1] + best
    return acc


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    normalize: bool = True,
) -> float:
    """Exact DTW distance between two 1-D series (anti-diagonal sweep).

    Parameters
    ----------
    a, b:
        Input series (possibly different lengths).
    normalize:
        Whether to z-normalise both series first (default, shape matching).
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    # A full-width band turns the banded sweep into the exact DP while
    # keeping its O(n) rolling-buffer memory; the dense (n+1, m+1) table of
    # _accumulate_antidiagonal is only needed when the path is requested.
    lo = np.ones(n, dtype=np.int64)
    hi = np.full(n, m, dtype=np.int64)
    return _banded_sweep(a, b, lo, hi)


def dtw_distance_reference(
    a: np.ndarray,
    b: np.ndarray,
    normalize: bool = True,
) -> float:
    """Plain O(n·m) per-cell DTW loop.

    Kept as the ground truth the vectorised :func:`dtw_distance` is tested
    against; both produce bitwise-identical results.
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    # cost[i, j] = |a[i-1] - b[j-1]| accumulated along the optimal path.
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        diff = np.abs(a[i - 1] - b)
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], current[j - 1])
            current[j] = diff[j - 1] + best
        prev = current
    return float(prev[m])


def _band_bounds(n: int, m: int, band: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``[lo_i, hi_i]`` column bounds of the Sakoe–Chiba band.

    The band is centred on the rescaled diagonal ``j ≈ i·m/n``; the first row
    is fully open on the left so a warping path can start anywhere along
    ``b``.  Both ``i + lo_i`` and ``i + hi_i`` are non-decreasing, which the
    banded sweep exploits to locate each anti-diagonal's in-band cells.
    """
    i = np.arange(1, n + 1)
    center = np.round(i * m / n).astype(np.int64)
    lo = np.maximum(1, center - band)
    hi = np.minimum(m, center + band)
    lo[0] = 1
    return lo, hi


def _banded_sweep(
    a: np.ndarray, b: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> float:
    """Banded anti-diagonal sweep returning the accumulated cost at (n, m).

    Same recurrence as :func:`_accumulate_antidiagonal`, but each diagonal
    only visits its in-band cells (located with two binary searches over the
    monotone ``i + lo_i`` / ``i + hi_i`` keys) and costs are computed
    cell-wise on the fly.  Only the two previous anti-diagonals are needed by
    the recurrence, so three rotating O(n) buffers replace the full table:
    work is O(n·band) and memory O(n), matching the scalar banded loop this
    replaces.  Returns ``inf`` when the band admits no warping path.
    """
    n, m = a.shape[0], b.shape[0]
    rows = np.arange(1, n + 1)
    first_diag = rows + lo  # first anti-diagonal touching row i, non-decreasing
    last_diag = rows + hi  # last anti-diagonal touching row i, non-decreasing

    # Buffers indexed by i hold one anti-diagonal each: cell (i, d - i) of
    # diagonal d lives at index i.  `*_span` tracks which slice a buffer has
    # written so recycling it only resets that slice.
    prev2 = np.full(n + 1, np.inf)  # diagonal d-2; starts as d=0: {(0,0): 0}
    prev2[0] = 0.0
    prev2_span = (0, 0)
    prev1 = np.full(n + 1, np.inf)  # diagonal d-1; d=1 is all inf
    prev1_span = None
    cur = np.full(n + 1, np.inf)
    cur_stale = None
    result = np.inf
    for d in range(2, n + m + 1):
        if cur_stale is not None:
            cur[cur_stale[0] : cur_stale[1] + 1] = np.inf
        i_lo = int(np.searchsorted(last_diag, d, side="left")) + 1
        i_hi = int(np.searchsorted(first_diag, d, side="right"))
        i_lo = max(i_lo, 1, d - m)
        i_hi = min(i_hi, n, d - 1)
        if i_lo <= i_hi:
            i = np.arange(i_lo, i_hi + 1)
            best = np.minimum(np.minimum(prev1[i - 1], prev1[i]), prev2[i - 1])
            cur[i] = np.abs(a[i - 1] - b[d - i - 1]) + best
            cur_span = (i_lo, i_hi)
        else:
            cur_span = None
        if d == n + m:
            result = cur[n]
        prev2, prev1, cur = prev1, cur, prev2
        prev2_span, prev1_span, cur_stale = prev1_span, cur_span, prev2_span
    return float(result)


def dtw_distance_banded(
    a: np.ndarray,
    b: np.ndarray,
    band: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """Sakoe–Chiba banded DTW (vectorised anti-diagonal sweep).

    Parameters
    ----------
    band:
        Maximum allowed |i - j| deviation from the diagonal (after the
        shorter series is conceptually stretched to the longer one).  Defaults
        to 10% of the longer series, but never less than the length
        difference (otherwise no warping path would exist).
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    if band is None:
        band = max(n, m) // 10
    band = max(band, abs(n - m), 1)

    lo, hi = _band_bounds(n, m, band)
    result = _banded_sweep(a, b, lo, hi)
    if np.isinf(result):
        # Band too tight to contain any path; fall back to the exact DTW.
        return dtw_distance(a, b, normalize=False)
    return result


def dtw_path(a: np.ndarray, b: np.ndarray, normalize: bool = True):
    """Exact DTW returning both the distance and the optimal warping path.

    The path is a list of ``(i, j)`` index pairs into ``a`` and ``b``.  Used
    by diagnostics and by tests validating DTW's continuity/boundary
    properties.
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    acc = _accumulate_antidiagonal(np.abs(a[:, None] - b[None, :]))
    # Backtrack.
    path = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = [
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        ]
        _, i, j = min(moves, key=lambda item: item[0])
    path.reverse()
    return float(acc[n, m]), path
