"""Dynamic time warping distance (Sec. III-A).

The ground-truth relevance between a data series ``d`` (one line of the
underlying data) and a column ``C`` is ``rel(d, C) = 1 / (1 + DTW(d, C))``.
DTW tolerates the differing lengths and temporal resolutions that arise when
aggregated data is compared against the original column.

Two implementations are provided:

* :func:`dtw_distance` — exact O(n·m) dynamic program;
* :func:`dtw_distance_banded` — the Sakoe–Chiba banded variant, an optional
  accelerator whose band width trades accuracy for speed (the band is exact
  when it is at least as wide as the length difference of the inputs).

Series are optionally z-normalised before the distance is computed so that a
chart's *shape* rather than its absolute scale drives the match, matching how
the paper treats value ranges (the range is handled separately by the y-tick
filter and the interval-tree index).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def znormalize(series: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Return the z-normalised copy of ``series`` (constant series → zeros)."""
    series = np.asarray(series, dtype=np.float64)
    std = series.std()
    if std < eps:
        return np.zeros_like(series)
    return (series - series.mean()) / std


def _validate(series: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    normalize: bool = True,
) -> float:
    """Exact DTW distance between two 1-D series.

    Parameters
    ----------
    a, b:
        Input series (possibly different lengths).
    normalize:
        Whether to z-normalise both series first (default, shape matching).
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    # cost[i, j] = |a[i-1] - b[j-1]| accumulated along the optimal path.
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        diff = np.abs(a[i - 1] - b)
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], current[j - 1])
            current[j] = diff[j - 1] + best
        prev = current
    return float(prev[m])


def dtw_distance_banded(
    a: np.ndarray,
    b: np.ndarray,
    band: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """Sakoe–Chiba banded DTW.

    Parameters
    ----------
    band:
        Maximum allowed |i - j| deviation from the diagonal (after the
        shorter series is conceptually stretched to the longer one).  Defaults
        to 10% of the longer series, but never less than the length
        difference (otherwise no warping path would exist).
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    if band is None:
        band = max(n, m) // 10
    band = max(band, abs(n - m), 1)

    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        # The band is centred on the rescaled diagonal position.
        center = int(round(i * m / n))
        lo = max(1, center - band)
        hi = min(m, center + band)
        if i == 1:
            lo = 1
        for j in range(lo, hi + 1):
            best = min(prev[j], prev[j - 1], current[j - 1])
            if np.isinf(best):
                continue
            current[j] = abs(a[i - 1] - b[j - 1]) + best
        prev = current
    result = prev[m]
    if np.isinf(result):
        # Band too tight to contain any path; fall back to the exact DTW.
        return dtw_distance(a, b, normalize=False)
    return float(result)


def dtw_path(a: np.ndarray, b: np.ndarray, normalize: bool = True):
    """Exact DTW returning both the distance and the optimal warping path.

    The path is a list of ``(i, j)`` index pairs into ``a`` and ``b``.  Used
    by diagnostics and by tests validating DTW's continuity/boundary
    properties.
    """
    a = _validate(a, "a")
    b = _validate(b, "b")
    if normalize:
        a, b = znormalize(a), znormalize(b)
    n, m = a.shape[0], b.shape[0]
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = abs(a[i - 1] - b[j - 1])
            acc[i, j] = cost + min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
    # Backtrack.
    path = []
    i, j = n, m
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = [
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        ]
        _, i, j = min(moves, key=lambda item: item[0])
    path.reverse()
    return float(acc[n, m]), path
