"""A minimal reverse-mode automatic differentiation engine on NumPy arrays.

The paper's FCM model is trained with PyTorch.  PyTorch is not available in
this environment, so this module provides the substrate it depends on: a
``Tensor`` class wrapping a ``numpy.ndarray`` together with a dynamically
built computation graph and reverse-mode differentiation.

The design follows the classic "define-by-run" tape approach:

* every differentiable operation creates a new ``Tensor`` whose ``_parents``
  point at its inputs and whose ``_backward`` closure knows how to propagate
  an upstream gradient to those inputs;
* :meth:`Tensor.backward` topologically sorts the graph reachable from the
  output and runs the closures in reverse order, accumulating gradients in
  ``Tensor.grad``.

Only the operations needed by the FCM reproduction (linear layers, layer
normalisation, multi-head attention, MLPs, the losses in the paper) are
implemented, but they are implemented with full broadcasting support so the
modules built on top read like their PyTorch counterparts.

Inference mode
--------------
Query-time scoring never calls :meth:`Tensor.backward`, so building the tape
is pure overhead.  Inside a :class:`no_grad` block every operation returns a
plain ``Tensor`` *before* allocating its backward closure or parent tuple:

* no computation graph is constructed (outputs have no ``_parents`` and no
  ``_backward``), so intermediate activations become garbage immediately;
* outputs have ``requires_grad=False`` even when an input is a trainable
  :class:`~repro.nn.module.Parameter`;
* the forward *values* are bitwise identical to grad mode — the same NumPy
  expressions run either way, only the bookkeeping is skipped.

The contract is therefore: it is safe to wrap any forward computation whose
output will never be differentiated.  Calling ``backward()`` on a tensor
produced under ``no_grad`` raises, exactly like any ``requires_grad=False``
tensor.  :class:`enable_grad` restores tracking inside a ``no_grad`` region
(used, e.g., by evaluation callbacks that fine-tune mid-inference).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .dtype import default_dtype, resolve_dtype

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Global switch consulted by every op before it records the tape.  Mutated
# only by the no_grad / enable_grad context managers below.
_GRAD_ENABLED: bool = True


def is_grad_enabled() -> bool:
    """Whether operations currently record the computation graph."""
    return _GRAD_ENABLED


class _GradMode:
    """Context manager / decorator flipping the global grad-tracking switch.

    Instances are reentrant: each ``__enter__`` pushes the outer state onto a
    per-instance stack, so one instance may be reused (even nested within
    itself) without clobbering the state it has to restore.
    """

    _enabled: bool = True

    def __init__(self) -> None:
        self._outer: list[bool] = []

    def __enter__(self) -> "_GradMode":
        global _GRAD_ENABLED
        self._outer.append(_GRAD_ENABLED)
        _GRAD_ENABLED = self._enabled
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._outer.pop()
        return False

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with type(self)():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class no_grad(_GradMode):
    """Disable graph construction inside the block (or decorated function).

    Every op run inside the block returns a plain tensor with no parents and
    no backward closure; forward *values* are unchanged.  Wrap any forward
    pass whose output will never be differentiated (all query-time scoring).

    Example
    -------
    >>> w = Tensor(np.ones((4, 4)), requires_grad=True)
    >>> with no_grad():
    ...     y = (w @ w).sum()      # no tape: y.requires_grad is False
    >>> y.requires_grad
    False
    """

    _enabled = False


class enable_grad(_GradMode):
    """Re-enable graph construction inside a ``no_grad`` region.

    Example
    -------
    >>> with no_grad():
    ...     with enable_grad():
    ...         assert is_grad_enabled()   # tracking restored inside
    """

    _enabled = True


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a float ndarray without copying when possible.

    ``dtype=None`` uses the process-wide policy dtype
    (:func:`repro.nn.dtype.default_dtype`); passing an explicit dtype pins
    it — ops use this to lift scalars/arrays to their operand's dtype so a
    float32 graph never silently promotes to float64.
    """
    if dtype is None:
        dtype = default_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting can add leading axes and expand length-1 axes; the gradient
    of a broadcast input is the sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were expanded from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        The underlying array (copied only if a dtype conversion is required).
    dtype:
        Target dtype; ``None`` (default) uses the process-wide policy dtype
        (see :mod:`repro.nn.dtype`).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    parents:
        Tensors this tensor was computed from (internal use).
    backward_fn:
        Closure propagating the upstream gradient to the parents
        (internal use).
    name:
        Optional human-readable name used in ``repr`` for debugging.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = parents
        self._backward = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        return Tensor(
            self.data.copy(), requires_grad=self.requires_grad, dtype=self.data.dtype
        )

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast (float32 ↔ float64).

        The backward pass casts the upstream gradient back to this tensor's
        dtype, so a float64-sensitive sub-graph can be spliced into a float32
        model (or vice versa) without breaking training.  A no-op (returning
        ``self``) when the dtype already matches.
        """
        target = resolve_dtype(dtype)
        if self.data.dtype == target:
            return self
        out_data = self.data.astype(target)
        if not self._tracked():
            return Tensor(out_data, dtype=target)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return self._graph(out_data, (self,), backward)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"
        )

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike], dtype=None) -> "Tensor":
        """Lift ``value`` to a Tensor.

        ``dtype`` pins the dtype of lifted scalars/arrays (ops pass their own
        operand's dtype so e.g. ``x * 0.5`` stays in ``x``'s precision);
        already-Tensor values are returned untouched.
        """
        if isinstance(value, Tensor):
            return value
        return Tensor(value, dtype=dtype)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (creating it on demand).

        Gradients are kept in the tensor's own dtype (not the policy
        default), so optimizer state built from them follows the parameter
        precision even if the policy changes mid-process.
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(_as_array(grad, self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _tracked(self, *others: "Tensor") -> bool:
        """Whether an op on ``(self, *others)`` must join the autodiff graph.

        Checked *before* the backward closure is allocated, so inference under
        :class:`no_grad` (or on plain ``requires_grad=False`` inputs) skips
        graph construction entirely rather than building and discarding it.
        """
        if not _GRAD_ENABLED:
            return False
        if self.requires_grad:
            return True
        for other in others:
            if other.requires_grad:
                return True
        return False

    def _graph(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Wrap ``data`` as a graph node (callers must have checked _tracked)."""
        return Tensor(
            data,
            requires_grad=True,
            parents=parents,
            backward_fn=backward_fn,
            dtype=data.dtype,
        )

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar outputs; required
            for non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "grad must be supplied for non-scalar outputs "
                    f"(output shape {self.shape})"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out_data = self.data + other.data
        if not self._tracked(other):
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._graph(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._graph(out_data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out_data = self.data - other.data
        if not self._tracked(other):
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return self._graph(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out_data = self.data * other.data
        if not self._tracked(other):
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._graph(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other, self.data.dtype)
        out_data = self.data / other.data
        if not self._tracked(other):
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return self._graph(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other, dtype=self.data.dtype).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._graph(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Batched matrix multiplication with broadcasting over batch dims."""
        other = self._ensure(other, self.data.dtype)
        out_data = self.data @ other.data
        if not self._tracked(other):
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                grad_b = a[:, None] * grad[..., None, :]
                self._accumulate(grad_a)
                other._accumulate(grad_b)
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b
                grad_b = (a * grad[..., :, None]).sum(axis=tuple(range(a.ndim - 1)))
                self._accumulate(grad_a)
                other._accumulate(grad_b)
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(grad_a)
            other._accumulate(grad_b)

        return self._graph(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._graph(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._graph(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        # Guard against division by an exactly-zero sqrt; the historical
        # float64 guard (1e-300) underflows to 0 in float32, so use the
        # dtype's own smallest normal there instead.
        guard = 1e-300 if out_data.dtype == np.float64 else np.finfo(out_data.dtype).tiny

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, guard))

        return self._graph(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._graph(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._graph(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._graph(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._graph(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        # A Python float, not np.float64: a NumPy scalar is "strong" under
        # NEP 50 and would silently promote float32 activations to float64.
        c = float(np.sqrt(2.0 / np.pi))
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            sech2 = 1.0 - tanh_inner ** 2
            d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
            local = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(grad * local)

        return self._graph(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._graph(out_data, (self,), backward)

    def clip(self, min_value: float, max_value: float) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)
        mask = (self.data >= min_value) & (self.data <= max_value)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._graph(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        # Accumulate in float64 regardless of the policy dtype (see
        # repro.nn.dtype): long reductions are where float32 loses digits
        # fastest.  In float64 mode both arguments are no-ops, so the result
        # is bit-for-bit what the historical engine produced.
        out_data = self.data.sum(axis=axis, keepdims=keepdims, dtype=np.float64)
        out_data = np.asarray(out_data).astype(self.data.dtype, copy=False)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            if axis is None:
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            else:
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            self._accumulate(expanded)

        return self._graph(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            if axis is None:
                mask = self.data == self.data.max()
                count = mask.sum()
                self._accumulate(np.broadcast_to(grad_arr, self.data.shape) * mask / count)
                return
            expanded_out = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded_out
            count = mask.sum(axis=axis, keepdims=True)
            grad_expanded = grad_arr if keepdims else np.expand_dims(grad_arr, axis=axis)
            self._accumulate(np.broadcast_to(grad_expanded, self.data.shape) * mask / count)

        return self._graph(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_as_array(grad).reshape(original_shape))

        return self._graph(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_as_array(grad).transpose(inverse))

        return self._graph(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(_as_array(grad), axis1, axis2))

        return self._graph(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, _as_array(grad))
            self._accumulate(full)

        return self._graph(out_data, (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(_as_array(grad), axis=axis))

        return self._graph(out_data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_as_array(grad).reshape(original_shape))

        return self._graph(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Softmax and normalisation
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        # float64 denominator (an accumulation exception, see repro.nn.dtype);
        # bit-identical in float64 mode.
        denom = exps.sum(axis=axis, keepdims=True, dtype=np.float64)
        out_data = (exps / denom).astype(self.data.dtype, copy=False)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            dot = (grad_arr * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad_arr - dot))

        return self._graph(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        # float64 denominator (an accumulation exception, see repro.nn.dtype);
        # bit-identical in float64 mode.
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True, dtype=np.float64))
        out_data = (shifted - log_sum).astype(self.data.dtype, copy=False)
        if not self._tracked():
            return Tensor(out_data, dtype=out_data.dtype)
        softmax_vals = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            grad_arr = _as_array(grad)
            total = grad_arr.sum(axis=axis, keepdims=True)
            self._accumulate(grad_arr - softmax_vals * total)

        return self._graph(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Factory helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=resolve_dtype(dtype)), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape,
        rng: Optional[np.random.Generator] = None,
        requires_grad: bool = False,
        dtype=None,
    ) -> "Tensor":
        # Always draw in float64 and cast: the stream of random values is
        # identical across policy dtypes (float32 parameters are the rounded
        # float64 ones), which is what the cross-precision parity tests rely on.
        rng = rng or np.random.default_rng()
        draw = rng.standard_normal(shape)
        return Tensor(draw, requires_grad=requires_grad, dtype=resolve_dtype(dtype))


def _any_tracked(tensors: Sequence[Tensor]) -> bool:
    """Whether an op over ``tensors`` must join the autodiff graph."""
    return _GRAD_ENABLED and any(t.requires_grad for t in tensors)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not _any_tracked(tensors):
        return Tensor(out_data, dtype=out_data.dtype)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad_arr = _as_array(grad)
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad_arr.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad_arr[tuple(slicer)])

    return Tensor(out_data, requires_grad=True, parents=tuple(tensors), backward_fn=backward, dtype=out_data.dtype)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not _any_tracked(tensors):
        return Tensor(out_data, dtype=out_data.dtype)

    def backward(grad: np.ndarray) -> None:
        grad_arr = _as_array(grad)
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad_arr, i, axis=axis))

    return Tensor(out_data, requires_grad=True, parents=tuple(tensors), backward_fn=backward, dtype=out_data.dtype)


def pad(tensor: Tensor, pad_width: Sequence[Tuple[int, int]]) -> Tensor:
    """Zero-pad ``tensor`` with ``(before, after)`` widths per axis.

    The differentiable counterpart of :func:`numpy.pad` (constant/zero mode):
    the backward pass slices the upstream gradient back to the unpadded
    region, so padding cells contribute nothing to any parameter gradient.
    This is the building block that lets ragged encoder outputs be stacked
    into one batch *inside* the autodiff graph — the batched training path
    pads each example's ``(NC_i, N2_i, K)`` table representation to the batch
    maximum before one stacked matcher forward.

    Example
    -------
    >>> t = Tensor(np.ones((2, 3)), requires_grad=True)
    >>> pad(t, [(0, 1), (0, 2)]).shape   # zero row below, two zero cols right
    (3, 5)
    """
    tensor = Tensor._ensure(tensor)
    widths = tuple((int(before), int(after)) for before, after in pad_width)
    if len(widths) != tensor.ndim:
        raise ValueError(
            f"pad_width has {len(widths)} entries for a {tensor.ndim}-D tensor"
        )
    if any(before < 0 or after < 0 for before, after in widths):
        raise ValueError("pad widths must be non-negative")
    if all(before == 0 and after == 0 for before, after in widths):
        return tensor
    out_data = np.pad(tensor.data, widths)
    if not _any_tracked((tensor,)):
        return Tensor(out_data, dtype=out_data.dtype)
    region = tuple(
        slice(before, before + size)
        for (before, _), size in zip(widths, tensor.data.shape)
    )

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(_as_array(grad)[region])

    return Tensor(out_data, requires_grad=True, parents=(tensor,), backward_fn=backward, dtype=out_data.dtype)


def pad_stack(tensors: Sequence[Tensor]) -> Tuple[Tensor, np.ndarray]:
    """Zero-pad same-rank tensors to a common shape and stack along a new axis 0.

    Returns ``(batch, mask)`` where ``batch`` has shape
    ``(B, *max_shape)`` and ``mask`` is a boolean array of the same shape
    marking the real (unpadded) cells of every element.  Fully differentiable:
    gradients of ``batch`` flow back into each input tensor's unpadded region
    (and accumulate when the same tensor object appears several times, which
    is how a chart representation shared by a positive and its negatives
    receives the sum of its pairs' gradients).

    Example
    -------
    >>> a, b = Tensor(np.ones((2, 3))), Tensor(np.ones((1, 5)))
    >>> batch, mask = pad_stack([a, b])
    >>> batch.shape, mask[1, 0].tolist()
    ((2, 2, 5), [True, True, True, True, True])
    """
    tensors = [Tensor._ensure(t) for t in tensors]
    if not tensors:
        raise ValueError("cannot pad-stack zero tensors")
    ndim = tensors[0].ndim
    if any(t.ndim != ndim for t in tensors):
        raise ValueError("pad_stack requires tensors of equal rank")
    max_shape = tuple(
        max(t.shape[axis] for t in tensors) for axis in range(ndim)
    )
    padded = [
        pad(t, [(0, high - size) for size, high in zip(t.shape, max_shape)])
        for t in tensors
    ]
    mask = np.zeros((len(tensors), *max_shape), dtype=bool)
    for i, t in enumerate(tensors):
        mask[i][tuple(slice(0, size) for size in t.shape)] = True
    return stack(padded, axis=0), mask


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable element selection: ``condition ? a : b``.

    A non-Tensor ``b`` (typically a scalar fill value, see
    :func:`repro.nn.masked_keep`) is lifted to ``a``'s dtype so masking never
    promotes a float32 graph to float64.
    """
    a = Tensor._ensure(a)
    b = Tensor._ensure(b, a.data.dtype)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)
    if not _any_tracked((a, b)):
        return Tensor(out_data, dtype=out_data.dtype)

    def backward(grad: np.ndarray) -> None:
        grad_arr = _as_array(grad)
        a._accumulate(np.where(cond, grad_arr, 0.0))
        b._accumulate(np.where(cond, 0.0, grad_arr))

    return Tensor(out_data, requires_grad=True, parents=(a, b), backward_fn=backward, dtype=out_data.dtype)
