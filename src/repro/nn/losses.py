"""Loss functions, including the class-balanced BCE objective of Eq. 2.

Eq. 2 in the paper is a binary cross-entropy in which the positive and
negative terms are normalised separately by the number of positive and
negative examples — this keeps the objective balanced even though the
negative-sampling strategy produces ``N−`` negatives per positive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor


def _ensure_tensor(value, like: Optional[Tensor] = None) -> Tensor:
    """Lift ``value`` to a Tensor, following ``like``'s dtype when given.

    Targets are lifted to the predictions' dtype so a float32 model's loss
    graph never silently promotes to float64 (loss *reductions* still
    accumulate in float64 — see :mod:`repro.nn.dtype`).
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=None if like is None else like.data.dtype)


def binary_cross_entropy(
    predictions: Tensor,
    targets,
    eps: float = 1e-7,
) -> Tensor:
    """Plain BCE over probabilities (not logits)."""
    predictions = _ensure_tensor(predictions)
    targets = _ensure_tensor(targets, like=predictions)
    clipped = predictions.clip(eps, 1.0 - eps)
    loss = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    return loss.mean()


def balanced_binary_cross_entropy(
    predictions: Tensor,
    targets,
    eps: float = 1e-7,
) -> Tensor:
    """The objective of Eq. 2: BCE with per-class normalisation.

    ``L = -[ (1/N_pos) Σ_pos r log(r̂) + (1/N_neg) Σ_neg (1-r) log(1-r̂) ]``

    Parameters
    ----------
    predictions:
        Model outputs ``Rel'(V, T)`` in ``[0, 1]``.
    targets:
        Ground-truth labels in ``{0, 1}`` (or soft labels in ``[0, 1]``).
    """
    predictions = _ensure_tensor(predictions)
    targets = _ensure_tensor(targets, like=predictions)
    clipped = predictions.clip(eps, 1.0 - eps)
    target_data = targets.data
    n_pos = float(np.sum(target_data > 0.5))
    n_neg = float(np.sum(target_data <= 0.5))
    pos_term = (targets * clipped.log()).sum() * (1.0 / max(n_pos, 1.0))
    neg_term = ((1.0 - targets) * (1.0 - clipped).log()).sum() * (1.0 / max(n_neg, 1.0))
    return -(pos_term + neg_term)


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error."""
    predictions = _ensure_tensor(predictions)
    targets = _ensure_tensor(targets, like=predictions)
    diff = predictions - targets
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, target_indices, axis: int = -1) -> Tensor:
    """Multi-class cross entropy from unnormalised logits.

    Used by the LCSeg segmentation head, which classifies each image patch
    into a visual-element class (background / line / tick / axis).
    """
    logits = _ensure_tensor(logits)
    log_probs = logits.log_softmax(axis=axis)
    idx = np.asarray(target_indices, dtype=np.int64)
    if log_probs.ndim == 2 and axis in (-1, 1):
        gathered = log_probs[np.arange(idx.shape[0]), idx]
        return -(gathered.mean())
    raise ValueError("cross_entropy expects 2-D logits with class axis last")


def contrastive_cosine_loss(
    anchor: Tensor,
    positive: Tensor,
    negatives: Tensor,
    temperature: float = 0.1,
) -> Tensor:
    """InfoNCE-style loss used to train the CML bi-encoder baseline.

    Parameters
    ----------
    anchor:
        ``(dim,)`` embedding of the chart.
    positive:
        ``(dim,)`` embedding of the matching table.
    negatives:
        ``(n_neg, dim)`` embeddings of non-matching tables.
    """
    def _normalize(t: Tensor) -> Tensor:
        norm = (t * t).sum(axis=-1, keepdims=True) ** 0.5
        return t / (norm + 1e-8)

    anchor_n = _normalize(anchor)
    positive_n = _normalize(positive)
    negatives_n = _normalize(negatives)
    pos_sim = (anchor_n * positive_n).sum() * (1.0 / temperature)
    neg_sims = negatives_n.matmul(anchor_n) * (1.0 / temperature)
    from .tensor import concatenate

    all_sims = concatenate([pos_sim.reshape(1), neg_sims.reshape(-1)], axis=0)
    log_probs = all_sims.log_softmax(axis=0)
    return -(log_probs[0])
