"""Scaled dot-product and multi-head attention.

The paper uses attention in three roles:

* the standard multi-head *self*-attention inside the segment-level encoders
  (Eq. 1, Sec. IV-B/IV-C);
* the segment-level cross-modal attention (SL-SAN) that scores each line
  segment against each data segment (Sec. IV-D);
* the line-to-column cross-modal attention (LL-SAN) that scores each line
  against each column (Sec. IV-D).

The cross-modal variants are implemented by :class:`CrossAttention`, which
computes attention of a *query sequence* over a *key/value sequence* and also
exposes the raw attention weights so the matcher can reconstruct
relevance-weighted representations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor, where


def masked_keep(values: Tensor, keep: np.ndarray, fill: float) -> Tensor:
    """Keep positions where ``keep`` is True; replace the rest by ``fill``.

    The building block of padding-aware batched attention: filling with
    ``-inf`` excludes positions from subsequent ``max``/``softmax`` *exactly*
    (the losing max candidates are ``-inf`` and ``exp(-inf) == 0``), which is
    what keeps the batched matcher score-identical to its per-pair
    counterpart.  Differentiable: filled positions receive zero gradient.

    Note the convention: ``keep`` is a *validity* mask (True = real data), the
    opposite of ``torch.Tensor.masked_fill``, whose mask marks the positions
    to overwrite — hence the different name.  The fill value is lifted to
    ``values``' dtype, so masking follows the active precision policy.
    """
    return where(np.asarray(keep, dtype=bool), values, fill)


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tuple[Tensor, Tensor]:
    """Compute ``softmax(QK^T / sqrt(d)) V``.

    Parameters
    ----------
    query, key, value:
        Tensors of shape ``(..., seq_q, d)``, ``(..., seq_k, d)`` and
        ``(..., seq_k, d_v)``.
    mask:
        Optional boolean array broadcastable to ``(..., seq_q, seq_k)``;
        positions where the mask is ``False`` receive ``-inf`` scores.

    Returns
    -------
    (output, weights):
        ``output`` has shape ``(..., seq_q, d_v)`` and ``weights`` has shape
        ``(..., seq_q, seq_k)``.
    """
    d = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        # The penalty array is lifted to the scores' dtype by the op itself.
        penalty = np.where(np.asarray(mask, dtype=bool), 0.0, -1e9)
        scores = scores + penalty
    weights = scores.softmax(axis=-1)
    return weights.matmul(value), weights


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention (MSA block in Eq. 1).

    Input and output shape: ``(batch, seq, embed_dim)`` or ``(seq, embed_dim)``.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(
                f"embed_dim ({embed_dim}) must be divisible by num_heads ({num_heads})"
            )
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def _split_heads(self, x: Tensor, batched: bool) -> Tensor:
        """Reshape ``(..., seq, embed)`` to ``(..., heads, seq, head_dim)``."""
        if batched:
            batch, seq, _ = x.shape
            x = x.reshape(batch, seq, self.num_heads, self.head_dim)
            return x.transpose(0, 2, 1, 3)
        seq, _ = x.shape
        x = x.reshape(seq, self.num_heads, self.head_dim)
        return x.transpose(1, 0, 2)

    def _merge_heads(self, x: Tensor, batched: bool) -> Tensor:
        """Inverse of :meth:`_split_heads`."""
        if batched:
            batch, _, seq, _ = x.shape
            x = x.transpose(0, 2, 1, 3)
            return x.reshape(batch, seq, self.embed_dim)
        _, seq, _ = x.shape
        x = x.transpose(1, 0, 2)
        return x.reshape(seq, self.embed_dim)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        batched = x.ndim == 3
        q = self._split_heads(self.q_proj(x), batched)
        k = self._split_heads(self.k_proj(x), batched)
        v = self._split_heads(self.v_proj(x), batched)
        attended, _ = scaled_dot_product_attention(q, k, v, mask=mask)
        merged = self._merge_heads(attended, batched)
        out = self.out_proj(merged)
        if self.dropout is not None:
            out = self.dropout(out)
        return out


class CrossAttention(Module):
    """Single-head cross attention used by SL-SAN and LL-SAN (Sec. IV-D).

    Given a query sequence (e.g. line-segment representations) and a context
    sequence (e.g. data-segment representations), produce the
    relevance-weighted reconstruction of the query from the context, plus the
    attention weights themselves, which are the fine-grained relevance scores
    described in the paper.
    """

    def __init__(
        self,
        embed_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)

    def forward(
        self, query_seq: Tensor, context_seq: Tensor
    ) -> Tuple[Tensor, Tensor]:
        """Attend ``query_seq`` over ``context_seq``.

        Both arguments have shape ``(seq, embed_dim)`` (or a leading batch
        dimension).  Returns ``(reconstructed, weights)`` where
        ``reconstructed`` has the query's shape and ``weights`` has shape
        ``(seq_q, seq_k)``.
        """
        q = self.q_proj(query_seq)
        k = self.k_proj(context_seq)
        v = self.v_proj(context_seq)
        return scaled_dot_product_attention(q, k, v)
