"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_state_dict(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save a module's parameters (and optional JSON metadata) to ``path``.

    The archive stores one array per parameter under its qualified name plus
    an optional ``__metadata__`` entry containing a JSON string.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    arrays: Dict[str, np.ndarray] = dict(state)
    if metadata is not None:
        arrays["__metadata__"] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **arrays)
    # ``np.savez`` appends .npz if missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_state_dict(
    module: Module,
    path: PathLike,
    strict: bool = True,
) -> Dict[str, object]:
    """Load parameters saved by :func:`save_state_dict` into ``module``.

    Returns the metadata dictionary stored alongside the parameters (empty if
    none was stored).
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata: Dict[str, object] = {}
    raw_meta = arrays.pop("__metadata__", None)
    if raw_meta is not None:
        metadata = json.loads(bytes(raw_meta).decode("utf-8"))
    module.load_state_dict(arrays, strict=strict)
    return metadata
