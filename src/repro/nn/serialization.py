"""Saving and loading model parameters as ``.npz`` archives.

Checkpoints record the parameters' dtype alongside the arrays (under the
reserved ``dtype`` metadata key), and loading is **load-and-cast**: values
are cast to the receiving module's own parameter dtype, so a float64
checkpoint restores cleanly into a float32 module (and vice versa).  The
recorded dtype is returned in the metadata for callers that want to check
what precision a file was trained under.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]

#: Reserved metadata key recording the parameters' dtype at save time.
DTYPE_METADATA_KEY = "dtype"


def save_state_dict(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save a module's parameters (and optional JSON metadata) to ``path``.

    The archive stores one array per parameter under its qualified name plus
    a ``__metadata__`` entry containing a JSON string.  The parameters'
    dtype is always recorded under the reserved ``"dtype"`` metadata key
    (caller-supplied metadata must not use it).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    arrays: Dict[str, np.ndarray] = dict(state)
    meta: Dict[str, object] = dict(metadata or {})
    if DTYPE_METADATA_KEY in meta:
        raise ValueError(
            f"metadata key {DTYPE_METADATA_KEY!r} is reserved for the "
            "checkpoint's parameter dtype"
        )
    module_dtype = module.dtype
    if module_dtype is not None:
        meta[DTYPE_METADATA_KEY] = np.dtype(module_dtype).name
    arrays["__metadata__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    # ``np.savez`` appends .npz if missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_state_dict(
    module: Module,
    path: PathLike,
    strict: bool = True,
) -> Dict[str, object]:
    """Load parameters saved by :func:`save_state_dict` into ``module``.

    Values are cast to the module's own parameter dtype (load-and-cast); the
    checkpoint's recorded dtype is available in the returned metadata under
    ``"dtype"`` (absent for pre-policy checkpoints, which were always
    float64).  Returns the metadata dictionary stored alongside the
    parameters (empty if none was stored).
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    metadata: Dict[str, object] = {}
    raw_meta = arrays.pop("__metadata__", None)
    if raw_meta is not None:
        metadata = json.loads(bytes(raw_meta).decode("utf-8"))
    module.load_state_dict(arrays, strict=strict)
    return metadata
