"""Process-wide numeric precision policy for the NumPy engine.

Everything in ``repro.nn`` used to run in hardwired float64.  This module
makes the working precision a first-class *policy*: a process-wide default
dtype consulted wherever the engine materialises a float array — tensor
creation, scalar lifting inside ops, parameter initialisation, optimizer
state (which follows the parameters), and the factory helpers.

The policy is resolved in this order:

1. :func:`set_default_dtype` / the :class:`using_dtype` context manager
   (programmatic control, innermost scope wins);
2. the ``REPRO_DTYPE`` environment variable (``"float32"``/``"float64"``),
   read once at import;
3. float64, the historical default — under it every computation is
   bit-for-bit identical to the pre-policy engine.

Accumulation exceptions
-----------------------
Reductions are numerically fragile in float32, so a few well-defined spots
always *accumulate* in float64 and cast the result back to the policy dtype:
``Tensor.sum`` (hence ``mean``/``var``, LayerNorm statistics and every loss
reduction built on them) and the softmax / log-softmax denominators.  Matrix
multiplication accumulates in the input precision (that is where the float32
bandwidth win comes from).  In float64 mode the extra ``dtype=`` arguments
are no-ops, preserving bitwise equality with the historical engine.

Example
-------
>>> from repro.nn import default_dtype, set_default_dtype, using_dtype
>>> default_dtype()
dtype('float64')
>>> with using_dtype("float32"):
...     assert default_dtype() == np.float32
>>> default_dtype()                      # restored on exit
dtype('float64')
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

#: The precisions the engine supports end to end.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_ENV_FLAG = "REPRO_DTYPE"


def resolve_dtype(dtype: Optional[DTypeLike] = None) -> np.dtype:
    """Normalise ``dtype`` to a supported ``np.dtype`` (None → the default).

    Raises ``ValueError`` for anything other than float32/float64 — the
    engine's ops, losses and serialization are only validated for these two.
    """
    if dtype is None:
        return default_dtype()
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype!r}; expected one of "
            f"{[d.name for d in SUPPORTED_DTYPES]}"
        )
    return resolved


def _initial_default() -> np.dtype:
    env = os.environ.get(_ENV_FLAG)
    if env is None:
        return np.dtype(np.float64)
    try:
        return resolve_dtype(env)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"invalid {_ENV_FLAG}={env!r}; expected 'float32' or 'float64'"
        ) from exc


_DEFAULT_DTYPE: np.dtype = _initial_default()


def default_dtype() -> np.dtype:
    """The dtype new tensors (and lifted scalars) are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the process-wide default dtype; returns the previous one.

    Existing tensors and parameters keep their dtype — the policy only
    affects arrays created afterwards.  Prefer :class:`using_dtype` for
    scoped changes.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolve_dtype(dtype)
    return previous


class using_dtype:
    """Context manager scoping the default dtype (reentrant, restores on exit).

    Example
    -------
    >>> with using_dtype(np.float32):
    ...     w = Tensor.randn((4, 4))
    >>> w.dtype
    dtype('float32')
    """

    def __init__(self, dtype: DTypeLike) -> None:
        self._dtype = resolve_dtype(dtype)
        self._outer: list = []

    def __enter__(self) -> "using_dtype":
        self._outer.append(set_default_dtype(self._dtype))
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        set_default_dtype(self._outer.pop())
        return False
