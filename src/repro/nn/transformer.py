"""Transformer encoder stack used by both segment-level encoders.

Eq. 1 in the paper describes a pre-norm transformer: each block applies

    u' = MSA(LN(u)) + u
    u  = MLP(LN(u')) + u'

This module implements exactly that block (:class:`TransformerEncoderLayer`)
and a stack of ``J`` such blocks (:class:`TransformerEncoder`), together with
the learnable positional embedding that is added to the input sequence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import Dropout, LayerNorm, Linear, PositionalEmbedding
from .module import Module, ModuleList
from .tensor import Tensor


class FeedForward(Module):
    """Position-wise two-layer feed-forward network with GELU activation."""

    def __init__(
        self,
        embed_dim: int,
        hidden_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(embed_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        x = self.fc1(x).gelu()
        if self.dropout is not None:
            x = self.dropout(x)
        return self.fc2(x)


class TransformerEncoderLayer(Module):
    """A single pre-norm transformer encoder block (one line of Eq. 1)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 2.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadSelfAttention(embed_dim, num_heads, dropout=dropout, rng=rng)
        self.norm2 = LayerNorm(embed_dim)
        self.ffn = FeedForward(embed_dim, int(embed_dim * mlp_ratio), dropout=dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = self.attn(self.norm1(x), mask=mask) + x
        x = self.ffn(self.norm2(x)) + x
        return x


class TransformerEncoder(Module):
    """A stack of ``num_layers`` pre-norm transformer blocks.

    Parameters
    ----------
    embed_dim:
        Embedding size ``K`` in the paper (768 in the paper's configuration,
        reduced by default in this reproduction).
    num_heads:
        Number of attention heads.
    num_layers:
        ``J`` in Eq. 1.
    max_positions:
        Maximum sequence length for the learnable positional embedding;
        ``None`` disables positional embeddings (used when the caller adds
        its own).
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        num_layers: int,
        mlp_ratio: float = 2.0,
        dropout: float = 0.0,
        max_positions: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.pos_embedding = (
            PositionalEmbedding(max_positions, embed_dim, rng=rng)
            if max_positions is not None
            else None
        )
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    embed_dim, num_heads, mlp_ratio=mlp_ratio, dropout=dropout, rng=rng
                )
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(embed_dim)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Encode a sequence of shape ``(seq, embed_dim)`` or batched."""
        if self.pos_embedding is not None:
            x = self.pos_embedding(x)
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)
