"""``repro.nn`` — a from-scratch NumPy deep-learning engine.

This package is the substrate substituting for PyTorch in the reproduction of
"Dataset Discovery via Line Charts".  It provides reverse-mode autodiff
(:mod:`repro.nn.tensor`), module/parameter management, the layers used by the
paper (linear projections, layer norm, MLPs, multi-head attention, transformer
encoders), optimizers and losses.

The working precision is a process-wide policy (:mod:`repro.nn.dtype`):
float64 by default — bit-for-bit the historical engine — or float32 for a
~2x memory/bandwidth win, selected via ``REPRO_DTYPE``,
:func:`set_default_dtype` or the :class:`using_dtype` context manager.
"""

from .attention import (
    CrossAttention,
    MultiHeadSelfAttention,
    masked_keep,
    scaled_dot_product_attention,
)
from .dtype import (
    SUPPORTED_DTYPES,
    default_dtype,
    resolve_dtype,
    set_default_dtype,
    using_dtype,
)
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, PositionalEmbedding
from .losses import (
    balanced_binary_cross_entropy,
    binary_cross_entropy,
    contrastive_cosine_loss,
    cross_entropy,
    mse_loss,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import Adam, CosineAnnealingLR, GradientClipper, Optimizer, SGD, StepLR
from .serialization import load_state_dict, save_state_dict
from .tensor import (
    Tensor,
    concatenate,
    enable_grad,
    is_grad_enabled,
    no_grad,
    pad,
    pad_stack,
    stack,
    where,
)
from .transformer import FeedForward, TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Adam",
    "CosineAnnealingLR",
    "CrossAttention",
    "Dropout",
    "Embedding",
    "FeedForward",
    "GradientClipper",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "ModuleList",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "PositionalEmbedding",
    "SGD",
    "SUPPORTED_DTYPES",
    "Sequential",
    "StepLR",
    "Tensor",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "balanced_binary_cross_entropy",
    "binary_cross_entropy",
    "concatenate",
    "contrastive_cosine_loss",
    "cross_entropy",
    "default_dtype",
    "enable_grad",
    "is_grad_enabled",
    "load_state_dict",
    "masked_keep",
    "mse_loss",
    "no_grad",
    "pad",
    "pad_stack",
    "resolve_dtype",
    "save_state_dict",
    "scaled_dot_product_attention",
    "set_default_dtype",
    "stack",
    "using_dtype",
    "where",
]
