"""Base classes for trainable modules built on the NumPy autograd engine.

``Module`` mirrors the familiar PyTorch contract: parameters and submodules
registered as attributes are discovered automatically, ``parameters()`` walks
the tree, ``state_dict()`` / ``load_state_dict()`` provide (de)serialisation,
and ``train()`` / ``eval()`` toggle behaviour of layers such as dropout.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor, no_grad


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module.

    Created in the process-wide policy dtype unless ``dtype`` pins one (see
    :mod:`repro.nn.dtype`); gradients and optimizer state follow the
    parameter's dtype, not the policy at backward time.
    """

    def __init__(self, data, name: Optional[str] = None, dtype=None) -> None:
        super().__init__(data, requires_grad=True, name=name, dtype=dtype)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are picked up automatically by :meth:`parameters`,
    :meth:`named_parameters` and :meth:`state_dict`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return a list of all parameters in the module tree."""
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(param.size for param in self.parameters())

    def parameter_nbytes(self) -> int:
        """Total bytes held by the parameters (halves under float32)."""
        return sum(param.data.nbytes for param in self.parameters())

    @property
    def dtype(self):
        """The parameters' dtype (``None`` for a parameter-less module).

        Mixed-precision module trees are not supported by the engine, so the
        first parameter's dtype is authoritative.
        """
        for _, param in self.named_parameters():
            return param.data.dtype
        return None

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter (and its gradient) in place; returns self.

        The in-place analogue of constructing the module under
        :class:`repro.nn.using_dtype`; optimizer state created *before* the
        cast keeps its old dtype, so cast before building the optimizer.
        """
        from .dtype import resolve_dtype

        target = resolve_dtype(dtype)
        for _, param in self.named_parameters():
            param.data = param.data.astype(target, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(target, copy=False)
        return self

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    @contextmanager
    def inference(self):
        """Evaluation mode + :class:`~repro.nn.tensor.no_grad`, restored on exit.

        The standard wrapper for query-time forward passes: dropout is
        disabled and no computation graph is built, and the module's previous
        training mode is reinstated afterwards so a trainer can interleave
        evaluation callbacks without bookkeeping.

        Example
        -------
        >>> model.train()                      # mid-training evaluation
        >>> with model.inference():
        ...     score = model.forward(chart_input, table_input).item()
        >>> model.training                     # training mode restored
        True
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                yield self
        finally:
            self.train(was_training)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of qualified parameter names to arrays."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from ``state`` in place.

        Parameters
        ----------
        state:
            Mapping produced by :meth:`state_dict`.
        strict:
            When true (default), missing or unexpected keys raise ``KeyError``
            and shape mismatches raise ``ValueError``.

        Values are cast to each parameter's own dtype (load-and-cast): a
        float64 checkpoint loads cleanly into a float32 module and vice
        versa — precision follows the *module*, not the file.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------ #
    # Calling convention
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Apply child modules in order, feeding each output into the next."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.add_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class ModuleList(Module):
    """A list of child modules, registered so their parameters are tracked."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]
