"""Optimizers and learning-rate schedules for the NumPy engine.

The paper trains FCM with Adam (learning rate 1e-6, 60 epochs); SGD is also
provided because ablation experiments in the appendix discuss SGD-based
mini-batch training.

Optimizer state (SGD velocity, Adam first/second moments) is allocated with
``np.zeros_like`` on the parameters, so it always follows the *parameter*
dtype — under the float32 policy (:mod:`repro.nn.dtype`) Adam's state
shrinks 2x along with the weights, and gradients arrive pre-cast to the
parameter dtype by the autodiff engine.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias_correction1 = 1.0 - self.beta1 ** self._t
        bias_correction2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class GradientClipper:
    """Clip gradients by global L2 norm before an optimizer step."""

    def __init__(self, max_norm: float) -> None:
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def clip(self, parameters: Iterable[Parameter]) -> float:
        """Clip in place and return the pre-clip global norm."""
        params = [p for p in parameters if p.grad is not None]
        if not params:
            return 0.0
        total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
        if total > self.max_norm:
            scale = self.max_norm / (total + 1e-12)
            for p in params:
                p.grad = p.grad * scale
        return total


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self.base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        exponent = self._epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** exponent)


class CosineAnnealingLR:
    """Cosine-annealed learning rate from the base value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._epoch = 0
        self.base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        factor = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * factor
