"""Parameter initialisation schemes used by the NumPy neural-network engine.

Each function returns a plain ``numpy.ndarray``; wrapping it into a
:class:`~repro.nn.tensor.Tensor` parameter is the caller's job (usually a
:class:`~repro.nn.module.Module` subclass).

Precision policy: every scheme draws its random values in float64 — so the
value stream is identical whatever the active dtype, and float32 parameters
are exactly the rounded float64 ones — and casts the result to ``dtype``
(``None`` = the process-wide policy dtype, see :mod:`repro.nn.dtype`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .dtype import resolve_dtype


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_in, fan_out) for a weight of ``shape``.

    For 2-D weights this is ``(in_features, out_features)``; for higher-rank
    weights the receptive-field size multiplies both fans, mirroring the
    convention used by PyTorch.
    """
    if len(shape) < 2:
        fan = int(shape[0]) if shape else 1
        return fan, fan
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    gain: float = 1.0,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype), copy=False)


def xavier_normal(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    gain: float = 1.0,
    dtype=None,
) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    nonlinearity: str = "relu",
    dtype=None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-family activations."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype), copy=False)


def kaiming_normal(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    nonlinearity: str = "relu",
    dtype=None,
) -> np.ndarray:
    """He/Kaiming normal initialisation for ReLU-family activations."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def zeros(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def ones(shape: Tuple[int, ...], dtype=None) -> np.ndarray:
    """All-one initialisation (used for LayerNorm scale)."""
    return np.ones(shape, dtype=resolve_dtype(dtype))


def normal(
    shape: Tuple[int, ...],
    rng: Optional[np.random.Generator] = None,
    std: float = 0.02,
    dtype=None,
) -> np.ndarray:
    """Small-std normal initialisation (used for positional embeddings)."""
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)
