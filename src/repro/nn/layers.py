"""Core trainable layers: Linear, MLP, LayerNorm, Dropout, Embedding.

These are the building blocks referenced throughout the paper: the trainable
linear projection that maps line-segment images and data segments to
embeddings (Sec. IV-B/IV-C), the layer normalisation used inside the
transformer blocks (Eq. 1), the two-layer MLPs used by the transformation
layers and HMRL (Sec. V-B/V-C), and the MLP head of the cross-modal matcher
(Sec. IV-D).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


def _resolve_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Map an activation name to a Tensor method."""
    table = {
        "relu": Tensor.relu,
        "gelu": Tensor.gelu,
        "tanh": Tensor.tanh,
        "sigmoid": Tensor.sigmoid,
        "leaky_relu": Tensor.leaky_relu,
        "identity": lambda t: t,
    }
    if name not in table:
        raise ValueError(f"unknown activation {name!r}; expected one of {sorted(table)}")
    return table[name]


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality of the last axis.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for weight initialisation (Xavier uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng=rng), name="weight"
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / ((var + self.eps) ** 0.5)
        return normalized * self.weight + self.bias

    def __repr__(self) -> str:  # pragma: no cover
        return f"LayerNorm({self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout; active only while the module is in training mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = self._rng.random(x.shape) < keep
        # The mask array is lifted to x's dtype by the multiply itself.
        return x * (mask / keep)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(p={self.p})"


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    The paper uses two-layer MLPs in several places (transformation layers,
    HMRL combination function, matcher head); this class covers all of them.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "relu",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.activation_name = activation
        self._activation = _resolve_activation(activation)
        sizes = [in_features, *hidden_features, out_features]
        self.layers = []
        for i, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(n_in, n_out, rng=rng)
            self.add_module(f"fc{i}", layer)
            self.layers.append(layer)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self._activation(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), rng=rng), name="weight"
        )

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        return self.weight[idx]


class PositionalEmbedding(Module):
    """Learnable positional embeddings ``E_pos`` as used in Eq. 1."""

    def __init__(
        self,
        max_positions: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.max_positions = max_positions
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((max_positions, embedding_dim), rng=rng), name="weight"
        )

    def forward(self, x: Tensor) -> Tensor:
        """Add positional embeddings to ``x`` of shape ``(..., seq, dim)``."""
        seq_len = x.shape[-2]
        if seq_len > self.max_positions:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_positions {self.max_positions}"
            )
        return x + self.weight[:seq_len]
