"""Experiment harness: one runner per table/figure of the paper's evaluation.

Every runner consumes a :class:`~repro.bench.builder.Benchmark` plus a set of
trained :class:`~repro.baselines.base.DiscoveryMethod` instances and returns a
plain, JSON-serialisable structure with the same rows/columns the paper
reports.  FCM-backed methods score queries through the batched no-grad
inference path (:meth:`repro.fcm.scorer.FCMScorer.score_chart_batch`), which
is score-equivalent to the per-pair loop but amortises the matcher over all
candidate tables at once.  The ``benchmarks/`` directory contains one pytest-benchmark target
per runner; ``EXPERIMENTS.md`` records paper-vs-measured values.

The experiment *scale* (corpus size, training epochs, k, …) is factored into
:class:`ExperimentScale` with two presets:

* :func:`smoke_scale` — minutes-of-seconds sized, used by the unit tests;
* :func:`default_scale` — the configuration used for the reported benchmark
  run (tens of minutes on a laptop CPU).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.ablations import FCMMethod, train_fcm_variant
from ..baselines.base import DiscoveryMethod
from ..baselines.cml import CMLConfig, CMLMethod, train_cml
from ..baselines.de_ln import DELNMethod, OptLNMethod
from ..baselines.linenet import LineNetConfig, train_linenet
from ..baselines.qetch import QetchConfig, QetchStarMethod
from ..data.aggregation import window_bucket
from ..fcm.config import FCMConfig
from ..fcm.model import FCMModel
from ..fcm.scorer import FCMScorer
from ..fcm.training import (
    FCMTrainer,
    TrainerConfig,
    build_training_data,
    relevance_matrix,
    train_fcm,
)
from ..index.hybrid import INDEXING_STRATEGIES, HybridQueryProcessor
from ..index.lsh import LSHConfig
from ..vision.extractor import VisualElementExtractor
from .builder import Benchmark, BenchmarkConfig, BenchmarkQuery, build_benchmark
from .metrics import ndcg_at_k, precision_at_k

LINE_BUCKETS = ("1", "2-4", "5-7", ">7")
AGGREGATION_OPERATORS_ORDER = ("min", "max", "sum", "avg")
WINDOW_BUCKETS = ("0-10", "20-40", "40-60", "60-80", "80-100")


# --------------------------------------------------------------------------- #
# Scale presets
# --------------------------------------------------------------------------- #
@dataclass
class ExperimentScale:
    """All size knobs of one experiment campaign."""

    benchmark: BenchmarkConfig = field(default_factory=BenchmarkConfig)
    fcm: FCMConfig = field(default_factory=FCMConfig)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    cml: CMLConfig = field(default_factory=CMLConfig)
    linenet: LineNetConfig = field(default_factory=LineNetConfig)
    aggregated_fraction: float = 0.5
    sweep_epochs: int = 6
    sweep_train_records: int = 20
    eval_queries_for_sweeps: int = 8

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


def smoke_scale() -> ExperimentScale:
    """Tiny configuration used by the unit/integration tests."""
    return ExperimentScale(
        benchmark=BenchmarkConfig(
            corpus_records=26,
            train_records=10,
            validation_records=4,
            query_records=4,
            noisy_copies_per_query=3,
            k=3,
            min_rows=80,
            max_rows=140,
            relevance_max_points=32,
            seed=5,
        ),
        fcm=FCMConfig(
            embed_dim=16,
            num_heads=2,
            num_layers=1,
            data_segment_size=32,
            beta=2,
            max_data_segments=4,
        ),
        trainer=TrainerConfig(epochs=2, batch_size=6, num_negatives=2, learning_rate=2e-3),
        cml=CMLConfig(embed_dim=16, epochs=2),
        linenet=LineNetConfig(embed_dim=16, epochs=2),
        sweep_epochs=1,
        sweep_train_records=6,
        eval_queries_for_sweeps=3,
    )


def default_scale() -> ExperimentScale:
    """The configuration used for the reported benchmark run.

    Sized so the full suite (benchmark construction, training FCM and its two
    ablations, training the learned baselines, and every table/figure runner)
    completes in roughly 15-20 minutes on a single laptop CPU core.
    """
    return ExperimentScale(
        benchmark=BenchmarkConfig(
            corpus_records=90,
            train_records=36,
            validation_records=10,
            query_records=10,
            noisy_copies_per_query=6,
            k=6,
            max_rows=220,
        ),
        fcm=FCMConfig(),
        trainer=TrainerConfig(epochs=12, batch_size=8, num_negatives=3, learning_rate=2e-3),
        cml=CMLConfig(epochs=6),
        linenet=LineNetConfig(epochs=5),
        sweep_epochs=3,
        sweep_train_records=14,
        eval_queries_for_sweeps=5,
    )


# --------------------------------------------------------------------------- #
# Evaluation helpers
# --------------------------------------------------------------------------- #
@dataclass
class QueryEvaluation:
    """Metrics and metadata of one (method, query) evaluation."""

    method: str
    query_id: str
    prec: float
    ndcg: float
    num_lines: int
    line_bucket: str
    is_aggregated: bool
    operator: Optional[str]
    window: Optional[int]


def evaluate_method(
    method: DiscoveryMethod,
    benchmark: Benchmark,
    queries: Optional[Sequence[BenchmarkQuery]] = None,
) -> List[QueryEvaluation]:
    """Run every query through ``method`` and compute prec@k / ndcg@k."""
    queries = list(queries) if queries is not None else benchmark.queries
    results: List[QueryEvaluation] = []
    for query in queries:
        retrieved = method.top_k_ids(query.chart, benchmark.k)
        results.append(
            QueryEvaluation(
                method=method.name,
                query_id=query.query_id,
                prec=precision_at_k(retrieved, query.relevant, benchmark.k),
                ndcg=ndcg_at_k(retrieved, query.relevant, benchmark.k),
                num_lines=query.num_lines,
                line_bucket=query.line_bucket,
                is_aggregated=query.is_aggregated,
                operator=query.aggregation.operator if query.aggregation else None,
                window=query.aggregation.window if query.aggregation else None,
            )
        )
    return results


def summarize(evaluations: Sequence[QueryEvaluation]) -> Dict[str, float]:
    """Mean prec@k / ndcg@k over a set of per-query evaluations."""
    if not evaluations:
        return {"prec": 0.0, "ndcg": 0.0, "queries": 0}
    return {
        "prec": float(np.mean([e.prec for e in evaluations])),
        "ndcg": float(np.mean([e.ndcg for e in evaluations])),
        "queries": len(evaluations),
    }


# --------------------------------------------------------------------------- #
# Method construction
# --------------------------------------------------------------------------- #
def train_baseline_methods(
    benchmark: Benchmark,
    scale: ExperimentScale,
    extractor: Optional[VisualElementExtractor] = None,
) -> Dict[str, DiscoveryMethod]:
    """Train and index CML, DE-LN, Opt-LN and Qetch* on the benchmark."""
    extractor = extractor or VisualElementExtractor()
    chart_spec = scale.benchmark.chart_spec
    methods: Dict[str, DiscoveryMethod] = {}

    cml_model, _ = train_cml(benchmark.train_records, config=scale.cml, chart_spec=chart_spec)
    methods["CML"] = CMLMethod(cml_model)

    linenet_model, _ = train_linenet(
        benchmark.train_records, config=scale.linenet, chart_spec=chart_spec
    )
    methods["DE-LN"] = DELNMethod(linenet_model, chart_spec=chart_spec)
    specs = {
        record.table.table_id: record.spec
        for record in benchmark.train_records
        + benchmark.validation_records
    }
    # Noisy copies and query tables share the source's spec when available.
    for query in benchmark.queries:
        source = query.source_table_id
        for record in benchmark.train_records + benchmark.validation_records:
            if record.table.table_id == source:
                specs[source] = record.spec
    methods["Opt-LN"] = OptLNMethod(linenet_model, specs=specs, chart_spec=chart_spec)

    methods["Qetch*"] = QetchStarMethod(extractor=extractor)

    for method in methods.values():
        method.index_repository(benchmark.repository)
    return methods


def train_fcm_methods(
    benchmark: Benchmark,
    scale: ExperimentScale,
    variants: Sequence[str] = ("FCM",),
    extractor: Optional[VisualElementExtractor] = None,
) -> Dict[str, FCMMethod]:
    """Train and index the requested FCM variants (full model and ablations)."""
    extractor = extractor or VisualElementExtractor()
    methods: Dict[str, FCMMethod] = {}
    for variant in variants:
        method, _ = train_fcm_variant(
            variant,
            benchmark.train_records,
            base_config=scale.fcm,
            trainer_config=scale.trainer,
            extractor=extractor,
            aggregated_fraction=scale.aggregated_fraction,
        )
        method.index_repository(benchmark.repository)
        methods[variant] = method
    return methods


# --------------------------------------------------------------------------- #
# Table I — benchmark statistics
# --------------------------------------------------------------------------- #
def run_table1(benchmark: Benchmark) -> Dict[str, Dict[str, int]]:
    """Benchmark statistics: query / repository counts per line-count bucket."""
    return benchmark.statistics()


# --------------------------------------------------------------------------- #
# Table II — overall effectiveness, with/without aggregation
# --------------------------------------------------------------------------- #
def run_table2(
    methods: Dict[str, DiscoveryMethod], benchmark: Benchmark
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Overall / with-DA / without-DA prec@k and ndcg@k per method."""
    result: Dict[str, Dict[str, Dict[str, float]]] = {
        "overall": {},
        "with_da": {},
        "without_da": {},
    }
    for name, method in methods.items():
        evaluations = evaluate_method(method, benchmark)
        result["overall"][name] = summarize(evaluations)
        result["with_da"][name] = summarize([e for e in evaluations if e.is_aggregated])
        result["without_da"][name] = summarize(
            [e for e in evaluations if not e.is_aggregated]
        )
    return result


# --------------------------------------------------------------------------- #
# Table III — effectiveness vs number of lines
# --------------------------------------------------------------------------- #
def run_table3(
    methods: Dict[str, DiscoveryMethod], benchmark: Benchmark
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """prec@k / ndcg@k per line-count bucket per method."""
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    cache = {name: evaluate_method(method, benchmark) for name, method in methods.items()}
    for bucket in LINE_BUCKETS:
        result[bucket] = {}
        for name, evaluations in cache.items():
            result[bucket][name] = summarize(
                [e for e in evaluations if e.line_bucket == bucket]
            )
    return result


# --------------------------------------------------------------------------- #
# Table IV — DA breakdown by operator and window size
# --------------------------------------------------------------------------- #
def run_table4(
    method: DiscoveryMethod, benchmark: Benchmark
) -> Dict[str, Dict[str, float]]:
    """prec@k per aggregation operator × window bucket for one method (FCM)."""
    evaluations = [e for e in evaluate_method(method, benchmark) if e.is_aggregated]
    result: Dict[str, Dict[str, float]] = {}
    for operator in AGGREGATION_OPERATORS_ORDER:
        result[operator] = {}
        for bucket in WINDOW_BUCKETS:
            matching = [
                e
                for e in evaluations
                if e.operator == operator and window_bucket(e.window or 0) == bucket
            ]
            result[operator][bucket] = summarize(matching)["prec"] if matching else float("nan")
    return result


# --------------------------------------------------------------------------- #
# Table V — FCM vs FCM−HCMAN
# --------------------------------------------------------------------------- #
def run_table5(
    fcm: DiscoveryMethod, fcm_without_hcman: DiscoveryMethod, benchmark: Benchmark
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Overall and per-bucket comparison of FCM and the HCMAN ablation."""
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    evals = {
        "FCM": evaluate_method(fcm, benchmark),
        "FCM-HCMAN": evaluate_method(fcm_without_hcman, benchmark),
    }
    result["overall"] = {name: summarize(e) for name, e in evals.items()}
    for bucket in LINE_BUCKETS:
        result[bucket] = {
            name: summarize([q for q in e if q.line_bucket == bucket])
            for name, e in evals.items()
        }
    return result


# --------------------------------------------------------------------------- #
# Table VI — impact of the DA layers
# --------------------------------------------------------------------------- #
def run_table6(
    fcm: DiscoveryMethod, fcm_without_da: DiscoveryMethod, benchmark: Benchmark
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Overall / with-DA / without-DA comparison of FCM and the DA ablation."""
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    evals = {
        "FCM": evaluate_method(fcm, benchmark),
        "FCM-DA": evaluate_method(fcm_without_da, benchmark),
    }
    result["overall"] = {name: summarize(e) for name, e in evals.items()}
    result["with_da"] = {
        name: summarize([q for q in e if q.is_aggregated]) for name, e in evals.items()
    }
    result["without_da"] = {
        name: summarize([q for q in e if not q.is_aggregated]) for name, e in evals.items()
    }
    return result


# --------------------------------------------------------------------------- #
# Table VII — segment sizes P1 × P2
# --------------------------------------------------------------------------- #
def run_table7(
    benchmark: Benchmark,
    scale: ExperimentScale,
    p1_values: Sequence[int] = (30, 60, 120),
    p2_values: Sequence[int] = (32, 64, 128),
) -> Dict[Tuple[int, int], float]:
    """prec@k for a grid of line-segment (P1) and data-segment (P2) sizes.

    Each grid cell trains a fresh (short-budget) FCM; the sweep uses a subset
    of training records and queries so its cost stays linear in the grid size.
    """
    extractor = VisualElementExtractor()
    train_records = benchmark.train_records[: scale.sweep_train_records]
    queries = benchmark.queries[: scale.eval_queries_for_sweeps]
    trainer_config = replace(scale.trainer, epochs=scale.sweep_epochs)
    results: Dict[Tuple[int, int], float] = {}
    for p1 in p1_values:
        for p2 in p2_values:
            config = scale.fcm.with_overrides(
                line_segment_width=p1, data_segment_size=p2
            )
            model, _, _ = train_fcm(
                train_records,
                config=config,
                trainer_config=trainer_config,
                extractor=extractor,
                aggregated_fraction=scale.aggregated_fraction,
            )
            method = FCMMethod(model, extractor=extractor, name=f"FCM(P1={p1},P2={p2})")
            method.index_repository(benchmark.repository)
            evaluations = evaluate_method(method, benchmark, queries=queries)
            results[(p1, p2)] = summarize(evaluations)["prec"]
    return results


# --------------------------------------------------------------------------- #
# Table VIII — indexing strategies
# --------------------------------------------------------------------------- #
def run_table8(
    fcm_method: FCMMethod,
    benchmark: Benchmark,
    lsh_config: Optional[LSHConfig] = None,
    queries: Optional[Sequence[BenchmarkQuery]] = None,
) -> Dict[str, Dict[str, float]]:
    """prec@k, ndcg@k, per-query time and candidate counts per index strategy.

    Candidate verification inside :class:`HybridQueryProcessor` runs the
    batched no-grad FCM path (one stacked matcher forward for all surviving
    candidates), so the ``query_seconds`` column reflects the production
    inference engine rather than a per-pair Python loop; see
    ``benchmarks/README.md`` for how to read the timing numbers.
    """
    processor = HybridQueryProcessor(fcm_method.scorer, lsh_config=lsh_config)
    build_stats = processor.index_repository(benchmark.repository.tables)
    queries = list(queries) if queries is not None else benchmark.queries

    results: Dict[str, Dict[str, float]] = {}
    for strategy in INDEXING_STRATEGIES:
        precs, ndcgs, times, candidates = [], [], [], []
        for query in queries:
            outcome = processor.query(query.chart, k=benchmark.k, strategy=strategy)
            retrieved = outcome.top_k_ids(benchmark.k)
            precs.append(precision_at_k(retrieved, query.relevant, benchmark.k))
            ndcgs.append(ndcg_at_k(retrieved, query.relevant, benchmark.k))
            times.append(outcome.seconds)
            candidates.append(outcome.candidates)
        results[strategy] = {
            "prec": float(np.mean(precs)),
            "ndcg": float(np.mean(ndcgs)),
            "query_seconds": float(np.mean(times)),
            "mean_candidates": float(np.mean(candidates)),
        }
    results["_build"] = {
        "interval_seconds": build_stats.interval_seconds,
        "lsh_seconds": build_stats.lsh_seconds,
        "num_tables": float(build_stats.num_tables),
    }
    return results


# --------------------------------------------------------------------------- #
# Table IX — number of negative samples N−
# --------------------------------------------------------------------------- #
def run_table9(
    benchmark: Benchmark,
    scale: ExperimentScale,
    negative_counts: Sequence[int] = (1, 2, 3, 6),
) -> Dict[int, Dict[str, float]]:
    """prec@k / ndcg@k after training with each number of negatives."""
    extractor = VisualElementExtractor()
    train_records = benchmark.train_records[: scale.sweep_train_records]
    queries = benchmark.queries[: scale.eval_queries_for_sweeps]
    data = build_training_data(
        train_records,
        scale.fcm,
        extractor=extractor,
        aggregated_fraction=scale.aggregated_fraction,
        seed=scale.trainer.seed,
    )
    relevance, order = relevance_matrix(
        data.examples, data.tables, max_points=scale.trainer.relevance_max_points
    )
    results: Dict[int, Dict[str, float]] = {}
    for n_neg in negative_counts:
        trainer_config = replace(
            scale.trainer, epochs=scale.sweep_epochs, num_negatives=n_neg
        )
        model = FCMModel(scale.fcm)
        FCMTrainer(model, trainer_config).train(data, relevance=relevance, table_order=order)
        method = FCMMethod(model, extractor=extractor, name=f"FCM(N-={n_neg})")
        method.index_repository(benchmark.repository)
        results[n_neg] = summarize(evaluate_method(method, benchmark, queries=queries))
    return results


# --------------------------------------------------------------------------- #
# Figure 5 — negative sampling strategies vs convergence
# --------------------------------------------------------------------------- #
def run_fig5(
    benchmark: Benchmark,
    scale: ExperimentScale,
    strategies: Sequence[str] = ("semi-hard", "random", "easy", "hard"),
    epochs: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Per-epoch validation prec@k for each negative-sampling strategy."""
    extractor = VisualElementExtractor()
    train_records = benchmark.train_records[: scale.sweep_train_records]
    queries = benchmark.queries[: scale.eval_queries_for_sweeps]
    epochs = epochs or scale.sweep_epochs

    data = build_training_data(
        train_records,
        scale.fcm,
        extractor=extractor,
        aggregated_fraction=scale.aggregated_fraction,
        seed=scale.trainer.seed,
    )
    relevance, order = relevance_matrix(
        data.examples, data.tables, max_points=scale.trainer.relevance_max_points
    )

    def make_eval(model: FCMModel):
        def eval_fn(m: FCMModel) -> float:
            method = FCMMethod(m, extractor=extractor)
            method.index_repository(benchmark.repository)
            return summarize(evaluate_method(method, benchmark, queries=queries))["prec"]

        return eval_fn

    curves: Dict[str, List[float]] = {}
    for strategy in strategies:
        trainer_config = replace(scale.trainer, epochs=epochs, strategy=strategy)
        model = FCMModel(scale.fcm)
        trainer = FCMTrainer(model, trainer_config)
        history = trainer.train(
            data, relevance=relevance, table_order=order, eval_fn=make_eval(model)
        )
        curves[strategy] = [m if m is not None else 0.0 for m in history.eval_metrics]
    return curves
