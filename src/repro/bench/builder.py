"""Benchmark construction (Sec. VII-A), scaled for this reproduction.

The pipeline mirrors the paper's:

1. **Filtering & deduplication** — keep only line-chart records, drop
   near-duplicate tables.
2. **Split** — training, validation and query (test) records.
3. **Query generation** — for each query record, two line chart queries are
   rendered: one directly from its visualization spec and one through a
   randomly sampled aggregation operator and window.
4. **Ground-truth generation** — for each query, ``noisy_copies`` noisy
   near-duplicates of its source table (columns multiplied element-wise by
   ``U(0.9, 1.1)``) are injected into the repository, the ground-truth
   relevance ``Rel(D, T)`` is computed against every repository table, and
   the top-``k`` tables form the relevant set.

The paper uses k = 50 with 50 injected copies per query over a ~10k-table
repository; the scaled defaults keep the same *ratio* (k = number of injected
copies) so prec@k / ndcg@k behave the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..charts.spec import ChartSpec
from ..data.aggregation import AggregationSpec, sample_aggregation_spec
from ..data.corpus import CorpusConfig, CorpusRecord, generate_corpus, line_count_bucket
from ..data.repository import DataRepository
from ..data.split import SplitSizes, filter_line_chart_records, split_corpus
from ..fcm.training import ground_truth_relevance
from ..relevance import RelevanceComputer


@dataclass
class BenchmarkConfig:
    """Sizes and knobs of the scaled benchmark."""

    corpus_records: int = 120
    train_records: int = 45
    validation_records: int = 15
    query_records: int = 12
    noisy_copies_per_query: int = 8
    k: int = 8
    min_rows: int = 100
    max_rows: int = 260
    relevance_max_points: int = 40
    chart_spec: ChartSpec = field(default_factory=ChartSpec)
    seed: int = 11

    def __post_init__(self) -> None:
        total = self.train_records + self.validation_records + self.query_records
        if total > self.corpus_records:
            raise ValueError(
                f"split sizes ({total}) exceed corpus_records ({self.corpus_records})"
            )
        if self.k <= 0 or self.noisy_copies_per_query < 0:
            raise ValueError("k must be positive and noisy_copies_per_query >= 0")


@dataclass
class BenchmarkQuery:
    """One line chart query plus its ground truth."""

    query_id: str
    chart: LineChart
    source_table_id: str
    num_lines: int
    aggregation: Optional[AggregationSpec]
    relevant: Set[str]
    ranked_ground_truth: List[str]

    @property
    def is_aggregated(self) -> bool:
        return self.aggregation is not None and not self.aggregation.is_identity

    @property
    def line_bucket(self) -> str:
        return line_count_bucket(self.num_lines)


@dataclass
class Benchmark:
    """The full evaluation benchmark."""

    config: BenchmarkConfig
    repository: DataRepository
    queries: List[BenchmarkQuery]
    train_records: List[CorpusRecord]
    validation_records: List[CorpusRecord]

    @property
    def k(self) -> int:
        return self.config.k

    def queries_with_aggregation(self, aggregated: bool) -> List[BenchmarkQuery]:
        return [q for q in self.queries if q.is_aggregated == aggregated]

    def queries_in_bucket(self, bucket: str) -> List[BenchmarkQuery]:
        return [q for q in self.queries if q.line_bucket == bucket]

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Table I style statistics: query / repository counts per line bucket."""
        query_counts = {"1": 0, "2-4": 0, "5-7": 0, ">7": 0}
        for query in self.queries:
            query_counts[query.line_bucket] += 1
        repo_counts = {"1": 0, "2-4": 0, "5-7": 0, ">7": 0}
        for table in self.repository:
            plottable = max(
                sum(1 for c in table.columns if c.role != "x"), 1
            )
            repo_counts[line_count_bucket(min(plottable, 12))] += 1
        query_counts["total"] = len(self.queries)
        repo_counts["total"] = len(self.repository)
        return {"queries": query_counts, "repository": repo_counts}


def _query_charts_for_record(
    record: CorpusRecord,
    config: BenchmarkConfig,
    rng: np.random.Generator,
) -> List[Tuple[LineChart, Optional[AggregationSpec]]]:
    """Render the two query charts (plain + aggregated) for one test record."""
    y_columns = list(record.spec.y_columns)
    plain = render_chart_for_table(
        record.table, y_columns, x_column=record.spec.x_column, spec=config.chart_spec
    )
    aggregation = sample_aggregation_spec(record.table.num_rows, rng)
    aggregated = render_chart_for_table(
        record.table,
        y_columns,
        x_column=record.spec.x_column,
        aggregation=aggregation,
        spec=config.chart_spec,
    )
    return [(plain, None), (aggregated, aggregation)]


def build_benchmark(
    config: Optional[BenchmarkConfig] = None,
    records: Optional[Sequence[CorpusRecord]] = None,
) -> Benchmark:
    """Build the full benchmark (corpus → splits → queries → ground truth)."""
    config = config or BenchmarkConfig()
    rng = np.random.default_rng(config.seed)

    if records is None:
        corpus = generate_corpus(
            CorpusConfig(
                num_records=config.corpus_records,
                min_rows=config.min_rows,
                max_rows=config.max_rows,
                seed=config.seed,
            )
        )
    else:
        corpus = list(records)

    line_records = filter_line_chart_records(corpus)
    # Deduplicate at the table level before splitting (Sec. VII-A).
    staging = DataRepository()
    id_to_record = {}
    for record in line_records:
        if record.table.table_id in staging:
            continue
        staging.add(record.table)
        id_to_record[record.table.table_id] = record
    staging.deduplicate()
    deduplicated = [id_to_record[table_id] for table_id in staging.table_ids]

    split = split_corpus(
        deduplicated,
        SplitSizes(
            train=config.train_records,
            validation=config.validation_records,
            test=config.query_records,
        ),
        seed=config.seed,
    )

    # The searchable repository holds every (deduplicated) table.
    repository = DataRepository()
    for record in deduplicated:
        repository.add(record.table)

    # Queries + noisy ground-truth copies.
    computer = RelevanceComputer(aggregate="mean")
    queries: List[BenchmarkQuery] = []
    for record in split.test:
        repository.inject_noisy_copies(
            record.table,
            count=config.noisy_copies_per_query,
            rng=rng,
            exclude_columns=[record.spec.x_column] if record.spec.x_column else None,
        )

    for record in split.test:
        for chart, aggregation in _query_charts_for_record(record, config, rng):
            query_id = f"q_{record.table.table_id}_{'agg' if aggregation else 'plain'}"
            scored = [
                (
                    table.table_id,
                    ground_truth_relevance(
                        chart.underlying,
                        table,
                        max_points=config.relevance_max_points,
                        computer=computer,
                    ),
                )
                for table in repository
            ]
            scored.sort(key=lambda item: item[1], reverse=True)
            ranked_ids = [table_id for table_id, _ in scored]
            relevant = set(ranked_ids[: config.k])
            queries.append(
                BenchmarkQuery(
                    query_id=query_id,
                    chart=chart,
                    source_table_id=record.table.table_id,
                    num_lines=chart.num_lines,
                    aggregation=aggregation,
                    relevant=relevant,
                    ranked_ground_truth=ranked_ids[: config.k],
                )
            )

    return Benchmark(
        config=config,
        repository=repository,
        queries=queries,
        train_records=list(split.train),
        validation_records=list(split.validation),
    )
