"""The effectiveness numbers reported in the paper, for side-by-side reports.

These constants are the values printed in the paper's tables (ICDE 2025,
arXiv:2408.09506v2).  They are *not* targets this reproduction is expected to
match numerically — the substrate (corpus, model scale, compute) is different
— but the qualitative relationships they encode are what the benchmarks
check: FCM beats every baseline, the gap widens with more lines and with
aggregation, removing HCMAN or the DA layers hurts, the hybrid index is the
fastest configuration with near-LSH effectiveness.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table II — overall / with DA / without DA, prec@50 and ndcg@50.
TABLE2: Dict[str, Dict[str, Dict[str, float]]] = {
    "overall": {
        "CML": {"prec": 0.349, "ndcg": 0.246},
        "DE-LN": {"prec": 0.224, "ndcg": 0.162},
        "Opt-LN": {"prec": 0.287, "ndcg": 0.211},
        "Qetch*": {"prec": 0.256, "ndcg": 0.179},
        "FCM": {"prec": 0.454, "ndcg": 0.347},
    },
    "with_da": {
        "CML": {"prec": 0.180, "ndcg": 0.119},
        "DE-LN": {"prec": 0.134, "ndcg": 0.098},
        "Opt-LN": {"prec": 0.160, "ndcg": 0.118},
        "Qetch*": {"prec": 0.123, "ndcg": 0.105},
        "FCM": {"prec": 0.398, "ndcg": 0.302},
    },
    "without_da": {
        "CML": {"prec": 0.538, "ndcg": 0.372},
        "DE-LN": {"prec": 0.318, "ndcg": 0.226},
        "Opt-LN": {"prec": 0.417, "ndcg": 0.303},
        "Qetch*": {"prec": 0.390, "ndcg": 0.246},
        "FCM": {"prec": 0.589, "ndcg": 0.456},
    },
}

#: Table III — effectiveness per number-of-lines bucket (prec@50 / ndcg@50).
TABLE3: Dict[str, Dict[str, Dict[str, float]]] = {
    "1": {
        "CML": {"prec": 0.453, "ndcg": 0.327},
        "DE-LN": {"prec": 0.328, "ndcg": 0.240},
        "Opt-LN": {"prec": 0.431, "ndcg": 0.316},
        "Qetch*": {"prec": 0.344, "ndcg": 0.239},
        "FCM": {"prec": 0.569, "ndcg": 0.441},
    },
    "2-4": {
        "CML": {"prec": 0.384, "ndcg": 0.297},
        "DE-LN": {"prec": 0.192, "ndcg": 0.136},
        "Opt-LN": {"prec": 0.262, "ndcg": 0.188},
        "Qetch*": {"prec": 0.276, "ndcg": 0.187},
        "FCM": {"prec": 0.496, "ndcg": 0.413},
    },
    "5-7": {
        "CML": {"prec": 0.283, "ndcg": 0.187},
        "DE-LN": {"prec": 0.174, "ndcg": 0.125},
        "Opt-LN": {"prec": 0.194, "ndcg": 0.147},
        "Qetch*": {"prec": 0.141, "ndcg": 0.125},
        "FCM": {"prec": 0.378, "ndcg": 0.275},
    },
    ">7": {
        "CML": {"prec": 0.175, "ndcg": 0.092},
        "DE-LN": {"prec": 0.104, "ndcg": 0.073},
        "Opt-LN": {"prec": 0.127, "ndcg": 0.096},
        "Qetch*": {"prec": 0.121, "ndcg": 0.082},
        "FCM": {"prec": 0.240, "ndcg": 0.140},
    },
}

#: Table IV — DA-based query breakdown, prec@50 by operator × window bucket.
TABLE4: Dict[str, Dict[str, float]] = {
    "min": {"0-10": 0.351, "20-40": 0.336, "40-60": 0.360, "60-80": 0.282, "80-100": 0.272},
    "max": {"0-10": 0.368, "20-40": 0.345, "40-60": 0.372, "60-80": 0.265, "80-100": 0.270},
    "sum": {"0-10": 0.418, "20-40": 0.446, "40-60": 0.450, "60-80": 0.313, "80-100": 0.275},
    "avg": {"0-10": 0.454, "20-40": 0.416, "40-60": 0.439, "60-80": 0.337, "80-100": 0.317},
}

#: Table V — FCM vs FCM−HCMAN (prec@50 / ndcg@50).
TABLE5: Dict[str, Dict[str, Dict[str, float]]] = {
    "overall": {
        "FCM": {"prec": 0.454, "ndcg": 0.347},
        "FCM-HCMAN": {"prec": 0.368, "ndcg": 0.267},
    },
    "1": {
        "FCM": {"prec": 0.569, "ndcg": 0.441},
        "FCM-HCMAN": {"prec": 0.480, "ndcg": 0.353},
    },
    "2-4": {
        "FCM": {"prec": 0.496, "ndcg": 0.275},
        "FCM-HCMAN": {"prec": 0.404, "ndcg": 0.322},
    },
    "5-7": {
        "FCM": {"prec": 0.378, "ndcg": 0.235},
        "FCM-HCMAN": {"prec": 0.298, "ndcg": 0.206},
    },
    ">7": {
        "FCM": {"prec": 0.240, "ndcg": 0.140},
        "FCM-HCMAN": {"prec": 0.182, "ndcg": 0.101},
    },
}

#: Table VI — FCM vs FCM−DA (prec@50 / ndcg@50).
TABLE6: Dict[str, Dict[str, Dict[str, float]]] = {
    "overall": {
        "FCM": {"prec": 0.454, "ndcg": 0.347},
        "FCM-DA": {"prec": 0.385, "ndcg": 0.287},
    },
    "with_da": {
        "FCM": {"prec": 0.398, "ndcg": 0.302},
        "FCM-DA": {"prec": 0.175, "ndcg": 0.116},
    },
    "without_da": {
        "FCM": {"prec": 0.589, "ndcg": 0.456},
        "FCM-DA": {"prec": 0.595, "ndcg": 0.458},
    },
}

#: Table VII — prec@50 over the P1 × P2 grid.
TABLE7: Dict[Tuple[int, int], float] = {
    (15, 16): 0.384, (15, 32): 0.392, (15, 64): 0.414, (15, 128): 0.407, (15, 256): 0.405,
    (30, 16): 0.401, (30, 32): 0.424, (30, 64): 0.437, (30, 128): 0.435, (30, 256): 0.433,
    (60, 16): 0.413, (60, 32): 0.446, (60, 64): 0.454, (60, 128): 0.432, (60, 256): 0.427,
    (120, 16): 0.354, (120, 32): 0.375, (120, 64): 0.396, (120, 128): 0.376, (120, 256): 0.377,
    (240, 16): 0.334, (240, 32): 0.348, (240, 64): 0.357, (240, 128): 0.343, (240, 256): 0.312,
}

#: Table VIII — indexing strategies: prec@50, ndcg@50, query time (seconds).
TABLE8: Dict[str, Dict[str, float]] = {
    "none": {"prec": 0.494, "ndcg": 0.377, "query_seconds": 374.0},
    "interval": {"prec": 0.494, "ndcg": 0.377, "query_seconds": 187.0},
    "lsh": {"prec": 0.454, "ndcg": 0.347, "query_seconds": 28.0},
    "hybrid": {"prec": 0.454, "ndcg": 0.347, "query_seconds": 12.0},
}

#: Table IX — impact of the number of negative samples N− (prec@50 / ndcg@50).
TABLE9: Dict[int, Dict[str, float]] = {
    1: {"prec": 0.147, "ndcg": 0.113},
    2: {"prec": 0.182, "ndcg": 0.139},
    3: {"prec": 0.212, "ndcg": 0.163},
    4: {"prec": 0.211, "ndcg": 0.161},
    5: {"prec": 0.212, "ndcg": 0.162},
    6: {"prec": 0.213, "ndcg": 0.163},
    7: {"prec": 0.210, "ndcg": 0.161},
    8: {"prec": 0.208, "ndcg": 0.158},
}

#: Figure 5 — convergence epochs per negative-sampling strategy.
FIGURE5_CONVERGENCE_EPOCHS: Dict[str, int] = {
    "semi-hard": 26,
    "random": 37,
    "hard": 42,
    "easy": 47,
}

#: Figure 5 — final prec@50 ordering (semi-hard best, random ~10% behind).
FIGURE5_FINAL_PREC: Dict[str, float] = {
    "semi-hard": 0.212,
    "random": 0.201,
    "hard": 0.12,
    "easy": 0.10,
}
