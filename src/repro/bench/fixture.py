"""A tiny deterministic *trained* checkpoint for benchmarks and parity tests.

The scale sweep (and the quantized-prefilter recall floor) are meaningless
against randomly initialised weights: an untrained matcher scores every
table near 0.5, so candidate pruning never separates anything and recall
numbers say nothing about the index.  This module trains one small FCM
model on the synthetic corpus with a pinned seed and a handful of epochs —
enough for the matcher to rank the ground-truth table well above
distractors — and caches the weights on disk so every later run (and every
test in the same CI job) loads instead of retrains.

The cache key is a hash of the model configuration, the corpus recipe and
the trainer recipe, so changing any of them invalidates the checkpoint
automatically.  The cache lives in ``tests/fixtures/`` (gitignored —
checkpoints are reproducible artifacts, not sources); set
``REPRO_FIXTURE_DIR`` to relocate it (e.g. a CI cache volume).

Training runs under the **current** precision policy: a ``REPRO_DTYPE``
change re-trains rather than load-and-casting, because a cast checkpoint
would not reproduce the scores the float32 paths are pinned against.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from ..data.corpus import CorpusConfig, generate_corpus
from ..fcm.config import FCMConfig
from ..fcm.model import FCMModel
from ..fcm.training import TrainerConfig, train_fcm
from ..nn.serialization import load_state_dict, save_state_dict
from ..obs import get_logger

_log = get_logger("repro.bench.fixture")

#: Default corpus recipe: small enough to train in well under a minute on
#: one CPU core, varied enough that a few epochs separate match from
#: non-match decisively.
FIXTURE_CORPUS = CorpusConfig(
    num_records=24,
    min_rows=96,
    max_rows=192,
    extra_columns_max=2,
    non_line_fraction=0.0,
    duplicate_fraction=0.0,
    seed=1234,
)

#: Default trainer recipe (pinned seed; a few epochs is all the tiny
#: corpus needs).
FIXTURE_TRAINER = TrainerConfig(epochs=3, batch_size=8, seed=1234)


def _default_fixture_dir() -> Path:
    env = os.environ.get("REPRO_FIXTURE_DIR")
    if env:
        return Path(env)
    # src/repro/bench/fixture.py -> repo root is three parents up from repro/.
    root = Path(__file__).resolve().parents[3]
    return root / "tests" / "fixtures"


def _fixture_key(
    config: FCMConfig, corpus: CorpusConfig, trainer: TrainerConfig
) -> str:
    payload = json.dumps(
        {
            "model": {
                "embed_dim": config.embed_dim,
                "num_heads": config.num_heads,
                "num_layers": config.num_layers,
                "data_segment_size": config.data_segment_size,
                "max_data_segments": config.max_data_segments,
                "beta": config.beta,
                "dtype": config.numeric_dtype.name,
            },
            "corpus": {
                "num_records": corpus.num_records,
                "min_rows": corpus.min_rows,
                "max_rows": corpus.max_rows,
                "extra_columns_max": corpus.extra_columns_max,
                "non_line_fraction": corpus.non_line_fraction,
                "duplicate_fraction": corpus.duplicate_fraction,
                "seed": corpus.seed,
            },
            "trainer": {
                "epochs": trainer.epochs,
                "batch_size": trainer.batch_size,
                "learning_rate": trainer.learning_rate,
                "num_negatives": trainer.num_negatives,
                "strategy": trainer.strategy,
                "seed": trainer.seed,
            },
        },
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def trained_fixture_model(
    config: Optional[FCMConfig] = None,
    corpus: Optional[CorpusConfig] = None,
    trainer: Optional[TrainerConfig] = None,
    cache_dir: Optional[Path] = None,
) -> FCMModel:
    """The deterministic trained model, loading the cached checkpoint if any.

    The first call for a given (model config, corpus recipe, trainer recipe,
    precision) trains from scratch — deterministic given the pinned seeds —
    and writes ``tests/fixtures/fcm-<key>.npz``; later calls load it.  A
    corrupt or stale-format checkpoint is retrained, never trusted.
    """
    config = config or FCMConfig()
    corpus = corpus or FIXTURE_CORPUS
    trainer = trainer or FIXTURE_TRAINER
    cache_dir = Path(cache_dir) if cache_dir is not None else _default_fixture_dir()
    key = _fixture_key(config, corpus, trainer)
    checkpoint = cache_dir / f"fcm-{key}.npz"
    if checkpoint.exists():
        try:
            model = FCMModel(config)
            load_state_dict(model, checkpoint)
            model.eval()
            _log.debug("fixture_loaded", path=str(checkpoint))
            return model
        except Exception as exc:  # retrain on any damage
            _log.info(
                "fixture_checkpoint_invalid", path=str(checkpoint), error=str(exc)
            )
    records = generate_corpus(corpus)
    model, history, _ = train_fcm(records, config=config, trainer_config=trainer)
    model.eval()
    cache_dir.mkdir(parents=True, exist_ok=True)
    save_state_dict(
        model,
        checkpoint,
        metadata={"fixture_key": key, "final_loss": history.final_loss},
    )
    _log.info(
        "fixture_trained",
        path=str(checkpoint),
        epochs=trainer.epochs,
        final_loss=history.final_loss,
    )
    return model
