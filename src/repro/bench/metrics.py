"""Retrieval metrics: prec@k and ndcg@k (Sec. VII-B).

The benchmark marks, for each query, a set of relevant tables (the top-k
tables under the ground-truth relevance ``Rel(D, T)``).  Relevance is binary,
so:

* ``prec@k`` — fraction of the top-k retrieved tables that are relevant;
* ``ndcg@k`` — DCG of the retrieved list divided by the ideal DCG, with
  binary gains and the standard ``1 / log2(rank + 1)`` discount.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

import numpy as np


def precision_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Precision of the first ``k`` retrieved ids against the relevant set."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    top = list(retrieved)[:k]
    if not top:
        return 0.0
    hits = sum(1 for table_id in top if table_id in relevant)
    return hits / k


def dcg_at_k(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a gain sequence truncated at ``k``."""
    gains = list(gains)[:k]
    if not gains:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    return float(np.sum(np.asarray(gains) * discounts))


def ndcg_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Normalised DCG with binary gains."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    gains = [1.0 if table_id in relevant else 0.0 for table_id in list(retrieved)[:k]]
    ideal_gains = [1.0] * min(len(relevant), k)
    ideal = dcg_at_k(ideal_gains, k)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(gains, k) / ideal


def recall_at_k(retrieved: Sequence[str], relevant: Set[str], k: int) -> float:
    """Recall of the first ``k`` retrieved ids (extra diagnostic metric)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    top = set(list(retrieved)[:k])
    return len(top & relevant) / len(relevant)


def mean_metric(values: Iterable[float]) -> float:
    """Mean of a collection of per-query metric values (0 when empty)."""
    values = list(values)
    if not values:
        return 0.0
    return float(np.mean(values))


def aggregate_metrics(per_query: List[Dict[str, float]]) -> Dict[str, float]:
    """Average a list of per-query metric dictionaries key-wise."""
    if not per_query:
        return {}
    keys = set().union(*(record.keys() for record in per_query))
    return {key: mean_metric(record.get(key, 0.0) for record in per_query) for key in keys}
