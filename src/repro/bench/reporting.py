"""Plain-text formatting of experiment results.

Every benchmark target prints the rows/series the corresponding paper table
or figure reports, using these helpers so the output is uniform and easy to
copy into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table."""
    str_rows = [[_format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_method_comparison(
    result: Mapping[str, Mapping[str, Mapping[str, float]]],
    method_order: Sequence[str],
    section_order: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Format nested ``{section: {method: {prec, ndcg}}}`` results."""
    sections = list(section_order) if section_order else list(result.keys())
    headers = ["section", "metric", *method_order]
    rows: List[List[object]] = []
    for section in sections:
        per_method = result.get(section, {})
        for metric in ("prec", "ndcg"):
            row: List[object] = [section, metric]
            for method in method_order:
                row.append(per_method.get(method, {}).get(metric))
            rows.append(row)
    return format_table(headers, rows, title=title)


def format_grid(
    grid: Mapping[Tuple[int, int], float],
    row_label: str = "P1",
    col_label: str = "P2",
    title: Optional[str] = None,
) -> str:
    """Format a ``{(row, col): value}`` grid (used by Table VII)."""
    row_keys = sorted({key[0] for key in grid})
    col_keys = sorted({key[1] for key in grid})
    headers = [f"{row_label}\\{col_label}", *[str(c) for c in col_keys]]
    rows = []
    for row_key in row_keys:
        rows.append([row_key, *[grid.get((row_key, col_key)) for col_key in col_keys]])
    return format_table(headers, rows, title=title)


def format_curves(
    curves: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    x_label: str = "epoch",
) -> str:
    """Format per-epoch curves (used by Figure 5)."""
    max_len = max((len(v) for v in curves.values()), default=0)
    headers = [x_label, *list(curves.keys())]
    rows = []
    for epoch in range(max_len):
        row: List[object] = [epoch]
        for series in curves.values():
            row.append(series[epoch] if epoch < len(series) else None)
        rows.append(row)
    return format_table(headers, rows, title=title)
