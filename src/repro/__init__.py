"""repro — reproduction of "Dataset Discovery via Line Charts" (ICDE 2025).

The package is organised as one subpackage per subsystem:

* :mod:`repro.nn` — NumPy deep-learning engine (autograd, transformers, Adam);
* :mod:`repro.data` — tables, synthetic Plotly-like corpus, aggregation;
* :mod:`repro.charts` — line-chart rasteriser and the LineChartSeg dataset;
* :mod:`repro.vision` — LCSeg segmentation model and visual element extraction;
* :mod:`repro.relevance` — ground-truth relevance (DTW + bipartite matching);
* :mod:`repro.fcm` — the FCM model, its DA extension, training and scoring;
* :mod:`repro.baselines` — CML, Qetch*, DE-LN, Opt-LN and the FCM ablations;
* :mod:`repro.index` — interval-tree / LSH / hybrid query processing;
* :mod:`repro.serving` — incremental, sharded, persistent index serving;
* :mod:`repro.bench` — benchmark construction, metrics and per-table runners.

Quickstart::

    from repro.bench import build_benchmark, smoke_scale, train_fcm_methods

    scale = smoke_scale()
    benchmark = build_benchmark(scale.benchmark)
    fcm = train_fcm_methods(benchmark, scale)["FCM"]
    top = fcm.rank(benchmark.queries[0].chart, k=5)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
