"""Common interface for all retrieval methods compared in the experiments.

Every method — FCM, its ablations, and the four baselines of Sec. VII-B —
implements the same two-phase protocol:

1. :meth:`DiscoveryMethod.index_repository` — offline, once per repository;
2. :meth:`DiscoveryMethod.rank` — per query chart, return tables ordered by
   decreasing estimated relevance.

The evaluation harness (``repro.bench``) only talks to this interface, so
adding a method to every table of the paper requires nothing beyond
implementing it here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..charts.rasterizer import LineChart
from ..data.table import Table


class DiscoveryMethod(ABC):
    """Abstract base class for dataset-discovery-via-line-charts methods."""

    #: Human-readable name used in experiment reports.
    name: str = "method"

    @abstractmethod
    def index_repository(self, tables: Iterable[Table]) -> None:
        """Pre-process the candidate tables (offline phase)."""

    @abstractmethod
    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        """Return ``{table_id: estimated relevance}`` over the indexed tables."""

    def rank(self, chart: LineChart, k: Optional[int] = None) -> List[Tuple[str, float]]:
        """Tables ordered by decreasing estimated relevance (top-``k``)."""
        scores = self.score_chart(chart)
        ranked = sorted(scores.items(), key=lambda item: item[1], reverse=True)
        return ranked if k is None else ranked[:k]

    def top_k_ids(self, chart: LineChart, k: int) -> List[str]:
        return [table_id for table_id, _ in self.rank(chart, k=k)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
