"""LineNet: learned chart-image similarity (used by the DE-LN / Opt-LN baselines).

LineNet (Luo et al., SIGMOD'23) learns data-aware image representations of
line charts for similarity search.  The published model is a deep CNN trained
on millions of chart pairs; the substitution here is a patch-transformer
image embedder (the same family as the CML chart tower) trained
contrastively so that two charts rendered from the *same* table — under the
chart-preserving augmentations of Sec. IV-A — embed close together, while
charts from different tables embed apart.  This keeps LineNet's role in the
comparison: a chart-to-chart similarity model with no access to the raw
candidate data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import render_chart_for_table
from ..charts.spec import ChartSpec
from ..data.augmentation import AugmentationConfig, augment_table
from ..data.corpus import CorpusRecord
from ..nn import (
    Adam,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
    contrastive_cosine_loss,
    stack,
)
from .base import DiscoveryMethod  # noqa: F401  (re-exported for convenience)


@dataclass
class LineNetConfig:
    """Hyper-parameters of the LineNet chart embedder."""

    embed_dim: int = 32
    num_heads: int = 2
    num_layers: int = 1
    patch_width: int = 24
    image_pool: int = 4
    epochs: int = 6
    batch_size: int = 8
    learning_rate: float = 1e-3
    temperature: float = 0.1
    seed: int = 0


class LineNetModel(Module):
    """Patch-transformer embedding of a chart image into a single vector."""

    def __init__(
        self,
        config: Optional[LineNetConfig] = None,
        chart_height: int = 120,
        chart_width: int = 240,
    ) -> None:
        super().__init__()
        self.config = config or LineNetConfig()
        rng = np.random.default_rng(self.config.seed)
        pooled_h = max(chart_height // self.config.image_pool, 1)
        pooled_w = max(self.config.patch_width // self.config.image_pool, 1)
        self.num_patches = max(chart_width // self.config.patch_width, 1)
        self.patch_dim = pooled_h * pooled_w
        self.projection = Linear(self.patch_dim, self.config.embed_dim, rng=rng)
        self.encoder = TransformerEncoder(
            embed_dim=self.config.embed_dim,
            num_heads=self.config.num_heads,
            num_layers=self.config.num_layers,
            max_positions=self.num_patches,
            rng=rng,
        )

    def patch_features(self, image: np.ndarray) -> np.ndarray:
        pool = self.config.image_pool
        patch_w = self.config.patch_width
        features = np.zeros((self.num_patches, self.patch_dim))
        for idx in range(self.num_patches):
            left = idx * patch_w
            patch = image[:, left : left + patch_w]
            if patch.shape[1] < patch_w:
                padded = np.zeros((image.shape[0], patch_w))
                padded[:, : patch.shape[1]] = patch
                patch = padded
            h, w = patch.shape
            ph, pw = h // pool, w // pool
            pooled = patch[: ph * pool, : pw * pool].reshape(ph, pool, pw, pool).mean(axis=(1, 3))
            flat = pooled.ravel()
            features[idx, : flat.shape[0]] = flat[: self.patch_dim]
        return features

    def forward(self, image: np.ndarray) -> Tensor:
        features = Tensor(self.patch_features(np.asarray(image, dtype=np.float64)))
        encoded = self.encoder(self.projection(features))
        return encoded.mean(axis=0)

    def embed(self, image: np.ndarray) -> np.ndarray:
        """L2-normalised embedding as a plain array (inference helper)."""
        vector = self.forward(image).numpy()
        norm = np.linalg.norm(vector) + 1e-12
        return vector / norm

    @staticmethod
    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) + 1e-12
        return float(np.dot(a, b) / denom)


def _augmented_chart_pair(
    record: CorpusRecord,
    spec: ChartSpec,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Render an (anchor, positive) chart-image pair from one record."""
    y_columns = list(record.spec.y_columns)
    anchor = render_chart_for_table(
        record.table, y_columns, x_column=record.spec.x_column, spec=spec
    ).image
    variants = augment_table(
        record.table, config=AugmentationConfig(partition=False), rng=rng
    )
    if variants:
        variant = variants[int(rng.integers(0, len(variants)))]
        kept = [name for name in y_columns if name in variant]
        x_column = record.spec.x_column if record.spec.x_column in variant else None
        if kept:
            positive = render_chart_for_table(variant, kept, x_column=x_column, spec=spec).image
            return anchor, positive
    return anchor, anchor.copy()


def train_linenet(
    records: Sequence[CorpusRecord],
    config: Optional[LineNetConfig] = None,
    chart_spec: Optional[ChartSpec] = None,
) -> Tuple[LineNetModel, List[float]]:
    """Train LineNet contrastively on augmented chart pairs."""
    config = config or LineNetConfig()
    chart_spec = chart_spec or ChartSpec()
    line_records = [r for r in records if r.spec.chart_type == "line"]
    if not line_records:
        raise ValueError("no line-chart records to train LineNet on")
    rng = np.random.default_rng(config.seed)
    pairs = [_augmented_chart_pair(record, chart_spec, rng) for record in line_records]

    model = LineNetModel(
        config, chart_height=chart_spec.height, chart_width=chart_spec.width
    )
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    losses: List[float] = []
    n = len(pairs)
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_losses: List[float] = []
        for start in range(0, n, config.batch_size):
            batch = order[start : start + config.batch_size]
            if batch.shape[0] < 2:
                continue
            positives = [model(pairs[i][1]) for i in batch]
            batch_loss = None
            for pos, i in enumerate(batch):
                anchor = model(pairs[i][0])
                negatives = stack(
                    [positives[j] for j in range(len(batch)) if j != pos], axis=0
                )
                loss = contrastive_cosine_loss(
                    anchor, positives[pos], negatives, temperature=config.temperature
                )
                batch_loss = loss if batch_loss is None else batch_loss + loss
            batch_loss = batch_loss * (1.0 / batch.shape[0])
            optimizer.zero_grad()
            batch_loss.backward()
            optimizer.step()
            epoch_losses.append(batch_loss.item())
        losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
    model.eval()
    return model, losses
