"""FCM as a :class:`DiscoveryMethod`, plus its two ablation variants.

* **FCM** — the full model (HCMAN matcher + DA layers);
* **FCM−HCMAN** (Table V) — the hierarchical cross-modal attention matcher is
  replaced by representation averaging + MLP;
* **FCM−DA** (Table VI) — the transformation/HMRL/MoE layers are removed from
  the dataset encoder.

All three share the same training procedure; the factory functions below
build the matching config so experiment code only differs in one call.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..charts.rasterizer import LineChart
from ..data.corpus import CorpusRecord
from ..data.table import Table
from ..fcm.config import FCMConfig
from ..fcm.model import FCMModel
from ..fcm.scorer import FCMScorer
from ..fcm.training import TrainerConfig, TrainingHistory, train_fcm
from ..vision.extractor import VisualElementExtractor
from .base import DiscoveryMethod


class FCMMethod(DiscoveryMethod):
    """Adapter exposing a trained FCM model through the common interface."""

    name = "FCM"

    def __init__(
        self,
        model: FCMModel,
        extractor: Optional[VisualElementExtractor] = None,
        name: Optional[str] = None,
    ) -> None:
        self.model = model
        self.scorer = FCMScorer(model, extractor=extractor)
        if name is not None:
            self.name = name

    def index_repository(self, tables: Iterable[Table]) -> None:
        for table in tables:
            self.scorer.index_table(table)

    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        # Batched no-grad verification: identical scores to the per-pair
        # loop, one stacked matcher forward for the whole repository.
        return self.scorer.score_chart_batch(chart)


def fcm_full_config(base: Optional[FCMConfig] = None) -> FCMConfig:
    """Configuration of the full FCM model."""
    base = base or FCMConfig()
    return base.with_overrides(use_hcman=True, enable_da_layers=True)


def fcm_without_hcman_config(base: Optional[FCMConfig] = None) -> FCMConfig:
    """Configuration of the FCM−HCMAN ablation (Table V)."""
    base = base or FCMConfig()
    return base.with_overrides(use_hcman=False, enable_da_layers=True)


def fcm_without_da_config(base: Optional[FCMConfig] = None) -> FCMConfig:
    """Configuration of the FCM−DA ablation (Table VI)."""
    base = base or FCMConfig()
    return base.with_overrides(use_hcman=True, enable_da_layers=False)


ABLATION_FACTORIES = {
    "FCM": fcm_full_config,
    "FCM-HCMAN": fcm_without_hcman_config,
    "FCM-DA": fcm_without_da_config,
}


def train_fcm_variant(
    variant: str,
    records: Sequence[CorpusRecord],
    base_config: Optional[FCMConfig] = None,
    trainer_config: Optional[TrainerConfig] = None,
    extractor: Optional[VisualElementExtractor] = None,
    aggregated_fraction: float = 0.5,
) -> Tuple[FCMMethod, TrainingHistory]:
    """Train one of ``FCM``, ``FCM-HCMAN`` or ``FCM-DA`` and wrap it.

    Returns the ready-to-index :class:`FCMMethod` and its training history.
    """
    if variant not in ABLATION_FACTORIES:
        raise ValueError(
            f"unknown FCM variant {variant!r}; expected one of {sorted(ABLATION_FACTORIES)}"
        )
    config = ABLATION_FACTORIES[variant](base_config)
    model, history, _ = train_fcm(
        records,
        config=config,
        trainer_config=trainer_config,
        extractor=extractor,
        aggregated_fraction=aggregated_fraction,
    )
    return FCMMethod(model, extractor=extractor, name=variant), history
