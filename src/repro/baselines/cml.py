"""CML baseline: generic cross-modal bi-encoder with cosine similarity.

Sec. VII-B describes CML as "a simple but effective baseline" pairing a
Vision Transformer chart encoder with a TURL-style table encoder and scoring
with cosine similarity of the two pooled embeddings.  Pre-trained ViT/TURL
checkpoints are not available offline, so both towers are trained from
scratch (on the same NumPy engine as FCM) with an InfoNCE contrastive loss
over in-batch negatives — which preserves CML's role in the comparison: a
strong single-vector bi-encoder with no fine-grained (segment-level)
matching and no aggregation modelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..data.corpus import CorpusRecord
from ..data.table import Table
from ..nn import (
    Adam,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
    contrastive_cosine_loss,
    stack,
)
from ..fcm.preprocessing import column_segments, resample_series
from ..fcm.config import FCMConfig
from .base import DiscoveryMethod


@dataclass
class CMLConfig:
    """Hyper-parameters of the CML bi-encoder."""

    embed_dim: int = 32
    num_heads: int = 2
    num_layers: int = 1
    patch_width: int = 24
    image_pool: int = 4
    column_length: int = 64
    epochs: int = 8
    batch_size: int = 8
    learning_rate: float = 1e-3
    temperature: float = 0.1
    seed: int = 0


class ChartTower(Module):
    """ViT-style encoder of the whole chart image into one vector."""

    def __init__(self, config: CMLConfig, chart_height: int, chart_width: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.chart_height = chart_height
        self.chart_width = chart_width
        pooled_h = max(chart_height // config.image_pool, 1)
        pooled_patch_w = max(config.patch_width // config.image_pool, 1)
        self.num_patches = max(chart_width // config.patch_width, 1)
        self.patch_dim = pooled_h * pooled_patch_w
        self.projection = Linear(self.patch_dim, config.embed_dim, rng=rng)
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            max_positions=self.num_patches,
            rng=rng,
        )

    def patch_features(self, image: np.ndarray) -> np.ndarray:
        """Split the image into vertical strips and pool + flatten each."""
        pool = self.config.image_pool
        patch_w = self.config.patch_width
        features = np.zeros((self.num_patches, self.patch_dim))
        for idx in range(self.num_patches):
            left = idx * patch_w
            patch = image[:, left : left + patch_w]
            if patch.shape[1] < patch_w:
                padded = np.zeros((image.shape[0], patch_w))
                padded[:, : patch.shape[1]] = patch
                patch = padded
            h, w = patch.shape
            ph, pw = h // pool, w // pool
            pooled = patch[: ph * pool, : pw * pool].reshape(ph, pool, pw, pool).mean(axis=(1, 3))
            flat = pooled.ravel()
            features[idx, : flat.shape[0]] = flat[: self.patch_dim]
        return features

    def forward(self, image: np.ndarray) -> Tensor:
        features = Tensor(self.patch_features(np.asarray(image, dtype=np.float64)))
        encoded = self.encoder(self.projection(features))
        return encoded.mean(axis=0)


class TableTower(Module):
    """TURL-style column-token encoder of the whole table into one vector."""

    def __init__(self, config: CMLConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.projection = Linear(config.column_length, config.embed_dim, rng=rng)
        self.encoder = TransformerEncoder(
            embed_dim=config.embed_dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            max_positions=64,
            rng=rng,
        )

    def column_features(self, table: Table) -> np.ndarray:
        features = np.zeros((table.num_columns, self.config.column_length))
        for idx, column in enumerate(table.columns):
            resampled = resample_series(column.values, self.config.column_length)
            std = resampled.std()
            if std > 1e-8:
                resampled = (resampled - resampled.mean()) / std
            features[idx] = resampled
        return features

    def forward(self, table: Table) -> Tensor:
        features = Tensor(self.column_features(table))
        encoded = self.encoder(self.projection(features))
        return encoded.mean(axis=0)


class CMLModel(Module):
    """The two-tower CML model."""

    def __init__(self, config: Optional[CMLConfig] = None,
                 chart_height: int = 120, chart_width: int = 240) -> None:
        super().__init__()
        self.config = config or CMLConfig()
        rng = np.random.default_rng(self.config.seed)
        self.chart_tower = ChartTower(self.config, chart_height, chart_width, rng)
        self.table_tower = TableTower(self.config, rng)

    def forward(self, image: np.ndarray, table: Table) -> Tuple[Tensor, Tensor]:
        return self.chart_tower(image), self.table_tower(table)

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) + 1e-12
        return float(np.dot(a, b) / denom)


def train_cml(
    records: Sequence[CorpusRecord],
    config: Optional[CMLConfig] = None,
    chart_spec=None,
) -> Tuple[CMLModel, List[float]]:
    """Train CML contrastively on the training-split records.

    Each record contributes one (chart image, table) positive pair; the other
    tables of the mini-batch serve as in-batch negatives.
    """
    config = config or CMLConfig()
    line_records = [r for r in records if r.spec.chart_type == "line"]
    if not line_records:
        raise ValueError("no line-chart records to train CML on")
    charts: List[np.ndarray] = []
    tables: List[Table] = []
    for record in line_records:
        chart = render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=chart_spec,
        )
        charts.append(chart.image)
        tables.append(record.table)

    model = CMLModel(
        config, chart_height=charts[0].shape[0], chart_width=charts[0].shape[1]
    )
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    losses: List[float] = []
    n = len(charts)
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_losses: List[float] = []
        for start in range(0, n, config.batch_size):
            batch = order[start : start + config.batch_size]
            if batch.shape[0] < 2:
                continue
            table_vecs = [model.table_tower(tables[i]) for i in batch]
            batch_loss = None
            for pos, i in enumerate(batch):
                anchor = model.chart_tower(charts[i])
                positive = table_vecs[pos]
                negatives = stack(
                    [table_vecs[j] for j in range(len(batch)) if j != pos], axis=0
                )
                loss = contrastive_cosine_loss(
                    anchor, positive, negatives, temperature=config.temperature
                )
                batch_loss = loss if batch_loss is None else batch_loss + loss
            batch_loss = batch_loss * (1.0 / batch.shape[0])
            optimizer.zero_grad()
            batch_loss.backward()
            optimizer.step()
            epoch_losses.append(batch_loss.item())
        losses.append(float(np.mean(epoch_losses)) if epoch_losses else float("nan"))
    model.eval()
    return model, losses


class CMLMethod(DiscoveryMethod):
    """CML as a :class:`DiscoveryMethod`: cached table vectors + cosine."""

    name = "CML"

    def __init__(self, model: CMLModel) -> None:
        self.model = model
        self._table_vectors: Dict[str, np.ndarray] = {}

    def index_repository(self, tables: Iterable[Table]) -> None:
        self.model.eval()
        for table in tables:
            if table.table_id in self._table_vectors:
                continue
            self._table_vectors[table.table_id] = self.model.table_tower(table).numpy()

    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        self.model.eval()
        query = self.model.chart_tower(chart.image).numpy()
        return {
            table_id: CMLModel.cosine(query, vector)
            for table_id, vector in self._table_vectors.items()
        }
