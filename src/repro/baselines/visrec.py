"""DeepEye-style visualization recommendation (the "DE" part of DE-LN).

DeepEye (Luo et al., ICDE'18) ranks candidate visualizations of a table by
learned/heuristic "interestingness".  The reproduction uses the heuristic
scoring path: every plottable column (or small group of columns) is scored by
how line-chart-worthy it is — strong trend, adequate variation, reasonable
length — and the top-ranked candidates are rendered as line charts.  As in
the paper's DE-LN baseline, the recommender's quality upper-bounds the whole
pipeline, which is exactly the weakness Table II demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..charts.spec import ChartSpec
from ..data.column import Column
from ..data.table import Table


@dataclass
class VisRecConfig:
    """Knobs of the heuristic recommender."""

    max_recommendations: int = 5
    max_lines_per_chart: int = 3
    min_points: int = 10


def column_interestingness(column: Column) -> float:
    """Heuristic line-chart-worthiness of a single column.

    Combines three signals, each in ``[0, 1]``:

    * **trend strength** — absolute correlation between the values and time;
    * **smoothness** — one minus the (normalised) mean absolute first
      difference, so wildly jumping series score lower;
    * **variation** — whether the column is not (nearly) constant.
    """
    values = column.values
    if values.shape[0] < 3:
        return 0.0
    std = values.std()
    if std < 1e-12:
        return 0.0
    t = np.arange(values.shape[0], dtype=np.float64)
    trend = float(abs(np.corrcoef(t, values)[0, 1]))
    if np.isnan(trend):
        trend = 0.0
    diffs = np.abs(np.diff(values)) / (std + 1e-12)
    smoothness = float(1.0 / (1.0 + diffs.mean()))
    variation = float(min(std / (abs(values.mean()) + std + 1e-12), 1.0))
    return (trend + smoothness + variation) / 3.0


def detect_x_column(table: Table) -> Optional[str]:
    """Pick the column that most resembles an x-axis (monotonically increasing)."""
    best_name, best_score = None, 0.0
    for column in table.columns:
        diffs = np.diff(column.values)
        if diffs.size == 0:
            continue
        monotone = float(np.mean(diffs > 0))
        if monotone > 0.99 and monotone > best_score:
            best_name, best_score = column.name, monotone
    return best_name


class DeepEyeRecommender:
    """Recommend up to ``max_recommendations`` line charts for a table."""

    def __init__(self, config: Optional[VisRecConfig] = None) -> None:
        self.config = config or VisRecConfig()

    def recommend_column_sets(self, table: Table) -> List[List[str]]:
        """Ranked lists of y-column names, one list per recommended chart."""
        x_column = detect_x_column(table)
        candidates = [
            (column.name, column_interestingness(column))
            for column in table.columns
            if column.name != x_column and len(column) >= self.config.min_points
        ]
        candidates = [(name, score) for name, score in candidates if score > 0]
        candidates.sort(key=lambda item: item[1], reverse=True)
        names = [name for name, _ in candidates]
        if not names:
            return []

        recommendations: List[List[str]] = []
        # Single-column charts for the most interesting columns.
        for name in names[: self.config.max_recommendations]:
            recommendations.append([name])
        # Multi-line charts combining the top columns.
        for count in range(2, self.config.max_lines_per_chart + 1):
            if len(names) >= count and len(recommendations) < self.config.max_recommendations:
                recommendations.append(names[:count])
        return recommendations[: self.config.max_recommendations]

    def recommend_charts(
        self, table: Table, spec: Optional[ChartSpec] = None
    ) -> List[LineChart]:
        """Render the recommended charts for ``table``."""
        x_column = detect_x_column(table)
        charts: List[LineChart] = []
        for y_columns in self.recommend_column_sets(table):
            charts.append(
                render_chart_for_table(table, y_columns, x_column=x_column, spec=spec)
            )
        return charts
