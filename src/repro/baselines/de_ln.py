"""DE-LN and Opt-LN baselines (Sec. VII-B).

**DE-LN** chains visualization recommendation and chart search: DeepEye
recommends up to five line charts per candidate table, LineNet scores each
recommended chart against the query chart, and the best similarity becomes
the table's relevance.  Its effectiveness is therefore bounded by the
recommender — if DeepEye never recommends the chart the user had in mind, no
amount of chart similarity can recover it.

**Opt-LN** removes that bound by using an oracle: the chart each candidate
table is *actually* associated with in the corpus (its own visualization
specification) is compared against the query directly.  It is not realisable
in practice (the association is exactly what discovery is trying to find) and
serves purely as DE-LN's upper bound, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..charts.rasterizer import LineChart, render_chart_for_table
from ..charts.spec import ChartSpec
from ..data.corpus import VisualizationSpec
from ..data.table import Table
from .base import DiscoveryMethod
from .linenet import LineNetModel
from .visrec import DeepEyeRecommender, VisRecConfig, detect_x_column


class DELNMethod(DiscoveryMethod):
    """DE-LN: DeepEye recommendations scored by LineNet."""

    name = "DE-LN"

    def __init__(
        self,
        linenet: LineNetModel,
        recommender: Optional[DeepEyeRecommender] = None,
        chart_spec: Optional[ChartSpec] = None,
    ) -> None:
        self.linenet = linenet
        self.recommender = recommender or DeepEyeRecommender(VisRecConfig())
        self.chart_spec = chart_spec or ChartSpec()
        self._embeddings: Dict[str, np.ndarray] = {}

    def index_repository(self, tables: Iterable[Table]) -> None:
        """Recommend charts per table and cache their LineNet embeddings."""
        self.linenet.eval()
        for table in tables:
            if table.table_id in self._embeddings:
                continue
            charts = self.recommender.recommend_charts(table, spec=self.chart_spec)
            if not charts:
                # Fall back to plotting every column so the table stays scorable.
                charts = [
                    render_chart_for_table(
                        table,
                        [c.name for c in table.columns][:3],
                        x_column=detect_x_column(table),
                        spec=self.chart_spec,
                    )
                ]
            self._embeddings[table.table_id] = np.stack(
                [self.linenet.embed(chart.image) for chart in charts]
            )

    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        self.linenet.eval()
        query = self.linenet.embed(chart.image)
        scores: Dict[str, float] = {}
        for table_id, embeddings in self._embeddings.items():
            sims = embeddings @ query
            scores[table_id] = float(sims.max())
        return scores


class OptLNMethod(DiscoveryMethod):
    """Opt-LN: LineNet against each table's own (oracle) associated chart."""

    name = "Opt-LN"

    def __init__(
        self,
        linenet: LineNetModel,
        specs: Dict[str, VisualizationSpec],
        chart_spec: Optional[ChartSpec] = None,
    ) -> None:
        self.linenet = linenet
        self.specs = dict(specs)
        self.chart_spec = chart_spec or ChartSpec()
        self._embeddings: Dict[str, np.ndarray] = {}

    def index_repository(self, tables: Iterable[Table]) -> None:
        self.linenet.eval()
        for table in tables:
            if table.table_id in self._embeddings:
                continue
            spec = self.specs.get(table.table_id)
            if spec is not None:
                y_columns = [name for name in spec.y_columns if name in table]
                x_column = spec.x_column if spec.x_column in table else None
            else:
                y_columns, x_column = [], None
            if not y_columns:
                y_columns = [c.name for c in table.columns][:3]
                x_column = detect_x_column(table)
            chart = render_chart_for_table(
                table, y_columns, x_column=x_column, spec=self.chart_spec
            )
            self._embeddings[table.table_id] = self.linenet.embed(chart.image)

    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        self.linenet.eval()
        query = self.linenet.embed(chart.image)
        return {
            table_id: float(np.dot(embedding, query))
            for table_id, embedding in self._embeddings.items()
        }
