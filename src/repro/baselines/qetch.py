"""Qetch* baseline: heuristic sketch-matching extended to multi-line charts.

Qetch (Mannino & Abouzied, SIGMOD'18) matches a hand-drawn sketch against
time-series segments: the candidate series is locally rescaled to the
sketch's bounding box and the match error combines *shape error* (point-wise
deviation after local scaling) and *local distortion error* (how unevenly the
scaling stretches different sections).  It is a heuristic, not a learned
model, and it matches one line at a time.

Qetch* (Sec. VII-B) is the paper's extension to this problem setting: the
visual element extractor pulls each line out of the query chart, Qetch's
matching algorithm scores every (line, column) pair, and maximum-weight
bipartite matching (the same machinery as the ground-truth relevance)
aggregates the pairwise scores into a chart-to-table relevance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.table import Table
from ..fcm.preprocessing import resample_series
from ..relevance.matching import max_weight_matching
from ..vision.extractor import VisualElementExtractor
from .base import DiscoveryMethod


@dataclass
class QetchConfig:
    """Parameters of the Qetch matching heuristic."""

    num_sections: int = 4
    resample_length: int = 64
    distortion_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.num_sections < 1:
            raise ValueError("num_sections must be >= 1")
        if self.resample_length < self.num_sections * 2:
            raise ValueError("resample_length must allow at least 2 points per section")


def _minmax_scale(values: np.ndarray) -> np.ndarray:
    """Scale to [0, 1]; constant series map to 0.5 (Qetch's bounding-box scaling)."""
    low, high = values.min(), values.max()
    if np.isclose(high, low):
        return np.full_like(values, 0.5)
    return (values - low) / (high - low)


def qetch_match_error(
    query: np.ndarray,
    candidate: np.ndarray,
    config: Optional[QetchConfig] = None,
) -> float:
    """Qetch's match error between a sketched line and a candidate series.

    Both series are resampled to a common length and min-max scaled (Qetch
    scales the candidate to the sketch's bounding box).  The series are then
    split into sections; per section the *shape error* is the mean absolute
    deviation after section-local rescaling, and the *local distortion error*
    is how far the section's own vertical scale deviates from the global
    scale.  The total error is their weighted sum, averaged over sections.
    """
    config = config or QetchConfig()
    query = resample_series(np.asarray(query, dtype=np.float64), config.resample_length)
    candidate = resample_series(
        np.asarray(candidate, dtype=np.float64), config.resample_length
    )
    query_scaled = _minmax_scale(query)
    candidate_scaled = _minmax_scale(candidate)

    section_edges = np.linspace(0, config.resample_length, config.num_sections + 1).astype(int)
    shape_errors: List[float] = []
    distortion_errors: List[float] = []
    for start, end in zip(section_edges[:-1], section_edges[1:]):
        q_sec = query_scaled[start:end]
        c_sec = candidate_scaled[start:end]
        q_span = max(q_sec.max() - q_sec.min(), 1e-6)
        c_span = max(c_sec.max() - c_sec.min(), 1e-6)
        # Shape error: compare the section shapes after removing each
        # section's own offset and scale (local rescaling).
        q_local = (q_sec - q_sec.min()) / q_span
        c_local = (c_sec - c_sec.min()) / c_span
        shape_errors.append(float(np.mean(np.abs(q_local - c_local))))
        # Local distortion: how much the local scale ratio deviates from 1.
        ratio = max(q_span, c_span) / min(q_span, c_span)
        distortion_errors.append(float(np.log(ratio)))
    shape_error = float(np.mean(shape_errors))
    distortion_error = float(np.mean(distortion_errors))
    return shape_error + config.distortion_weight * distortion_error


def qetch_similarity(
    query: np.ndarray,
    candidate: np.ndarray,
    config: Optional[QetchConfig] = None,
) -> float:
    """Similarity in ``(0, 1]``: ``1 / (1 + error)``."""
    return 1.0 / (1.0 + qetch_match_error(query, candidate, config=config))


class QetchStarMethod(DiscoveryMethod):
    """Qetch* as a :class:`DiscoveryMethod`."""

    name = "Qetch*"

    def __init__(
        self,
        config: Optional[QetchConfig] = None,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> None:
        self.config = config or QetchConfig()
        self.extractor = extractor or VisualElementExtractor()
        self._columns: Dict[str, List[np.ndarray]] = {}

    def index_repository(self, tables: Iterable[Table]) -> None:
        for table in tables:
            if table.table_id in self._columns:
                continue
            self._columns[table.table_id] = [
                resample_series(column.values, self.config.resample_length)
                for column in table.columns
            ]

    def score_chart(self, chart: LineChart) -> Dict[str, float]:
        elements = self.extractor.extract(chart)
        query_lines = [
            resample_series(line.interpolated_values(), self.config.resample_length)
            for line in elements.lines
        ]
        scores: Dict[str, float] = {}
        for table_id, columns in self._columns.items():
            weights = np.zeros((len(query_lines), len(columns)))
            for i, line_values in enumerate(query_lines):
                for j, column_values in enumerate(columns):
                    weights[i, j] = qetch_similarity(
                        line_values, column_values, config=self.config
                    )
            matching = max_weight_matching(weights)
            scores[table_id] = matching.mean_weight
        return scores
