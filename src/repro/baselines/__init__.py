"""``repro.baselines`` — comparison methods: CML, Qetch*, DE-LN, Opt-LN, ablations."""

from .ablations import (
    ABLATION_FACTORIES,
    FCMMethod,
    fcm_full_config,
    fcm_without_da_config,
    fcm_without_hcman_config,
    train_fcm_variant,
)
from .base import DiscoveryMethod
from .cml import CMLConfig, CMLMethod, CMLModel, train_cml
from .de_ln import DELNMethod, OptLNMethod
from .linenet import LineNetConfig, LineNetModel, train_linenet
from .qetch import QetchConfig, QetchStarMethod, qetch_match_error, qetch_similarity
from .visrec import DeepEyeRecommender, VisRecConfig, column_interestingness, detect_x_column

__all__ = [
    "ABLATION_FACTORIES",
    "CMLConfig",
    "CMLMethod",
    "CMLModel",
    "DELNMethod",
    "DeepEyeRecommender",
    "DiscoveryMethod",
    "FCMMethod",
    "LineNetConfig",
    "LineNetModel",
    "OptLNMethod",
    "QetchConfig",
    "QetchStarMethod",
    "VisRecConfig",
    "column_interestingness",
    "detect_x_column",
    "fcm_full_config",
    "fcm_without_da_config",
    "fcm_without_hcman_config",
    "qetch_match_error",
    "qetch_similarity",
    "train_cml",
    "train_fcm_variant",
    "train_linenet",
]
