"""Multi-process sharded table encoding for index builds.

Table encodings are embarrassingly parallel: each table's dataset-encoder
output depends only on the model weights and that table's columns.  This
module fans chunks of tables out across worker processes, each running the
same chunked padded-batch encode as the single-process path
(:meth:`repro.fcm.scorer.FCMScorer.index_repository`), and merges the
returned :class:`~repro.fcm.scorer.EncodedTable` payloads back into the
caller's scorer cache.

Workers are initialised once per process with the model configuration and a
``state_dict`` snapshot, so the (comparatively large) weights cross the
process boundary a single time rather than once per task.  Any failure to
spin up or drive the pool — unpicklable platform quirks, a missing ``fork``
start method, a task timeout — degrades gracefully to the in-process encode
and is reported on the returned :class:`ShardBuildReport` instead of raised.

Precision: the parent model pins its resolved dtype onto ``FCMConfig.dtype``
at construction, and that config is what crosses the process boundary — so
workers rehydrate under the parent's precision regardless of their own
``REPRO_DTYPE`` environment or policy state, and the merged
:class:`~repro.fcm.scorer.EncodedTable` payloads carry the same dtype the
single-process build would have produced.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.table import Table
from ..fcm.config import FCMConfig
from ..fcm.model import FCMModel
from ..fcm.scorer import EncodedTable, FCMScorer
from ..obs import get_logger

_log = get_logger("repro.serving.sharding")

#: Per-process scorer built by :func:`_init_worker`; lives for the pool's
#: lifetime so repeated tasks on one worker reuse the reconstructed model.
_WORKER_SCORER: Optional[FCMScorer] = None


def build_worker_scorer(config: FCMConfig, state: Dict[str, np.ndarray]) -> FCMScorer:
    """Rehydrate a ready-to-serve scorer from ``(config, state_dict)``.

    The one-time worker-process initialisation shared by the sharded-build
    pool (here) and the persistent query-worker pool
    (:mod:`repro.serving.workers`): reconstruct the model under the parent's
    pinned precision (``config.dtype``), load the weight snapshot, switch to
    eval mode and wrap it in a fresh :class:`~repro.fcm.scorer.FCMScorer`.
    """
    model = FCMModel(config)
    model.load_state_dict(state)
    model.eval()
    return FCMScorer(model)


def _init_worker(config: FCMConfig, state: Dict[str, np.ndarray]) -> None:
    global _WORKER_SCORER
    _WORKER_SCORER = build_worker_scorer(config, state)


def _encode_shard(tables: List[Table]) -> List[EncodedTable]:
    if _WORKER_SCORER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("shard worker used before initialisation")
    _WORKER_SCORER.index_repository(tables)
    return [_WORKER_SCORER.encoded_table(table.table_id) for table in tables]


@dataclass
class ShardBuildReport:
    """How a sharded encode actually ran (for stats and benchmarks)."""

    num_workers: int
    shards: List[List[str]] = field(default_factory=list)  # table ids per shard
    seconds: float = 0.0
    fallback_reason: Optional[str] = None

    @property
    def used_processes(self) -> bool:
        return self.num_workers > 1 and self.fallback_reason is None


def _encode_in_process(
    model: FCMModel, tables: Sequence[Table]
) -> List[EncodedTable]:
    scorer = FCMScorer(model)
    scorer.index_repository(tables)
    return [scorer.encoded_table(table.table_id) for table in tables]


def chunk_evenly(items: Sequence, num_chunks: int) -> List[list]:
    """Split a sequence into contiguous, near-equal chunks (no empties).

    The one partitioning rule of the serving layer: build shards
    (:func:`shard_tables`) and query-verification shards
    (:func:`repro.serving.workers.split_shards`) both use it, so the two
    fan-outs can never drift apart.
    """
    num_chunks = max(1, min(int(num_chunks), len(items)))
    bounds = np.linspace(0, len(items), num_chunks + 1).astype(int)
    return [
        list(items[start:end])
        for start, end in zip(bounds[:-1], bounds[1:])
        if end > start
    ]


def shard_tables(tables: Sequence[Table], num_shards: int) -> List[List[Table]]:
    """Split ``tables`` into ``num_shards`` contiguous, near-equal chunks."""
    return chunk_evenly(tables, num_shards)


def encode_tables_sharded(
    model: FCMModel,
    tables: Sequence[Table],
    num_workers: int,
    timeout: Optional[float] = None,
) -> Tuple[List[EncodedTable], ShardBuildReport]:
    """Encode ``tables`` across ``num_workers`` processes.

    Returns the encodings in input order plus a :class:`ShardBuildReport`.
    The encodings match the single-process cached encodings to
    floating-point accuracy (each worker runs the identical chunked batched
    encode); ``tests/test_serving.py`` pins the parity.

    Parameters
    ----------
    num_workers:
        ``<= 1`` encodes in-process (no pool).
    timeout:
        Optional per-build wall-clock guard; on expiry the pool is abandoned
        and the remaining shards are encoded in-process.
    """
    tables = list(tables)
    num_workers = max(1, int(num_workers))
    start = time.perf_counter()

    if num_workers <= 1 or len(tables) < 2:
        encoded = _encode_in_process(model, tables)
        report = ShardBuildReport(
            num_workers=1,
            shards=[[t.table_id for t in tables]] if tables else [],
            seconds=time.perf_counter() - start,
        )
        return encoded, report

    shards = shard_tables(tables, num_workers)
    report = ShardBuildReport(
        num_workers=len(shards),
        shards=[[t.table_id for t in shard] for shard in shards],
    )
    pool: Optional[ProcessPoolExecutor] = None
    try:
        context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=context,
            initializer=_init_worker,
            initargs=(model.config, model.state_dict()),
        )
        futures = [pool.submit(_encode_shard, shard) for shard in shards]
        deadline = None if timeout is None else start + timeout
        shard_results: List[List[EncodedTable]] = []
        for future in futures:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            shard_results.append(future.result(timeout=remaining))
        pool.shutdown(wait=True)
        encoded = [enc for shard in shard_results for enc in shard]
    except Exception as exc:  # degrade, never fail the build
        if pool is not None:
            # Don't block on stuck workers: abandon outstanding tasks.
            pool.shutdown(wait=False, cancel_futures=True)
        report.fallback_reason = f"{type(exc).__name__}: {exc}"
        _log.info(
            "sharded_build_fallback",
            reason=report.fallback_reason,
            tables=len(tables),
            shards=len(shards),
        )
        encoded = _encode_in_process(model, tables)
    report.seconds = time.perf_counter() - start
    _log.info(
        "sharded_build_finished",
        tables=len(tables),
        workers=report.num_workers,
        seconds=report.seconds,
        used_processes=report.used_processes,
    )
    return encoded, report
