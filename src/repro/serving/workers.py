"""Persistent process-level query-verification workers.

``ServingConfig(num_query_shards=N)`` bounds the padded matcher batch by
splitting candidate verification into N stacked forwards — but they all run
on the parent's single core.  This module gives :class:`SearchService` real
*process*-level parallelism for the verification stage without paying a
process-spawn (or model-rebuild) cost per query:

* :class:`QueryWorkerPool` keeps ``num_workers`` long-lived worker processes
  alive for the service's lifetime.  Each worker rehydrates the model
  **once** from ``(config, state_dict)`` — the same initialisation the
  sharded-build pool uses (:func:`repro.serving.sharding.build_worker_scorer`)
  — so the weights cross the process boundary a single time.
* The parent *syncs* cached :class:`~repro.fcm.scorer.EncodedTable` payloads
  (and evictions) to every worker incrementally, so after the initial
  broadcast an ``add_tables`` of m tables ships only those m encodings.
* Per query, the parent prepares the chart once
  (:meth:`FCMScorer.prepare_query`) and scatters ``(chart_input, shard)``
  tasks; each worker scores its shard with
  :meth:`FCMScorer.score_encoded_batch` against its own synced cache.
  Identical inputs, weights and ops mean the gathered scores equal the
  in-process path to floating-point accuracy (``tests/test_serving.py``
  pins ≤1e-8 under float64).

The pool never takes the service down: any failure — spawn refusal, a dead
worker, a reply timeout — raises :class:`WorkerPoolError` to the caller,
and :class:`SearchService` responds by closing the pool and serving the
query in-process (the fallback is sticky until
:meth:`SearchService.reset_query_pool`).

Precision: as with sharded builds, the parent's :class:`FCMConfig` pins its
resolved dtype, so workers score under the parent's precision regardless of
their own ``REPRO_DTYPE`` environment.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..fcm.config import FCMConfig
from ..fcm.model import FCMModel
from ..fcm.preprocessing import ChartInput
from ..fcm.scorer import EncodedTable
from ..obs import current_span, current_trace_id, get_logger, span, start_trace
from .persistence import PathLike, snapshot_encodings
from .sharding import build_worker_scorer, chunk_evenly

_log = get_logger("repro.serving.workers")


class WorkerPoolError(RuntimeError):
    """A query-worker operation failed (caller should fall back in-process)."""


def _worker_main(
    conn,
    config: FCMConfig,
    state: Dict[str, np.ndarray],
    mmap_snapshot: Optional[PathLike] = None,
) -> None:
    """Worker-process loop: rehydrate once, then serve sync/score requests.

    With ``mmap_snapshot`` set, the worker opens that v2 snapshot with
    ``mmap=True`` during initialisation: its cache entries become zero-copy
    read-only views into the memory-mapped sidecar files, so the base
    encodings are never pickled over the pipe and every worker shares the
    same page-cache-resident bytes.  The ``ready`` handshake reports the
    loaded table ids so the parent knows exactly what the workers hold.

    **Tracing**: a ``score`` message carries the parent's trace id (or
    ``None`` when the query is untraced).  Traced shards run under a
    worker-local trace root so the ``shard_score`` stage (and the
    ``encode_chart`` span the scorer opens inside it) is captured, and the
    serialised tree rides back with the scores for the parent to stitch.
    Model rehydration happens once, long before any query — its cost is
    recorded at init and attached as a deferred ``rehydrate`` span to the
    first traced reply, so profiles still show what cold-start cost.
    """
    rehydrate_start = time.perf_counter()
    try:
        scorer = build_worker_scorer(config, state)
        loaded_ids: List[str] = []
        if mmap_snapshot is not None:
            for encoded in snapshot_encodings(mmap_snapshot, mmap=True):
                scorer.add_encoded(encoded)
                loaded_ids.append(encoded.table_id)
    except BaseException as exc:  # report the failed init, then exit
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        conn.close()
        return
    rehydrate_seconds = time.perf_counter() - rehydrate_start
    rehydrate_reported = False
    conn.send(("ready", loaded_ids))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        kind = message[0]
        try:
            if kind == "stop":
                break
            if kind == "sync":
                _, encoded, evicted = message
                for item in encoded:
                    scorer.add_encoded(item)
                for table_id in evicted:
                    scorer.evict_table(table_id)
                reply = ("ok", len(encoded) + len(evicted))
            elif kind == "score":
                # Length-tolerant unpack: older parents send a 4-tuple, the
                # current parent appends an options dict (``fused`` override).
                _, chart_input, table_ids, trace_id, *rest = message
                options = rest[0] if rest else {}
                fused = options.get("fused")
                if trace_id is None:
                    scores = scorer.score_encoded_batch(
                        chart_input, table_ids, fused=fused
                    )
                    reply = ("ok", (scores, None))
                else:
                    with start_trace("worker", trace_id=trace_id) as root:
                        with span("shard_score", tables=len(table_ids)):
                            scores = scorer.score_encoded_batch(
                                chart_input, table_ids, fused=fused
                            )
                    if not rehydrate_reported:
                        root.attach(
                            {
                                "name": "rehydrate",
                                "duration_ms": rehydrate_seconds * 1e3,
                                "attributes": {"deferred": True},
                                "children": [],
                            }
                        )
                        rehydrate_reported = True
                    reply = ("ok", (scores, root.to_dict()))
            else:
                reply = ("error", f"unknown message kind {kind!r}")
        except BaseException as exc:
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass
class WorkerPoolStats:
    """What a pool has done since :meth:`QueryWorkerPool.start` (diagnostics)."""

    num_workers: int = 0
    queries: int = 0
    tables_synced: int = 0
    tables_evicted: int = 0


def split_shards(ids: Sequence[str], num_shards: int) -> List[List[str]]:
    """Split candidate ids into at most ``num_shards`` contiguous shards.

    Edge cases are part of the contract (``tests/test_serving.py`` pins
    them): fewer ids than shards yields one *singleton* shard per id —
    never an empty shard, so nothing useless is ever shipped over a worker
    pipe (:meth:`QueryWorkerPool.score` additionally drops empties defence
    in depth); an empty id list yields no shards at all.  A non-positive
    ``num_shards`` is a caller bug — e.g. a ``ServingConfig`` mutated after
    its ``__post_init__`` validation ran — and raises :class:`ValueError`
    loudly instead of silently collapsing the fan-out into one shard (the
    serving layer catches it like any other pool failure and verifies
    in-process).
    """
    if int(num_shards) < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return chunk_evenly(list(ids), num_shards)


class QueryWorkerPool:
    """A fixed set of long-lived processes verifying candidate shards.

    Unlike a task-queue executor, every worker owns a private duplex pipe:
    the parent can *broadcast* cache syncs to all workers and *scatter*
    per-query shards, then gather the replies in order.  Workers are started
    by :meth:`start` (a ``ready`` handshake confirms the model rehydrated)
    and run until :meth:`close` or parent exit (daemon processes).

    All operations raise :class:`WorkerPoolError` on any worker failure or
    timeout; the pool is not usable afterwards and should be closed.

    With ``mmap_snapshot`` (a v2 snapshot path) every worker memory-maps the
    base encodings at start instead of receiving them pickled through
    :meth:`sync` — worker RSS then grows by the page-cache pages the kernel
    charges to the mapping, not by a private copy of the index.  Tables
    added after the snapshot still ship incrementally via :meth:`sync`.
    """

    def __init__(
        self,
        model: FCMModel,
        num_workers: int,
        start_timeout: Optional[float] = 120.0,
        mmap_snapshot: Optional[PathLike] = None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("QueryWorkerPool needs num_workers >= 2")
        self._model = model
        self._num_workers = int(num_workers)
        self._start_timeout = start_timeout
        self._mmap_snapshot = mmap_snapshot
        self._preloaded_ids: List[str] = []
        self._processes: List[multiprocessing.Process] = []
        self._connections: list = []
        self.stats = WorkerPoolStats()
        #: Serialised worker span trees from the most recent traced
        #: :meth:`score` call (diagnostics; also stitched into the ambient
        #: trace automatically).
        self.last_worker_spans: List[Dict] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def started(self) -> bool:
        return bool(self._processes)

    @property
    def alive(self) -> bool:
        return bool(self._processes) and all(p.is_alive() for p in self._processes)

    @property
    def worker_pids(self) -> List[int]:
        """The live workers' process ids (for external RSS measurement)."""
        return [p.pid for p in self._processes if p.pid is not None]

    @property
    def preloaded_table_ids(self) -> List[str]:
        """Table ids every worker loaded from ``mmap_snapshot`` at start.

        Empty for pools started without a snapshot.  The parent uses this as
        the sync baseline: only the diff against it is ever shipped.
        """
        return list(self._preloaded_ids)

    def start(self) -> "QueryWorkerPool":
        """Spawn the workers and wait for every ``ready`` handshake.

        Each worker receives ``(model.config, state_dict)`` once, rebuilds
        the model and acknowledges; a worker that fails to initialise (or to
        answer within ``start_timeout`` seconds) aborts the whole start with
        :class:`WorkerPoolError` after closing whatever came up.
        """
        if self._processes:
            return self
        context = multiprocessing.get_context()
        config, state = self._model.config, self._model.state_dict()
        try:
            for _ in range(self._num_workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main,
                    args=(child_conn, config, state, self._mmap_snapshot),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._connections.append(parent_conn)
            deadline = (
                None
                if self._start_timeout is None
                else time.perf_counter() + self._start_timeout
            )
            loaded: List[List[str]] = []
            for conn in self._connections:
                kind, payload = self._recv(conn, deadline)
                if kind != "ready":
                    raise WorkerPoolError(f"worker failed to initialise: {payload}")
                loaded.append(list(payload or []))
            if any(ids != loaded[0] for ids in loaded[1:]):
                # A segment landed between two workers opening the snapshot;
                # the caches would diverge silently, so refuse the pool and
                # let the serving layer fall back (or retry) instead.
                raise WorkerPoolError(
                    "workers disagree on the snapshot state they mapped"
                )
            self._preloaded_ids = loaded[0] if loaded else []
        except Exception:
            self.close()
            raise
        self.stats = WorkerPoolStats(num_workers=self._num_workers)
        _log.info(
            "worker_pool_started",
            num_workers=self._num_workers,
            preloaded_tables=len(self._preloaded_ids),
            mmap_snapshot=str(self._mmap_snapshot) if self._mmap_snapshot else None,
        )
        return self

    def close(self) -> None:
        """Stop every worker (idempotent; never raises)."""
        if self._processes:
            _log.info(
                "worker_pool_closed",
                num_workers=len(self._processes),
                queries=self.stats.queries,
            )
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for conn in self._connections:
            try:
                conn.close()
            except Exception:
                pass
        for process in self._processes:
            try:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
            except Exception:
                pass
        self._processes = []
        self._connections = []
        self._preloaded_ids = []

    def __enter__(self) -> "QueryWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #
    @staticmethod
    def _recv(conn, deadline: Optional[float]):
        """One reply off ``conn``, honouring the deadline; normalises errors."""
        remaining = None if deadline is None else deadline - time.perf_counter()
        if remaining is not None and not conn.poll(max(0.0, remaining)):
            raise WorkerPoolError("timed out waiting for a worker reply")
        try:
            message = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerPoolError(f"worker connection lost: {exc}") from exc
        kind, payload = message
        if kind == "error":
            raise WorkerPoolError(f"worker failed: {payload}")
        return kind, payload

    def _require_started(self) -> None:
        if not self._processes:
            raise WorkerPoolError("pool is not running (call start())")

    def _deadline(self, timeout: Optional[float]) -> Optional[float]:
        return None if timeout is None else time.perf_counter() + timeout

    def sync(
        self,
        encoded: Sequence[EncodedTable],
        evicted: Sequence[str] = (),
        timeout: Optional[float] = None,
    ) -> None:
        """Broadcast cache additions/evictions to every worker and wait.

        ``encoded`` payloads are the parent's cached
        :class:`~repro.fcm.scorer.EncodedTable` objects (shipped verbatim, so
        worker-side scores use the exact arrays the parent would); ``evicted``
        ids are dropped from every worker cache.  The call is incremental —
        the serving layer only sends the diff since the last sync.
        """
        self._require_started()
        encoded = list(encoded)
        evicted = list(evicted)
        if not encoded and not evicted:
            return
        deadline = self._deadline(timeout)
        for conn in self._connections:
            conn.send(("sync", encoded, evicted))
        for conn in self._connections:
            self._recv(conn, deadline)
        self.stats.tables_synced += len(encoded)
        self.stats.tables_evicted += len(evicted)
        _log.debug("worker_sync", tables=len(encoded), evicted=len(evicted))

    def score(
        self,
        chart_input: ChartInput,
        shards: Sequence[Sequence[str]],
        timeout: Optional[float] = None,
        fused: Optional[bool] = None,
    ) -> Dict[str, float]:
        """Scatter candidate shards over the workers and gather the scores.

        Shards are assigned round-robin (shard *i* to worker ``i % W``); a
        worker holding several shards pipelines them over its FIFO pipe.
        Returns the merged ``{table_id: score}`` map covering every id in
        every shard.  ``fused`` rides along in the per-shard options dict and
        overrides each worker scorer's fused-kernel default for this query
        (``None`` keeps the worker default; scores are identical either way).

        When an ambient trace is active (see :mod:`repro.obs.tracing`) the
        trace id rides along with every shard; workers answer with
        ``(scores, span_tree)`` and the trees are stitched under the current
        span (and kept in :attr:`last_worker_spans`).  Untraced queries send
        ``trace_id=None`` and workers skip span bookkeeping entirely.
        """
        self._require_started()
        shards = [list(shard) for shard in shards if shard]
        if not shards:
            return {}
        trace_id = current_trace_id()
        options = {"fused": fused}
        deadline = self._deadline(timeout)
        assigned: List[int] = []
        for index, (shard, conn) in enumerate(
            zip(shards, itertools.cycle(self._connections))
        ):
            conn.send(("score", chart_input, shard, trace_id, options))
            assigned.append(index % len(self._connections))
        scores: Dict[str, float] = {}
        worker_trees: List[Dict] = []
        for conn_index in assigned:
            _, payload = self._recv(self._connections[conn_index], deadline)
            shard_scores, worker_tree = payload
            scores.update(shard_scores)
            if worker_tree is not None:
                worker_trees.append(worker_tree)
        if worker_trees:
            self.last_worker_spans = worker_trees
            parent = current_span()
            if parent is not None:
                for tree in worker_trees:
                    parent.attach(tree)
        self.stats.queries += 1
        return scores
