"""``repro.serving`` — incremental, sharded, persistent index serving.

The serving layer keeps the hybrid interval-tree + LSH index alive as a
long-running service instead of a one-shot batch build: in-place
add/remove of tables, multi-process sharded encoding at build time,
``.npz`` snapshots that survive restarts, an LRU result cache and
per-strategy query statistics.  See :class:`SearchService` for the facade
and ``docs/ARCHITECTURE.md`` ("Serving") for how it sits on the layers.
"""

from .persistence import SNAPSHOT_VERSION, load_processor, save_processor
from .service import SearchService, ServiceStats, ServingConfig, StrategyStats
from .sharding import ShardBuildReport, encode_tables_sharded, shard_tables

__all__ = [
    "SNAPSHOT_VERSION",
    "SearchService",
    "ServiceStats",
    "ServingConfig",
    "ShardBuildReport",
    "StrategyStats",
    "encode_tables_sharded",
    "load_processor",
    "save_processor",
    "shard_tables",
]
