"""``repro.serving`` — incremental, sharded, persistent, multi-process serving.

The serving layer keeps the hybrid interval-tree + LSH index alive as a
long-running service instead of a one-shot batch build: in-place
add/remove of tables, multi-process sharded encoding at build time,
process-level parallel query verification (:mod:`repro.serving.workers`),
append-only ``.npz`` snapshots that survive restarts in O(delta) — with a
memory-mappable v2 layout shared zero-copy across the worker pool
(:mod:`repro.serving.persistence`, ``ServingConfig(mmap_index=True)``) —
an LRU result cache and per-strategy query statistics.  See
:class:`SearchService` for the facade, ``docs/ARCHITECTURE.md`` ("Serving")
for how it sits on the layers and ``docs/SERVING_OPS.md`` for the
operator's guide.
"""

from .http.server import ChartSearchServer, HTTPServingConfig
from .persistence import (
    SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_V2,
    SnapshotError,
    compact_snapshot,
    load_processor,
    save_processor,
    snapshot_encodings,
    snapshot_layout,
    snapshot_segments,
)
from .service import (
    CLOSED_FALLBACK_REASON,
    SearchService,
    ServiceStats,
    ServingConfig,
    StrategyStats,
)
from .sharding import (
    ShardBuildReport,
    build_worker_scorer,
    encode_tables_sharded,
    shard_tables,
)
from .streaming import (
    STREAM_SEGMENT_SEP,
    AppendResult,
    StreamingConfig,
    SubscriptionEngine,
    SubscriptionEvent,
    SubscriptionStats,
    append_stream_rows,
    segment_table_id,
)
from .workers import (
    QueryWorkerPool,
    WorkerPoolError,
    WorkerPoolStats,
    split_shards,
)

__all__ = [
    "CLOSED_FALLBACK_REASON",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_VERSION_V2",
    "STREAM_SEGMENT_SEP",
    "AppendResult",
    "ChartSearchServer",
    "HTTPServingConfig",
    "QueryWorkerPool",
    "SearchService",
    "ServiceStats",
    "ServingConfig",
    "ShardBuildReport",
    "SnapshotError",
    "StrategyStats",
    "StreamingConfig",
    "SubscriptionEngine",
    "SubscriptionEvent",
    "SubscriptionStats",
    "WorkerPoolError",
    "WorkerPoolStats",
    "append_stream_rows",
    "build_worker_scorer",
    "compact_snapshot",
    "encode_tables_sharded",
    "load_processor",
    "save_processor",
    "segment_table_id",
    "shard_tables",
    "snapshot_encodings",
    "snapshot_layout",
    "snapshot_segments",
    "split_shards",
]
