"""``repro.serving.http`` — the serving stack's network boundary.

A dependency-free (stdlib-only) threaded HTTP front-end over
:class:`~repro.serving.service.SearchService`: JSON chart specs in, ranked
tables out, with admission control (429 + ``Retry-After`` under overload),
graceful drain, and a ``/metrics`` endpoint exporting per-endpoint
latency/status counters alongside the service's per-strategy statistics.

* :class:`ChartSearchServer` / :class:`HTTPServingConfig` — the server
  (:mod:`repro.serving.http.server`);
* the wire formats and :class:`ProtocolError` —
  :mod:`repro.serving.http.protocol`;
* ``python -m repro.serving.http`` — boot a demo server over a generated
  corpus (:mod:`repro.serving.http.demo`);
* ``benchmarks/load_gen.py`` — the matching concurrent-user load
  generator (ramp → sustained → deliberate overload), which records
  ``BENCH_http.json``.

Operator guidance (endpoint table, overload tuning, drain semantics) lives
in ``docs/SERVING_OPS.md`` ("HTTP serving").
"""

from .protocol import (
    ProtocolError,
    chart_payload_from_series,
    parse_chart_payload,
    parse_query_debug,
    parse_query_payload,
    parse_snapshot_payload,
    parse_table_payload,
    parse_tables_payload,
    query_result_to_dict,
    table_payload_from_table,
)
from .server import (
    ChartSearchServer,
    EndpointMetricsRegistry,
    HTTPServingConfig,
    MetricsRegistry,
)

__all__ = [
    "ChartSearchServer",
    "EndpointMetricsRegistry",
    "HTTPServingConfig",
    "MetricsRegistry",
    "ProtocolError",
    "chart_payload_from_series",
    "parse_chart_payload",
    "parse_query_debug",
    "parse_query_payload",
    "parse_snapshot_payload",
    "parse_table_payload",
    "parse_tables_payload",
    "query_result_to_dict",
    "table_payload_from_table",
]
