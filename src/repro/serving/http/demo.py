"""Boot a self-contained demo server: ``python -m repro.serving.http``.

Builds a :class:`~repro.serving.service.SearchService` over a synthetic
corpus (deterministic per ``--seed``, so a load generator pointed at the
same seed can reconstruct the exact tables and charts client-side), wraps
it in a :class:`~repro.serving.http.server.ChartSearchServer` and serves
until interrupted — SIGINT/SIGTERM trigger the graceful drain.

The model is **untrained by default**: every serving-layer property
(ranking determinism, admission control, drain, snapshots) is
weight-independent, and skipping training makes the boot fast enough for a
CI smoke job.  Pass ``--epochs N`` for a trained model when ranking
*quality* matters.

Usage::

    PYTHONPATH=src python -m repro.serving.http --port 8080 --tables 40
    curl -s localhost:8080/healthz
    curl -s localhost:8080/metrics | python -m json.tool
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import List, Optional, Sequence, Tuple

from ...data import CorpusConfig, filter_line_chart_records, generate_corpus
from ...fcm import FCMConfig, FCMModel
from ...index import LSHConfig
from ..service import SearchService, ServingConfig
from .protocol import chart_payload_from_series
from .server import ChartSearchServer, HTTPServingConfig


def demo_records(num_tables: int, seed: int) -> List:
    """The deterministic corpus records behind a demo server.

    Exposed so clients of a ``--tables N --seed S`` server (tests, the
    load generator) can rebuild the same tables and derive query charts
    without any out-of-band data exchange.
    """
    return filter_line_chart_records(
        generate_corpus(
            CorpusConfig(
                num_records=num_tables, min_rows=80, max_rows=160, seed=seed
            )
        )
    )


def demo_query_payloads(records: Sequence, limit: Optional[int] = None) -> List[dict]:
    """JSON ``/query`` chart payloads for (a slice of) the demo records."""
    payloads = []
    for record in records[: limit if limit is not None else len(records)]:
        data = record.table.to_underlying_data(
            list(record.spec.y_columns), x_column=record.spec.x_column
        )
        payloads.append(chart_payload_from_series(data.series))
    return payloads


def build_demo_service(
    num_tables: int = 40,
    seed: int = 7,
    query_workers: int = 0,
    epochs: int = 0,
    tracing: bool = False,
) -> Tuple[SearchService, List]:
    """An indexed :class:`SearchService` over the demo corpus.

    Returns ``(service, records)`` so the caller can also derive query
    charts (the records carry the chart specs the corpus generator chose).
    """
    records = demo_records(num_tables, seed)
    config = FCMConfig()
    if epochs > 0:
        from ...fcm import TrainerConfig, train_fcm

        model, _, _ = train_fcm(
            records[: max(8, len(records) // 2)],
            config=config,
            trainer_config=TrainerConfig(epochs=epochs, batch_size=8),
        )
    else:
        model = FCMModel(config)
    service = SearchService(
        model,
        ServingConfig(
            lsh_config=LSHConfig(num_bits=10, hamming_radius=1),
            query_workers=query_workers,
            tracing=tracing,
        ),
    )
    service.build([record.table for record in records])
    return service, records


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serve a demo chart-search index over HTTP"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--tables", type=int, default=40, help="corpus size to index"
    )
    parser.add_argument("--seed", type=int, default=7, help="corpus seed")
    parser.add_argument(
        "--epochs",
        type=int,
        default=0,
        help="FCM training epochs (0 = untrained; serving paths are "
        "weight-independent)",
    )
    parser.add_argument(
        "--query-workers",
        type=int,
        default=0,
        help="ServingConfig.query_workers for the wrapped service",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="admission bound before 429s",
    )
    parser.add_argument(
        "--snapshot-path",
        default=None,
        help="default target of POST /snapshot",
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help="trace every query end-to-end (span trees; see REPRO_SLOW_QUERY_MS "
        "and the per-request debug.trace flag)",
    )
    args = parser.parse_args(argv)

    print(f"building index over {args.tables} synthetic tables (seed {args.seed})...")
    service, records = build_demo_service(
        num_tables=args.tables,
        seed=args.seed,
        query_workers=args.query_workers,
        epochs=args.epochs,
        tracing=args.tracing,
    )
    server = ChartSearchServer(
        service,
        HTTPServingConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            snapshot_path=args.snapshot_path,
            tracing=args.tracing,
        ),
    ).start()
    print(f"serving {service.num_tables} tables at {server.url}")
    print("endpoints: POST /query /tables /snapshot, DELETE /tables/<id>, "
          "GET /tables /healthz /metrics")

    stop = threading.Event()

    def _stop(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    stop.wait()
    print("draining...")
    server.close()
    print("stopped")
    return 0
