"""JSON wire formats of the HTTP serving front-end.

Everything a client sends or receives is plain JSON; the conversions in
both directions live here so the socket handler (:mod:`.server`) contains
no parsing logic and the formats can be validated in isolation.

* a **chart payload** describes the underlying data of a query chart —
  one series per line, each with a ``y`` array and an optional shared-``x``
  array — and is rendered server-side into the exact
  :class:`~repro.charts.rasterizer.LineChart` the in-process path would
  build, so HTTP rankings are byte-identical to
  :meth:`repro.serving.SearchService.query` on the same data
  (``tests/test_http_serving.py`` pins this);
* a **table payload** describes a :class:`~repro.data.table.Table` to add
  to the live index (``table_id`` plus named numeric columns);
* :class:`ProtocolError` carries the HTTP status a malformed payload maps
  to, so every validation failure becomes a structured 4xx response
  instead of a 500.

Chart geometry is deliberately **not** client-controllable: the serving
model pins its :class:`~repro.charts.spec.ChartSpec` at construction and
the encoders derive segment sizes from it, so a client-supplied geometry
could never be scored correctly.  A payload carrying a ``spec`` key is
rejected with a 400 that says exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...charts.rasterizer import LineChart, render_line_chart
from ...charts.spec import ChartSpec
from ...data.column import Column
from ...data.table import DataSeries, Table, UnderlyingData
from ...index.hybrid import INDEXING_STRATEGIES, QueryResult


class ProtocolError(ValueError):
    """A request payload the server refuses, with the HTTP status to use."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


def _require(condition: bool, message: str, status: int = 400) -> None:
    if not condition:
        raise ProtocolError(message, status=status)


def _as_float_array(values: object, what: str) -> np.ndarray:
    _require(
        isinstance(values, (list, tuple)),
        f"{what} must be a JSON array of numbers",
    )
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        raise ProtocolError(f"{what} must contain only numbers") from None
    _require(array.ndim == 1, f"{what} must be a flat (1-D) array")
    _require(array.size > 0, f"{what} must not be empty")
    _require(
        bool(np.all(np.isfinite(array))),
        f"{what} must contain only finite numbers (no NaN/Infinity)",
    )
    return array


def parse_chart_payload(payload: object, spec: ChartSpec) -> LineChart:
    """Render the query chart described by ``payload`` under ``spec``.

    Expected shape::

        {"series": [{"y": [..], "x": [..]?, "name": str?}, ...]}

    ``x`` defaults to the implicit index ``1..N`` (the same default as
    :meth:`repro.data.table.Table.to_underlying_data`); all series of one
    chart must agree on their length with their own ``x``.  The rendered
    chart is deterministic, so two requests with equal payloads hit the
    service's content-addressed result cache.
    """
    _require(isinstance(payload, dict), "chart must be a JSON object")
    _require(
        "spec" not in payload,
        "chart geometry is fixed by the serving model and cannot be set "
        "per request; drop the 'spec' key",
    )
    unknown = set(payload) - {"series"}
    _require(not unknown, f"unknown chart keys: {sorted(unknown)}")
    series_payload = payload.get("series")
    _require(
        isinstance(series_payload, (list, tuple)) and len(series_payload) > 0,
        "chart.series must be a non-empty array",
    )
    series: List[DataSeries] = []
    for index, entry in enumerate(series_payload):
        what = f"chart.series[{index}]"
        _require(isinstance(entry, dict), f"{what} must be a JSON object")
        unknown = set(entry) - {"x", "y", "name"}
        _require(not unknown, f"unknown {what} keys: {sorted(unknown)}")
        y = _as_float_array(entry.get("y"), f"{what}.y")
        if entry.get("x") is not None:
            x = _as_float_array(entry["x"], f"{what}.x")
        else:
            x = np.arange(1, y.shape[0] + 1, dtype=np.float64)
        name = entry.get("name", f"series_{index}")
        _require(isinstance(name, str), f"{what}.name must be a string")
        try:
            series.append(DataSeries(x=x, y=y, name=name))
        except ValueError as exc:
            raise ProtocolError(f"{what}: {exc}") from exc
    return render_line_chart(UnderlyingData(series=series), spec=spec)


#: Recognised flags of the optional ``POST /query`` ``debug`` object.
QUERY_DEBUG_KEYS = ("trace", "profile")


def parse_query_debug(payload: object) -> Dict[str, bool]:
    """Validate the optional ``debug`` object of a ``POST /query`` body.

    ``{"debug": {"trace": true}}`` asks for the query's span tree in the
    response and ``{"debug": {"profile": true}}`` for a per-request cProfile
    capture (see :mod:`repro.obs.profiling`); both default to off.  A
    request without a ``debug`` key returns all-false — and gets the exact
    byte-identical response body an older client would, since the ``debug``
    response field is only emitted when asked for.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    debug = payload.get("debug")
    if debug is None:
        return {key: False for key in QUERY_DEBUG_KEYS}
    _require(isinstance(debug, dict), "debug must be a JSON object")
    unknown = set(debug) - set(QUERY_DEBUG_KEYS)
    _require(not unknown, f"unknown debug keys: {sorted(unknown)}")
    flags = {}
    for key in QUERY_DEBUG_KEYS:
        value = debug.get(key, False)
        _require(isinstance(value, bool), f"debug.{key} must be a boolean")
        flags[key] = value
    return flags


def parse_query_payload(
    payload: object, spec: ChartSpec
) -> Tuple[LineChart, int, str]:
    """Validate a ``POST /query`` body → ``(chart, k, strategy)``.

    ``k`` is required and must be a positive integer; ``strategy`` defaults
    to ``"hybrid"`` and must be one of
    :data:`repro.index.hybrid.INDEXING_STRATEGIES`.  The optional ``debug``
    object is validated separately by :func:`parse_query_debug`.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {"chart", "k", "strategy", "debug"}
    _require(not unknown, f"unknown request keys: {sorted(unknown)}")
    _require("chart" in payload, "missing required key 'chart'")
    _require("k" in payload, "missing required key 'k'")
    k = payload["k"]
    _require(
        isinstance(k, int) and not isinstance(k, bool),
        "k must be an integer",
    )
    _require(k >= 1, f"k must be >= 1, got {k}")
    strategy = payload.get("strategy", "hybrid")
    _require(
        strategy in INDEXING_STRATEGIES,
        f"unknown strategy {strategy!r}; expected one of "
        f"{list(INDEXING_STRATEGIES)}",
    )
    chart = parse_chart_payload(payload["chart"], spec)
    return chart, k, strategy


def parse_table_payload(payload: object) -> Table:
    """Build one :class:`~repro.data.table.Table` from its JSON description.

    Expected shape::

        {"table_id": str, "columns": [{"name": str, "values": [..],
                                       "role": "x"|"y"?}, ...]}
    """
    _require(isinstance(payload, dict), "each table must be a JSON object")
    unknown = set(payload) - {"table_id", "columns"}
    _require(not unknown, f"unknown table keys: {sorted(unknown)}")
    table_id = payload.get("table_id")
    _require(
        isinstance(table_id, str) and bool(table_id),
        "table_id must be a non-empty string",
    )
    columns_payload = payload.get("columns")
    _require(
        isinstance(columns_payload, (list, tuple)) and len(columns_payload) > 0,
        f"table {table_id!r}: columns must be a non-empty array",
    )
    columns: List[Column] = []
    for index, entry in enumerate(columns_payload):
        what = f"table {table_id!r} columns[{index}]"
        _require(isinstance(entry, dict), f"{what} must be a JSON object")
        unknown = set(entry) - {"name", "values", "role"}
        _require(not unknown, f"unknown {what} keys: {sorted(unknown)}")
        name = entry.get("name")
        _require(isinstance(name, str) and bool(name), f"{what}.name must be a non-empty string")
        role = entry.get("role")
        _require(
            role is None or role in ("x", "y"),
            f"{what}.role must be 'x', 'y' or omitted",
        )
        values = _as_float_array(entry.get("values"), f"{what}.values")
        try:
            columns.append(Column(name=name, values=values, role=role))
        except ValueError as exc:
            raise ProtocolError(f"{what}: {exc}") from exc
    try:
        return Table(table_id, columns)
    except ValueError as exc:
        raise ProtocolError(f"table {table_id!r}: {exc}") from exc


def parse_tables_payload(payload: object) -> List[Table]:
    """Validate a ``POST /tables`` body → the tables to add."""
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {"tables"}
    _require(not unknown, f"unknown request keys: {sorted(unknown)}")
    tables_payload = payload.get("tables")
    _require(
        isinstance(tables_payload, (list, tuple)) and len(tables_payload) > 0,
        "tables must be a non-empty array",
    )
    tables = [parse_table_payload(entry) for entry in tables_payload]
    ids = [t.table_id for t in tables]
    _require(
        len(set(ids)) == len(ids),
        f"duplicate table_id in one request: {sorted(ids)}",
    )
    return tables


def parse_rows_payload(payload: object) -> Tuple[Dict[str, np.ndarray], Dict[str, str]]:
    """Validate a ``POST /tables/{id}/rows`` body → ``(columns, roles)``.

    Expected shape::

        {"columns": [{"name": str, "values": [..], "role": "x"|"y"?}, ...]}

    The same column idiom as ``POST /tables`` minus the ``table_id`` (it
    rides in the path).  ``role`` is only honoured on the append that
    creates the stream; later appends must carry the stream's columns.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {"columns"}
    _require(not unknown, f"unknown request keys: {sorted(unknown)}")
    columns_payload = payload.get("columns")
    _require(
        isinstance(columns_payload, (list, tuple)) and len(columns_payload) > 0,
        "columns must be a non-empty array",
    )
    columns: Dict[str, np.ndarray] = {}
    roles: Dict[str, str] = {}
    for index, entry in enumerate(columns_payload):
        what = f"columns[{index}]"
        _require(isinstance(entry, dict), f"{what} must be a JSON object")
        unknown = set(entry) - {"name", "values", "role"}
        _require(not unknown, f"unknown {what} keys: {sorted(unknown)}")
        name = entry.get("name")
        _require(
            isinstance(name, str) and bool(name),
            f"{what}.name must be a non-empty string",
        )
        _require(name not in columns, f"duplicate column name {name!r}")
        role = entry.get("role")
        _require(
            role is None or role in ("x", "y"),
            f"{what}.role must be 'x', 'y' or omitted",
        )
        columns[name] = _as_float_array(entry.get("values"), f"{what}.values")
        if role is not None:
            roles[name] = role
    return columns, roles


def parse_subscribe_payload(
    payload: object, spec: ChartSpec
) -> Tuple[LineChart, int, float]:
    """Validate a ``POST /subscriptions`` body → ``(chart, k, threshold)``.

    ``chart`` uses the standard chart payload; ``k`` (events per ingest
    batch, default 1) must be a positive integer and ``threshold`` (minimum
    exact score that fires an event, default 0.0) a finite number.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {"chart", "k", "threshold"}
    _require(not unknown, f"unknown request keys: {sorted(unknown)}")
    _require("chart" in payload, "missing required key 'chart'")
    k = payload.get("k", 1)
    _require(
        isinstance(k, int) and not isinstance(k, bool),
        "k must be an integer",
    )
    _require(k >= 1, f"k must be >= 1, got {k}")
    threshold = payload.get("threshold", 0.0)
    _require(
        isinstance(threshold, (int, float)) and not isinstance(threshold, bool),
        "threshold must be a number",
    )
    threshold = float(threshold)
    _require(np.isfinite(threshold), "threshold must be finite")
    chart = parse_chart_payload(payload["chart"], spec)
    return chart, int(k), threshold


def parse_snapshot_payload(
    payload: object, default_path: Optional[str]
) -> Tuple[str, bool]:
    """Validate a ``POST /snapshot`` body → ``(path, append)``.

    The body may be empty when the server was configured with a default
    snapshot path; otherwise ``path`` is required.
    """
    payload = payload if payload is not None else {}
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {"path", "append"}
    _require(not unknown, f"unknown request keys: {sorted(unknown)}")
    path = payload.get("path", default_path)
    _require(
        isinstance(path, str) and bool(path),
        "no snapshot path: pass 'path' in the body or configure "
        "HTTPServingConfig.snapshot_path",
    )
    append = payload.get("append", False)
    _require(isinstance(append, bool), "append must be a boolean")
    return path, append


def query_result_to_dict(result: QueryResult, k: int, strategy: str) -> Dict:
    """Serialise a :class:`~repro.index.hybrid.QueryResult` for the wire.

    Scores are emitted as native floats: Python's JSON encoder round-trips
    them through ``repr``, so the client reads back the bit-exact score the
    in-process path computed.
    """
    return {
        "k": int(k),
        "strategy": strategy,
        "ranking": [
            [table_id, float(score)] for table_id, score in result.ranking
        ],
        "candidates": int(result.candidates),
        "total_tables": int(result.total_tables),
        "seconds": float(result.seconds),
    }


def chart_payload_from_series(
    series: Sequence[DataSeries],
) -> Dict:
    """The inverse of :func:`parse_chart_payload` (clients, tests, load-gen).

    Given the underlying data series of a chart, produce the JSON body a
    client would POST to ``/query`` to ask about that chart.
    """
    return {
        "series": [
            {
                "x": [float(v) for v in entry.x],
                "y": [float(v) for v in entry.y],
                "name": entry.name,
            }
            for entry in series
        ]
    }


def table_payload_from_table(table: Table) -> Dict:
    """The inverse of :func:`parse_table_payload` (clients, tests, load-gen)."""
    return {
        "table_id": table.table_id,
        "columns": [
            {
                "name": column.name,
                "values": [float(v) for v in column.values],
                **({"role": column.role} if column.role else {}),
            }
            for column in table.columns
        ],
    }
