"""A dependency-free threaded HTTP front-end over :class:`SearchService`.

This is the serving stack's first network boundary: JSON chart specs in,
ranked tables out, built entirely on the stdlib
(:class:`http.server.ThreadingHTTPServer`) so the container needs nothing
beyond what the repository already imports.

Endpoints
---------
==============================  =============================================
``POST /query``                 top-``k`` search for a JSON chart payload
``POST /tables``                add tables to the live index
``DELETE /tables/<id>``         remove one table
``GET /tables``                 list indexed table ids
``POST /tables/<id>/rows``      streaming ingest: append rows to a live
                                stream, re-encoding only dirty segments and
                                notifying standing subscriptions
``POST /subscriptions``         register a standing pattern query
``GET /subscriptions``          list active subscriptions + delivery stats
``GET /subscriptions/<id>/events``  drain pending events (``?max=N``)
``DELETE /subscriptions/<id>``  drop a standing query
``POST /snapshot``              persist the index (full base or O(delta)
                                append)
``GET /healthz``                liveness (503 while draining)
``GET /metrics``                per-endpoint latency/status counters + the
                                per-strategy stats the service already
                                tracks (JSON; ``?format=prometheus`` renders
                                the same registry in the Prometheus text
                                exposition)
==============================  =============================================

Observability (see :mod:`repro.obs`): every endpoint's counters live in a
per-server :class:`repro.obs.metrics.MetricsRegistry`; with
``HTTPServingConfig(tracing=True)`` each ``POST /query`` runs under a trace
whose span tree covers admission → render → cache → candidates → verify →
merge (plus worker-side spans when the service uses a query worker pool),
feeds the ``REPRO_SLOW_QUERY_MS`` slow-query log and can be returned to the
client via ``{"debug": {"trace": true}}`` in the request body.
``{"debug": {"profile": true}}`` wraps just that request's service call in
``cProfile`` and returns the formatted profile.  Responses without a
``debug`` request key are byte-identical to an uninstrumented server's.

Failure-path behaviour — the part a real client hits first — is explicit:

* **Admission control.**  The service itself is single-writer (one
  :class:`~repro.serving.service.SearchService` guarded by a lock), so the
  server bounds how many requests may be *in flight* (executing + waiting
  on that lock) at ``HTTPServingConfig.max_inflight``.  A request over the
  bound is answered immediately with **429** and a ``Retry-After`` header —
  overload degrades to fast rejections, never to unbounded queueing, hangs
  or 5xx (``benchmarks/load_gen.py`` demonstrates this under a deliberate
  overload burst).
* **Graceful drain.**  :meth:`ChartSearchServer.close` stops admitting new
  work (503), waits for in-flight requests to complete (bounded by
  ``drain_timeout``), then tears the listener down — a query accepted
  before the drain began always gets its response.
* **Structured errors.**  Malformed JSON, unknown strategies, ``k <= 0``,
  oversized bodies and unknown routes map to 400/413/404/405 JSON bodies
  via :class:`~repro.serving.http.protocol.ProtocolError`; only a genuine
  server-side defect produces a 500.

``GET /healthz`` and ``GET /metrics`` bypass admission control: the
operator's view must stay available precisely when the server is saturated.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs

from ...obs import (
    MetricsRegistry as ObsMetricsRegistry,
    Span,
    get_logger,
    maybe_log_slow_query,
    profile_block,
    span,
    start_trace,
)
from ..service import SearchService
from .protocol import (
    ProtocolError,
    parse_query_debug,
    parse_query_payload,
    parse_rows_payload,
    parse_snapshot_payload,
    parse_subscribe_payload,
    parse_tables_payload,
    query_result_to_dict,
)

_log = get_logger("repro.serving.http")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class HTTPServingConfig:
    """Knobs of the HTTP front-end (index knobs live in ``ServingConfig``).

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks a free ephemeral port (the bound
        port is on :attr:`ChartSearchServer.port`).
    max_inflight:
        Admission bound: how many service requests may be in flight at
        once — one executing inside the service lock, the rest queued on
        it.  Requests beyond the bound get a 429 with ``Retry-After``
        instead of joining an unbounded queue.
    retry_after_seconds:
        The hint sent in the 429 ``Retry-After`` header.
    max_body_bytes:
        Requests with a larger ``Content-Length`` are refused with 413
        before the body is read.
    drain_timeout:
        How long :meth:`ChartSearchServer.close` waits for in-flight
        requests before tearing the listener down anyway.
    snapshot_path:
        Default target of ``POST /snapshot`` when the body names none.
    close_service:
        When true, :meth:`ChartSearchServer.close` also closes the wrapped
        :class:`~repro.serving.service.SearchService` (releasing its query
        worker pool).
    tracing:
        When true, every ``POST /query`` runs under a per-request trace
        minted at the HTTP boundary: the span tree covers admission,
        payload render, the service stages and any worker-side spans, lands
        on :attr:`ChartSearchServer.last_trace`, feeds the
        ``REPRO_SLOW_QUERY_MS`` slow-query log and is returned to clients
        that ask with ``{"debug": {"trace": true}}``.  Off by default: the
        warm query path then costs one context-variable read per
        instrumented stage (bounded ≤5 % in ``BENCH_serving.json``).  A
        ``debug.trace`` request against an untraced server still gets a
        (service-stage) trace — only that request pays for it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    retry_after_seconds: float = 1.0
    max_body_bytes: int = 8 * 1024 * 1024
    drain_timeout: float = 10.0
    snapshot_path: Optional[str] = None
    close_service: bool = True
    tracing: bool = False

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.retry_after_seconds <= 0:
            raise ValueError("retry_after_seconds must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")


class EndpointMetricsRegistry:
    """Per-endpoint request counters over :mod:`repro.obs` primitives.

    Each :class:`ChartSearchServer` owns one (backed by a private
    :class:`repro.obs.metrics.MetricsRegistry`, so two servers in one
    process never mix counts).  The obs registry is the single source of
    truth with two read surfaces: :meth:`snapshot` reshapes it into the
    pinned per-endpoint JSON of ``GET /metrics``, and the registry's own
    ``render_prometheus`` serves ``GET /metrics?format=prometheus``.
    Concurrent ``observe`` calls from ``ThreadingHTTPServer`` handler
    threads are safe — all mutation goes through the registry's lock.
    """

    def __init__(self, registry: Optional[ObsMetricsRegistry] = None) -> None:
        self.registry = registry or ObsMetricsRegistry()
        self._requests = self.registry.counter(
            "http_requests_total", "requests served, by endpoint and status"
        )
        self._latency = self.registry.histogram(
            "http_request_latency_ms",
            "request latency in milliseconds, by endpoint",
        )
        self._rejected = self.registry.counter(
            "http_admission_rejected_total",
            "requests answered 429 at the admission bound",
        )
        self._draining = self.registry.counter(
            "http_draining_rejected_total",
            "requests answered 503 while the server drained",
        )

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        status_label = str(int(status))
        self._requests.inc(endpoint=endpoint, status=status_label)
        self._latency.observe(seconds * 1e3, endpoint=endpoint)
        if status == 429:
            self._rejected.inc()
        elif status == 503:
            self._draining.inc()

    @property
    def rejected_429(self) -> int:
        return int(self._rejected.value())

    @property
    def draining_503(self) -> int:
        return int(self._draining.value())

    def snapshot(self) -> Dict:
        """The per-endpoint JSON view (requests, status_counts, latency_ms)."""
        snap = self.registry.snapshot()
        endpoints: Dict[str, Dict] = {}
        for entry in snap["http_requests_total"]["series"]:
            endpoint = entry["labels"]["endpoint"]
            status = entry["labels"]["status"]
            info = endpoints.setdefault(
                endpoint,
                {
                    "requests": 0,
                    "status_counts": {},
                    "latency_ms": {"mean": 0.0, "max": 0.0},
                },
            )
            info["requests"] += int(entry["value"])
            info["status_counts"][status] = info["status_counts"].get(
                status, 0
            ) + int(entry["value"])
        for entry in snap["http_request_latency_ms"]["series"]:
            info = endpoints.get(entry["labels"]["endpoint"])
            if info is None:
                continue
            info["latency_ms"] = {
                "mean": entry["mean"],
                "max": entry["max"],
                "p50": entry["p50"],
                "p95": entry["p95"],
                "p99": entry["p99"],
            }
        return {
            name: {
                "requests": info["requests"],
                "status_counts": dict(sorted(info["status_counts"].items())),
                "latency_ms": info["latency_ms"],
            }
            for name, info in sorted(endpoints.items())
        }


#: Backwards-compatible alias: the HTTP tier's registry used to be a
#: standalone class of this name before it was rebuilt over ``repro.obs``.
MetricsRegistry = EndpointMetricsRegistry


class ChartSearchServer:
    """Serve a :class:`~repro.serving.service.SearchService` over HTTP.

    The server owns a listener thread plus one handler thread per
    connection (:class:`~http.server.ThreadingHTTPServer`); all service
    calls are serialised behind one lock, which keeps the non-thread-safe
    ``SearchService`` correct and makes the admission bound meaningful.

    Example
    -------
    >>> server = ChartSearchServer(service).start()
    >>> server.url
    'http://127.0.0.1:43621'
    >>> # ... POST /query, /tables, /snapshot ...
    >>> server.close()          # drain in-flight requests, then stop
    """

    def __init__(
        self,
        service: SearchService,
        config: Optional[HTTPServingConfig] = None,
    ) -> None:
        self.service = service
        self.config = config or HTTPServingConfig()
        self.metrics = EndpointMetricsRegistry()
        #: Serialised span tree of the most recent traced ``POST /query``
        #: (``HTTPServingConfig(tracing=True)`` or a ``debug.trace``
        #: request); ``None`` until one completes.
        self.last_trace: Optional[Dict] = None
        self._service_lock = threading.Lock()
        self._admission = threading.BoundedSemaphore(self.config.max_inflight)
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)
        self._draining = threading.Event()
        self._started_monotonic = time.monotonic()
        handler = type("_BoundHandler", (_RequestHandler,), {"owner": self})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start(self) -> "ChartSearchServer":
        """Begin serving on a daemon listener thread (idempotent)."""
        if self._closed:
            raise RuntimeError("server already closed; build a new one")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-http-{self.port}",
                daemon=True,
            )
            self._thread.start()
            _log.info(
                "server_started",
                url=self.url,
                max_inflight=self.config.max_inflight,
                tracing=self.config.tracing,
                num_tables=self.service.num_tables,
            )
        return self

    def close(self, drain_timeout: Optional[float] = None) -> None:
        """Drain in-flight requests, then stop serving (idempotent).

        New requests arriving during the drain are answered 503; requests
        admitted before it began run to completion (bounded by
        ``drain_timeout``, default ``config.drain_timeout``).  With
        ``config.close_service`` the wrapped service's worker pool is
        released as well.
        """
        if self._closed:
            return
        self._draining.set()
        deadline = time.monotonic() + (
            self.config.drain_timeout if drain_timeout is None else drain_timeout
        )
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=remaining)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.config.close_service:
            self.service.close()
        self._closed = True
        _log.info("server_closed", url=self.url)

    def __enter__(self) -> "ChartSearchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Request bookkeeping (called from handler threads)
    # ------------------------------------------------------------------ #
    def _enter_request(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _exit_request(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    # ------------------------------------------------------------------ #
    # Endpoint implementations (called under admission; service calls
    # additionally take the service lock)
    # ------------------------------------------------------------------ #
    def handle_query(
        self,
        read_body: Callable[[], object],
        request_start: Optional[float] = None,
    ) -> Tuple[int, Dict]:
        """Serve one ``POST /query``.

        ``read_body`` is deferred so a traced request's payload read +
        chart render land inside the trace's ``render`` span;
        ``request_start`` (the dispatcher's clock at request entry) becomes
        the pre-measured ``admission`` span.  Untraced requests — no server
        tracing, no ``debug`` flags — take the plain path and produce
        byte-identical response bodies.
        """
        spec = self.service.model.config.chart_spec
        if self.config.tracing:
            with start_trace("http_query") as root:
                if request_start is not None:
                    admission = Span("admission")
                    admission.duration = time.perf_counter() - request_start
                    root.attach(admission)
                with span("render"):
                    payload = read_body()
                    chart, k, strategy = parse_query_payload(payload, spec)
                    debug = parse_query_debug(payload)
                root.attributes.update(k=k, strategy=strategy)
                status, body = self._query_service(chart, k, strategy, debug)
            return status, self._finish_trace(root, body, debug)
        payload = read_body()
        chart, k, strategy = parse_query_payload(payload, spec)
        debug = parse_query_debug(payload)
        if debug["trace"]:
            # Per-request opt-in on an untraced server: the body is already
            # parsed, so the tree starts at the service stages.
            with start_trace("http_query", k=k, strategy=strategy) as root:
                status, body = self._query_service(chart, k, strategy, debug)
            return status, self._finish_trace(root, body, debug)
        return self._query_service(chart, k, strategy, debug)

    def _query_service(
        self, chart, k: int, strategy: str, debug: Dict[str, bool]
    ) -> Tuple[int, Dict]:
        """The service call under the lock (+ optional per-request profile)."""
        profile_capture = None
        with self._service_lock:
            if self.service.num_tables == 0:
                return 200, {
                    "k": k,
                    "strategy": strategy,
                    "ranking": [],
                    "candidates": 0,
                    "total_tables": 0,
                    "seconds": 0.0,
                }
            if debug["profile"]:
                # Scoped to exactly this request's service call: neighbours
                # on other handler threads are queued on the service lock
                # anyway, so nothing else runs under the profiler.
                with profile_block() as profile_capture:
                    result = self.service.query(chart, k, strategy=strategy)
            else:
                result = self.service.query(chart, k, strategy=strategy)
        body = query_result_to_dict(result, k, strategy)
        if profile_capture is not None:
            body.setdefault("debug", {})["profile"] = profile_capture.text(top=30)
        return 200, body

    def _finish_trace(
        self, root: Span, body: Dict, debug: Dict[str, bool]
    ) -> Dict:
        """Record a finished query trace; return ``body`` (+- debug.trace)."""
        tree = root.to_dict()
        self.last_trace = tree
        maybe_log_slow_query(tree)
        if debug["trace"]:
            body.setdefault("debug", {})["trace"] = tree
        return body

    def handle_add_tables(self, payload: object) -> Tuple[int, Dict]:
        tables = parse_tables_payload(payload)
        with self._service_lock:
            known = set(self.service.table_ids)
            self.service.add_tables(tables)
            added = [t.table_id for t in tables if t.table_id not in known]
            skipped = [t.table_id for t in tables if t.table_id in known]
            num_tables = self.service.num_tables
        return 200, {
            "added": added,
            "already_indexed": skipped,
            "num_tables": num_tables,
        }

    def handle_remove_table(self, table_id: str) -> Tuple[int, Dict]:
        with self._service_lock:
            removed = self.service.remove_tables([table_id])
            num_tables = self.service.num_tables
        if removed == 0:
            raise ProtocolError(f"unknown table id {table_id!r}", status=404)
        return 200, {"removed": table_id, "num_tables": num_tables}

    def handle_list_tables(self) -> Tuple[int, Dict]:
        with self._service_lock:
            ids = sorted(self.service.table_ids)
        return 200, {"num_tables": len(ids), "table_ids": ids}

    # -- streaming ingest + subscriptions ------------------------------ #
    def handle_append_rows(
        self, table_id: str, read_body: Callable[[], object]
    ) -> Tuple[int, Dict]:
        """Serve one ``POST /tables/{id}/rows`` (streaming ingest).

        With server tracing on, the whole batch — payload parse, segment
        re-encode, subscription notification — runs under one
        ``http_append_rows`` trace (the service's ``append_rows`` /
        ``notify`` / per-``subscription`` spans attach to it), mirroring
        the traced ``POST /query`` path.
        """
        if not table_id:
            raise ProtocolError("missing table id in path", status=404)
        if self.config.tracing:
            with start_trace("http_append_rows", table_id=table_id) as root:
                with span("render"):
                    columns, roles = parse_rows_payload(read_body())
                status, body = self._append_service(table_id, columns, roles)
            tree = root.to_dict()
            self.last_trace = tree
            maybe_log_slow_query(tree)
            return status, body
        columns, roles = parse_rows_payload(read_body())
        return self._append_service(table_id, columns, roles)

    def _append_service(
        self, table_id: str, columns: Dict, roles: Dict[str, str]
    ) -> Tuple[int, Dict]:
        with self._service_lock:
            try:
                result = self.service.append_rows(
                    table_id, columns, roles=roles or None
                )
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
        return 200, {
            "table_id": result.table_id,
            "rows_appended": int(result.rows_appended),
            "total_rows": int(result.total_rows),
            "segments_total": int(result.segments_total),
            "dirty_segments": list(result.dirty_segments),
            "reencode_fraction": float(result.reencode_fraction),
            "created": bool(result.created),
            "events_fired": int(result.events_fired),
        }

    def handle_subscribe(self, payload: object) -> Tuple[int, Dict]:
        spec = self.service.model.config.chart_spec
        chart, k, threshold = parse_subscribe_payload(payload, spec)
        with self._service_lock:
            subscription_id = self.service.subscribe(
                chart, k=k, threshold=threshold
            )
        return 200, {
            "subscription_id": subscription_id,
            "k": k,
            "threshold": threshold,
        }

    def handle_list_subscriptions(self) -> Tuple[int, Dict]:
        with self._service_lock:
            engine = self.service.subscriptions
            entries = [
                {
                    "subscription_id": subscription_id,
                    "k": engine.get(subscription_id).k,
                    "threshold": engine.get(subscription_id).threshold,
                    "pending": len(engine.get(subscription_id).events),
                    "stats": engine.get(subscription_id).stats.to_dict(),
                }
                for subscription_id in engine.active
            ]
        return 200, {"subscriptions": entries}

    def handle_poll_subscription(
        self, subscription_id: str, max_events: Optional[int]
    ) -> Tuple[int, Dict]:
        with self._service_lock:
            try:
                subscription = self.service.subscriptions.get(subscription_id)
                events = self.service.poll(
                    subscription_id, max_events=max_events
                )
            except KeyError:
                raise ProtocolError(
                    f"unknown subscription {subscription_id!r}", status=404
                ) from None
            pending = len(subscription.events)
            stats = subscription.stats.to_dict()
        return 200, {
            "subscription_id": subscription_id,
            "events": [event.to_dict() for event in events],
            "pending": pending,
            "stats": stats,
        }

    def handle_unsubscribe(self, subscription_id: str) -> Tuple[int, Dict]:
        with self._service_lock:
            removed = self.service.unsubscribe(subscription_id)
        if not removed:
            raise ProtocolError(
                f"unknown subscription {subscription_id!r}", status=404
            )
        return 200, {"removed": subscription_id}

    def handle_snapshot(self, payload: object) -> Tuple[int, Dict]:
        path, append = parse_snapshot_payload(
            payload, self.config.snapshot_path
        )
        with self._service_lock:
            written = self.service.save_index(path, append=append)
            num_tables = self.service.num_tables
        return 200, {
            "path": str(written),
            "append": append,
            "num_tables": num_tables,
        }

    def handle_healthz(self) -> Tuple[int, Dict]:
        status = "draining" if self.draining else "ok"
        body = {
            "status": status,
            "num_tables": self.service.num_tables,
            "inflight": self.inflight,
        }
        return (503 if self.draining else 200), body

    def _mirror_service_metrics(self) -> None:
        """Mirror service/admission state into the Prometheus registry.

        :class:`~repro.serving.service.ServiceStats` stays the source of
        truth (the JSON body reads it directly); this copies the current
        totals into obs counters/gauges at scrape time so both formats
        always agree.
        """
        registry = self.metrics.registry
        service_stats = self.service.stats

        registry.gauge(
            "http_uptime_seconds", "Seconds since the server started."
        ).set(time.monotonic() - self._started_monotonic)
        registry.gauge(
            "http_inflight_requests", "Admitted requests currently in flight."
        ).set(self.inflight)
        registry.gauge(
            "service_tables", "Tables currently in the live index."
        ).set(self.service.num_tables)

        queries = registry.counter(
            "service_queries_total", "Queries served, by indexing strategy."
        )
        cache_hits = registry.counter(
            "service_cache_hits_total", "Result-cache hits, by strategy."
        )
        for strategy, stats in service_stats.summary().items():
            queries.set_total(stats["queries"], strategy=strategy)
            cache_hits.set_total(stats["cache_hits"], strategy=strategy)
        registry.counter(
            "service_tables_added_total", "Tables added to the live index."
        ).set_total(service_stats.tables_added)
        registry.counter(
            "service_tables_removed_total", "Tables removed from the index."
        ).set_total(service_stats.tables_removed)
        registry.counter(
            "service_cache_invalidations_total",
            "Result-cache invalidations caused by index mutations.",
        ).set_total(service_stats.invalidations)
        registry.counter(
            "service_worker_queries_total",
            "Queries whose verification ran on the worker pool.",
        ).set_total(service_stats.worker_queries)
        registry.counter(
            "service_worker_fallbacks_total",
            "Queries that fell back to in-process verification.",
        ).set_total(service_stats.worker_fallbacks)
        registry.counter(
            "service_rows_appended_total", "Rows ingested via append_rows."
        ).set_total(service_stats.rows_appended)
        registry.counter(
            "service_append_batches_total", "Ingest batches processed."
        ).set_total(service_stats.append_batches)
        registry.counter(
            "service_segments_encoded_total",
            "Window segments (re-)encoded by streaming ingest.",
        ).set_total(service_stats.segments_encoded)
        registry.counter(
            "service_subscription_events_total",
            "Subscription events fired by ingest batches.",
        ).set_total(service_stats.subscription_events)
        registry.gauge(
            "service_subscriptions_active", "Standing subscriptions registered."
        ).set(float(len(self.service.subscriptions)))
        fallback_active = registry.gauge(
            "service_worker_fallback_active",
            "1 while the worker pool is sticky-disabled, by cause.",
        )
        active_kind = service_stats.worker_fallback_kind
        for kind in ("failure", "closed"):
            fallback_active.set(
                1.0 if kind == active_kind else 0.0, kind=kind
            )

    def handle_metrics(self, fmt: str = "json") -> Tuple[int, Union[Dict, str]]:
        if fmt not in ("json", "prometheus"):
            raise ProtocolError(
                f"unknown metrics format {fmt!r}; expected 'json' or "
                "'prometheus'"
            )
        self._mirror_service_metrics()
        if fmt == "prometheus":
            return 200, self.metrics.registry.render_prometheus()
        service_stats = self.service.stats
        body = {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "endpoints": self.metrics.snapshot(),
            "admission": {
                "max_inflight": self.config.max_inflight,
                "inflight": self.inflight,
                "rejected_429": self.metrics.rejected_429,
                "draining_503": self.metrics.draining_503,
            },
            "service": {
                "num_tables": self.service.num_tables,
                "per_strategy": service_stats.summary(),
                "tables_added": service_stats.tables_added,
                "tables_removed": service_stats.tables_removed,
                "invalidations": service_stats.invalidations,
                "worker_queries": service_stats.worker_queries,
                "worker_fallbacks": service_stats.worker_fallbacks,
                "worker_fallback_reason": self.service.worker_fallback_reason,
                "worker_fallback_kind": service_stats.worker_fallback_kind,
                "rows_appended": service_stats.rows_appended,
                "append_batches": service_stats.append_batches,
                "segments_encoded": service_stats.segments_encoded,
                "subscription_events": service_stats.subscription_events,
                "subscriptions_active": len(self.service.subscriptions),
            },
        }
        return 200, body


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes requests into the owning :class:`ChartSearchServer`."""

    #: Injected per server instance (``type(..., {"owner": self})``).
    owner: ChartSearchServer

    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections give up after this, so drained servers
    #: do not accumulate parked handler threads.
    timeout = 30.0

    # Quiet by default: the serving metrics are the observable surface.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _send_json(
        self,
        status: int,
        body: Dict,
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            # Tell HTTP/1.1 clients the truth when an early rejection left
            # the request body unread and the connection must go down.
            self.send_header("Connection", "close")
        for name, value in extra_headers or []:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, body: str) -> None:
        """Send a Prometheus text-exposition body (the one non-JSON reply)."""
        data = body.encode("utf-8")
        self.send_response(int(status))
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _read_json_body(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ProtocolError("Content-Length is required", status=411)
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError("invalid Content-Length", status=400) from None
        if length > self.owner.config.max_body_bytes:
            # Refuse before reading; the unread body makes the connection
            # unusable for keep-alive, so close it.
            self.close_connection = True
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{self.owner.config.max_body_bytes}-byte limit",
                status=413,
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ProtocolError("empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON body: {exc}") from exc

    def _route(self, method: str):
        """Resolve ``(endpoint_label, thunk, needs_admission)`` or raise."""
        owner = self.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return "GET /healthz", owner.handle_healthz, False
        if method == "GET" and path == "/metrics":
            query_string = self.path.partition("?")[2]
            fmt = parse_qs(query_string).get("format", ["json"])[0]
            return "GET /metrics", lambda: owner.handle_metrics(fmt), False
        if method == "GET" and path == "/tables":
            return "GET /tables", owner.handle_list_tables, True
        # Bodies are read inside the thunk: after admission (a rejected
        # request never pays the read) and under the endpoint's own metrics
        # label (a malformed /query body is a `POST /query` 400).
        if method == "POST" and path == "/query":
            # The body-reading callable is handed over uncalled so a traced
            # request can parse it inside its `render` span.
            return (
                "POST /query",
                lambda: owner.handle_query(
                    self._read_json_body, request_start=self._dispatch_start
                ),
                True,
            )
        if method == "POST" and path == "/tables":
            return (
                "POST /tables",
                lambda: owner.handle_add_tables(self._read_json_body()),
                True,
            )
        if (
            method == "POST"
            and path.startswith("/tables/")
            and path.endswith("/rows")
        ):
            table_id = path[len("/tables/") : -len("/rows")]
            return (
                "POST /tables/<id>/rows",
                lambda: owner.handle_append_rows(table_id, self._read_json_body),
                True,
            )
        if path == "/subscriptions":
            if method == "POST":
                return (
                    "POST /subscriptions",
                    lambda: owner.handle_subscribe(self._read_json_body()),
                    True,
                )
            if method == "GET":
                return (
                    "GET /subscriptions",
                    owner.handle_list_subscriptions,
                    True,
                )
        if path.startswith("/subscriptions/"):
            rest = path[len("/subscriptions/") :]
            if method == "GET" and rest.endswith("/events"):
                subscription_id = rest[: -len("/events")]
                query_string = self.path.partition("?")[2]
                raw_max = parse_qs(query_string).get("max", [None])[0]
                max_events: Optional[int] = None
                if raw_max is not None:
                    try:
                        max_events = int(raw_max)
                    except ValueError:
                        raise ProtocolError(
                            f"max must be an integer, got {raw_max!r}"
                        ) from None
                    if max_events < 1:
                        raise ProtocolError(f"max must be >= 1, got {max_events}")
                return (
                    "GET /subscriptions/<id>/events",
                    lambda: owner.handle_poll_subscription(
                        subscription_id, max_events
                    ),
                    True,
                )
            if method == "DELETE" and "/" not in rest:
                return (
                    "DELETE /subscriptions/<id>",
                    lambda: owner.handle_unsubscribe(rest),
                    True,
                )
        if method == "POST" and path == "/snapshot":
            return (
                "POST /snapshot",
                lambda: owner.handle_snapshot(
                    self._read_json_body()
                    if self.headers.get("Content-Length") not in (None, "0")
                    else None
                ),
                True,
            )
        if method == "DELETE" and path.startswith("/tables/"):
            table_id = path[len("/tables/") :]
            return (
                "DELETE /tables/<id>",
                lambda: owner.handle_remove_table(table_id),
                True,
            )
        known_paths = {
            "/healthz",
            "/metrics",
            "/tables",
            "/query",
            "/snapshot",
            "/subscriptions",
        }
        if (
            path in known_paths
            or path.startswith("/tables/")
            or path.startswith("/subscriptions/")
        ):
            raise ProtocolError(
                f"method {method} not allowed on {path}", status=405
            )
        raise ProtocolError(f"unknown path {path}", status=404)

    def _dispatch(self, method: str) -> None:
        owner = self.owner
        # Unrouted requests share one metrics label: arbitrary client paths
        # must not grow the per-endpoint registry without bound.
        endpoint = f"{method} <unrouted>"
        start = time.perf_counter()
        # Exposed so the /query route can hand the request's entry time to
        # the tracer (the `admission` span measures routing + admission).
        self._dispatch_start = start
        status = 500
        owner._enter_request()
        try:
            try:
                endpoint, thunk, needs_admission = self._route(method)
            except ProtocolError as exc:
                status = exc.status
                self._send_json(status, {"error": str(exc)})
                return
            if needs_admission:
                if owner.draining:
                    # The request body was never read: the connection is
                    # not reusable, close it after answering.
                    status = 503
                    self.close_connection = True
                    self._send_json(
                        status, {"error": "server is draining; not admitting"}
                    )
                    return
                if not owner._admission.acquire(blocking=False):
                    status = 429
                    self.close_connection = True
                    retry_after = str(
                        int(math.ceil(owner.config.retry_after_seconds))
                    )
                    self._send_json(
                        status,
                        {
                            "error": (
                                "server saturated: "
                                f"{owner.config.max_inflight} requests already "
                                "in flight; retry shortly"
                            ),
                            "max_inflight": owner.config.max_inflight,
                        },
                        extra_headers=[("Retry-After", retry_after)],
                    )
                    return
                try:
                    status, body = thunk()
                finally:
                    owner._admission.release()
            else:
                status, body = thunk()
            if isinstance(body, str):
                self._send_text(status, body)
            else:
                self._send_json(status, body)
        except ProtocolError as exc:
            status = exc.status
            self._send_json(status, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away; nothing to send
            self.close_connection = True
        except Exception as exc:  # a genuine server-side defect
            status = 500
            try:
                self._send_json(
                    status, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                self.close_connection = True
        finally:
            owner.metrics.observe(
                endpoint, status, time.perf_counter() - start
            )
            owner._exit_request()

    # ------------------------------------------------------------------ #
    # HTTP verbs
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")
