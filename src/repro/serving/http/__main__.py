"""``python -m repro.serving.http`` — boot the demo HTTP search server."""

from .demo import main

if __name__ == "__main__":
    raise SystemExit(main())
