"""Streaming ingest and standing pattern subscriptions.

The paper's query model is batch-oriented — index a repository, then look up
chart patterns — but a production deployment also sees *live* tables that
grow row-by-row and standing queries ("notify me when any table's recent
window starts matching this chart").  This module opens that workload on top
of the batch machinery without re-encoding whole tables per append:

**Windowed decomposition.**  A streaming table is partitioned into fixed
``segment_rows``-row windows; each window is encoded independently as a
mini-:class:`~repro.data.table.Table` under a composite segment id
(``"{parent}::seg-000003"``).  The partition is a pure function of the total
row count, so any sequence of :func:`append_stream_rows` calls produces
*exactly* the state a single append of the full history would — the parity
property ``tests/test_streaming.py`` pins.  On each append only the windows
overlapping the new rows (the unsealed tail plus any windows the batch
spills into) are re-encoded; sealed windows are never touched, so the
re-encode fraction per batch tends to ``1 / num_windows`` as a stream grows.

**Index granularity.**  Segments — not parents — live in the interval tree,
the LSH and the scorer's encoding cache; intervals are computed per window
and LSH codes from per-window column embeddings, so a pattern onset in the
latest window is visible to the candidate generators immediately.  Queries
still rank *parents*: the scorer composes the per-window encodings into a
parent-level entry (:meth:`~repro.fcm.scorer.FCMScorer.bind_stream`) and the
query processor maps raw index hits segment → parent before intersecting.

**Subscriptions.**  A :class:`SubscriptionEngine` holds standing queries.
On each ingest batch it scores *only the dirty segments* — running the int8
quantized coarse pass first when the dirty set is large — and delivers
events (``score >= threshold``, top-``k`` per batch) to a bounded per-
subscription queue and an optional callback.  Notification latency, event
outcomes and per-subscription spans go through :mod:`repro.obs`.

:class:`~repro.serving.SearchService` wires this module to the worker pool
(composed parent entries ship through the mutation-after-map dirty-id sync)
and the HTTP tier (``POST /tables/{id}/rows``, ``POST /subscriptions``,
``GET /subscriptions/{id}/events``).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

from ..charts.rasterizer import LineChart
from ..data.column import Column
from ..data.table import Table
from ..fcm.scorer import FCMScorer
from ..index.hybrid import HybridQueryProcessor
from ..obs import get_logger, get_registry, span

#: Separator embedded in window-segment ids.  Parent table ids must not
#: contain it — :func:`append_stream_rows` rejects those — so segment ids
#: can never collide with static tables and ownership is recoverable from
#: the id alone.
STREAM_SEGMENT_SEP = "::seg-"

logger = get_logger("serving.streaming")


def segment_table_id(parent_id: str, window: int) -> str:
    """The composite id of ``parent_id``'s ``window``-th row window."""
    return f"{parent_id}{STREAM_SEGMENT_SEP}{window:06d}"


@dataclass
class StreamingConfig:
    """Knobs for the streaming ingest + subscription path.

    Attributes
    ----------
    segment_rows:
        Window size ``W`` of the streaming decomposition: a stream's rows
        ``[i*W, (i+1)*W)`` form its ``i``-th segment.  Smaller windows mean
        cheaper appends (less tail re-encoding) but more index entries.
    max_pending_events:
        Bound on each subscription's undelivered event queue; when a slow
        consumer lets it fill, the *oldest* events are dropped (and counted
        in :class:`SubscriptionStats` / ``repro_subscription_events_total``).
    notify_overscan:
        On ingest the coarse int8 pre-filter engages for a subscription
        whenever more than ``k * notify_overscan`` segments are dirty; only
        the best ``k * notify_overscan`` by coarse score are scored exactly.
    """

    segment_rows: int = 256
    max_pending_events: int = 256
    notify_overscan: int = 8

    def __post_init__(self) -> None:
        if self.segment_rows < 2:
            raise ValueError("segment_rows must be >= 2")
        if self.max_pending_events < 1:
            raise ValueError("max_pending_events must be >= 1")
        if self.notify_overscan < 1:
            raise ValueError("notify_overscan must be >= 1")


@dataclass
class AppendResult:
    """Outcome of one :func:`append_stream_rows` batch."""

    table_id: str
    rows_appended: int
    total_rows: int
    segments_total: int
    #: Segment ids (re-)encoded by this batch, in window order.
    dirty_segments: List[str]
    #: Whether this batch created the stream.
    created: bool
    #: Subscription events fired off this batch (set by the service).
    events_fired: int = 0

    @property
    def reencode_fraction(self) -> float:
        """Fraction of the stream's segments this batch re-encoded."""
        if self.segments_total == 0:
            return 0.0
        return len(self.dirty_segments) / self.segments_total


def _validated_columns(
    columns: Mapping[str, Sequence[float]],
) -> Dict[str, np.ndarray]:
    """Coerce an append payload to float64 arrays, rejecting bad input
    *before* any index state is touched."""
    if not columns:
        raise ValueError("append payload must carry at least one column")
    arrays: Dict[str, np.ndarray] = {}
    length: Optional[int] = None
    for name, values in columns.items():
        if not isinstance(name, str) or not name:
            raise ValueError("column names must be non-empty strings")
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(
                f"column {name!r} must be a non-empty 1-D sequence of numbers"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(f"column {name!r} contains non-finite values")
        if length is None:
            length = int(arr.size)
        elif int(arr.size) != length:
            raise ValueError(
                f"ragged append payload: column {name!r} has {arr.size} rows, "
                f"expected {length}"
            )
        arrays[name] = arr
    return arrays


def append_stream_rows(
    processor: HybridQueryProcessor,
    table_id: str,
    columns: Mapping[str, Sequence[float]],
    *,
    segment_rows: int,
    roles: Optional[Mapping[str, str]] = None,
) -> AppendResult:
    """Append rows to a streaming table, re-encoding only dirty windows.

    The first append for an unknown ``table_id`` creates the stream (with
    ``segment_rows`` fixed for its lifetime and ``roles`` optionally tagging
    columns, e.g. ``{"t": "x"}``); subsequent appends must carry exactly the
    stream's columns and reuse its recorded window size, so a stream restored
    from a snapshot keeps its original partition even if the serving config
    changed.

    Equivalence: the windows are a pure function of the row history, each
    dirty window is encoded through the scorer's per-table path
    (:meth:`~repro.fcm.scorer.FCMScorer.index_table`) from its exact row
    slice, and index entries are replaced atomically per segment — so the
    post-append state is identical to replaying the full history in one
    batch (and rankings match a from-scratch rebuild to float tolerance).
    """
    if STREAM_SEGMENT_SEP in table_id:
        raise ValueError(
            f"table id {table_id!r} may not contain {STREAM_SEGMENT_SEP!r}"
        )
    if not table_id:
        raise ValueError("table id must be non-empty")
    arrays = _validated_columns(columns)

    state = processor.stream_states.get(table_id)
    created = state is None
    if created:
        if table_id in processor.table_ids:
            raise ValueError(
                f"table {table_id!r} is already registered as a static table; "
                "appends are only valid on streaming tables"
            )
        state = {
            "segment_rows": int(segment_rows),
            "total_rows": 0,
            "column_names": list(arrays.keys()),
            "roles": {k: str(v) for k, v in (roles or {}).items()},
            "tail": {name: np.empty(0, dtype=np.float64) for name in arrays},
        }
    column_names: List[str] = list(state["column_names"])
    if set(arrays) != set(column_names):
        raise ValueError(
            f"append payload columns {sorted(arrays)} do not match stream "
            f"{table_id!r} columns {sorted(column_names)}"
        )

    window_rows = int(state["segment_rows"])
    old_total = int(state["total_rows"])
    batch_rows = int(next(iter(arrays.values())).size)
    new_total = old_total + batch_rows

    # Rows from the last seal point onward: the buffered unsealed tail plus
    # this batch.  Every dirty window's content is a slice of this.
    seal = (old_total // window_rows) * window_rows
    combined = {
        name: np.concatenate(
            [np.asarray(state["tail"][name], dtype=np.float64), arrays[name]]
        )
        for name in column_names
    }

    first_dirty = old_total // window_rows
    last_dirty = (new_total - 1) // window_rows
    old_segments = processor.streams.get(table_id, [])
    scorer: FCMScorer = processor.scorer
    lsh = processor._ensure_lsh()

    segment_ids = list(old_segments[:first_dirty])  # sealed: untouched
    dirty_ids: List[str] = []
    role_of = state["roles"]
    for window in range(first_dirty, last_dirty + 1):
        lo = window * window_rows - seal
        hi = min((window + 1) * window_rows, new_total) - seal
        seg_id = segment_table_id(table_id, window)
        mini = Table(
            seg_id,
            [
                Column(
                    name=name,
                    values=combined[name][lo:hi],
                    role=role_of.get(name),
                )
                for name in column_names
            ],
        )
        # The tail window may already be encoded from a previous batch with
        # fewer rows: evict first so ``index_table`` re-encodes fresh, then
        # replace its intervals and codes atomically.
        scorer.evict_table(seg_id)
        encoded = scorer.index_table(mini)
        processor.interval_tree.replace_table(mini)
        lsh.replace(seg_id, encoded.column_embeddings)
        segment_ids.append(seg_id)
        dirty_ids.append(seg_id)

    new_seal = (new_total // window_rows) * window_rows
    state["tail"] = {
        name: combined[name][new_seal - seal :] for name in column_names
    }
    state["total_rows"] = new_total
    processor.register_stream(table_id, segment_ids, state)

    return AppendResult(
        table_id=table_id,
        rows_appended=batch_rows,
        total_rows=new_total,
        segments_total=len(segment_ids),
        dirty_segments=dirty_ids,
        created=created,
    )


# --------------------------------------------------------------------- #
# Subscriptions
# --------------------------------------------------------------------- #
@dataclass
class SubscriptionEvent:
    """One match notification: a dirty segment scored past the threshold."""

    subscription_id: str
    table_id: str
    segment_id: str
    score: float
    #: Stream row count when the event fired.
    total_rows: int
    #: Monotonic per-subscription sequence number (drops leave gaps).
    seq: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "subscription_id": self.subscription_id,
            "table_id": self.table_id,
            "segment_id": self.segment_id,
            "score": float(self.score),
            "total_rows": int(self.total_rows),
            "seq": int(self.seq),
        }


@dataclass
class SubscriptionStats:
    """Per-subscription delivery counters (exposed via service stats/HTTP)."""

    batches_scored: int = 0
    segments_scored: int = 0
    events_delivered: int = 0
    events_dropped: int = 0
    callback_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "batches_scored": self.batches_scored,
            "segments_scored": self.segments_scored,
            "events_delivered": self.events_delivered,
            "events_dropped": self.events_dropped,
            "callback_errors": self.callback_errors,
        }


class Subscription:
    """One standing pattern query (created via ``SubscriptionEngine.subscribe``)."""

    def __init__(
        self,
        subscription_id: str,
        chart: LineChart,
        k: int,
        threshold: float,
        callback: Optional[Callable[[SubscriptionEvent], None]],
        max_pending: int,
    ) -> None:
        self.subscription_id = subscription_id
        self.chart = chart
        self.k = int(k)
        self.threshold = float(threshold)
        self.callback = callback
        self.max_pending = int(max_pending)
        self.events: Deque[SubscriptionEvent] = deque()
        self.stats = SubscriptionStats()
        self._seq = itertools.count(1)

    def next_seq(self) -> int:
        return next(self._seq)


class SubscriptionEngine:
    """Standing queries evaluated incrementally against dirty segments.

    The engine never rescans a stream: on each ingest batch it receives the
    segment ids that batch re-encoded and scores *only those* for each
    subscription — coarse int8 pass first when the dirty set exceeds
    ``k * notify_overscan`` — so notification cost is bounded by batch size,
    not stream length.  Subscriptions are in-memory serving state: they are
    *not* persisted in snapshots (re-subscribe after a restore).
    """

    def __init__(self, scorer: FCMScorer, config: StreamingConfig) -> None:
        self._scorer = scorer
        self.config = config
        self._subscriptions: Dict[str, Subscription] = {}
        self._counter = itertools.count(1)

    # -- lifecycle ----------------------------------------------------- #
    def subscribe(
        self,
        chart: LineChart,
        *,
        k: int = 1,
        threshold: float = 0.0,
        callback: Optional[Callable[[SubscriptionEvent], None]] = None,
    ) -> str:
        """Register a standing query; returns its subscription id.

        ``k`` bounds events per ingest batch (best-scoring dirty segments
        first); ``threshold`` is the minimum exact FCM score that fires an
        event; ``callback``, when given, is invoked synchronously per event
        (exceptions are swallowed and counted — a crashing consumer never
        takes ingest down).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        subscription_id = f"sub-{next(self._counter):06d}"
        # Prepare (extract + preprocess) once at subscribe time, so per-batch
        # notification skips straight to scoring.
        self._scorer.prepare_query(chart)
        self._subscriptions[subscription_id] = Subscription(
            subscription_id,
            chart,
            k,
            threshold,
            callback,
            self.config.max_pending_events,
        )
        return subscription_id

    def unsubscribe(self, subscription_id: str) -> bool:
        return self._subscriptions.pop(subscription_id, None) is not None

    def get(self, subscription_id: str) -> Subscription:
        try:
            return self._subscriptions[subscription_id]
        except KeyError:
            raise KeyError(f"unknown subscription {subscription_id!r}") from None

    @property
    def active(self) -> List[str]:
        return sorted(self._subscriptions.keys())

    def __len__(self) -> int:
        return len(self._subscriptions)

    def poll(
        self, subscription_id: str, max_events: Optional[int] = None
    ) -> List[SubscriptionEvent]:
        """Drain (up to ``max_events``) pending events, oldest first."""
        subscription = self.get(subscription_id)
        limit = len(subscription.events) if max_events is None else int(max_events)
        drained: List[SubscriptionEvent] = []
        while subscription.events and len(drained) < limit:
            drained.append(subscription.events.popleft())
        return drained

    # -- delivery ------------------------------------------------------ #
    def notify(
        self,
        dirty: Mapping[str, Sequence[str]],
        totals: Mapping[str, int],
    ) -> int:
        """Score an ingest batch's dirty segments against every subscription.

        ``dirty`` maps parent table id -> segment ids re-encoded by the
        batch; ``totals`` maps parent -> its post-append row count.  Returns
        the number of events enqueued (before any queue-bound drops).
        """
        if not self._subscriptions or not dirty:
            return 0
        owner = {
            seg_id: parent
            for parent, seg_ids in dirty.items()
            for seg_id in seg_ids
        }
        seg_ids = sorted(owner)
        if not seg_ids:
            return 0
        registry = get_registry()
        events_counter = registry.counter(
            "repro_subscription_events_total",
            "Subscription events by delivery outcome",
        )
        notify_hist = registry.histogram(
            "repro_subscription_notify_seconds",
            "Per-subscription notification latency per ingest batch",
        )
        fired = 0
        for subscription in self._subscriptions.values():
            start = time.perf_counter()
            with span(
                "subscription",
                subscription_id=subscription.subscription_id,
                dirty_segments=len(seg_ids),
            ) as sp:
                chart_input = self._scorer.prepare_query(subscription.chart)
                keep = subscription.k * self.config.notify_overscan
                candidates = seg_ids
                if len(candidates) > keep:
                    candidates = self._scorer.prefilter_ids(
                        chart_input, candidates, keep
                    )
                    if sp is not None:
                        sp.attributes["prefiltered"] = len(candidates)
                scores = self._scorer.score_encoded_batch(chart_input, candidates)
                subscription.stats.batches_scored += 1
                subscription.stats.segments_scored += len(candidates)
                matches = sorted(
                    (
                        (seg_id, score)
                        for seg_id, score in scores.items()
                        if score >= subscription.threshold
                    ),
                    key=lambda item: (-item[1], item[0]),
                )[: subscription.k]
                if sp is not None:
                    sp.attributes["events"] = len(matches)
                for seg_id, score in matches:
                    parent = owner[seg_id]
                    event = SubscriptionEvent(
                        subscription_id=subscription.subscription_id,
                        table_id=parent,
                        segment_id=seg_id,
                        score=float(score),
                        total_rows=int(totals.get(parent, 0)),
                        seq=subscription.next_seq(),
                    )
                    subscription.events.append(event)
                    subscription.stats.events_delivered += 1
                    events_counter.inc(result="delivered")
                    fired += 1
                    while len(subscription.events) > subscription.max_pending:
                        subscription.events.popleft()
                        subscription.stats.events_dropped += 1
                        events_counter.inc(result="dropped")
                    if subscription.callback is not None:
                        try:
                            subscription.callback(event)
                        except Exception as exc:  # noqa: BLE001 — consumer bug
                            subscription.stats.callback_errors += 1
                            events_counter.inc(result="callback_error")
                            logger.info(
                                "subscription_callback_error",
                                subscription_id=subscription.subscription_id,
                                error=repr(exc),
                            )
            notify_hist.observe(time.perf_counter() - start)
        return fired
