"""Index snapshots: save/load everything a restarted service needs.

A snapshot is a **base** ``.npz`` archive, optionally followed by numbered
**append-only segments** next to it.  The base holds, per indexed table, the
cached dataset-encoder representations (the expensive part — the reason a
restart should not re-encode anything), plus a JSON ``__meta__`` entry with
the column names/ranges, the LSH configuration and per-table codes, and the
interval-tree intervals.  Column embeddings are *not* stored: they are the
mean of the representations over the segment axis and recomputing them on
load is bit-identical to what was cached.

Append-only segments
--------------------
``save_processor(processor, path, append=True)`` does **not** rewrite the
base: it reads only the ``__meta__`` entries of the base and any existing
segments (lazy ``.npz`` access — the representation arrays stay on disk),
diffs the recorded table set against the live processor, and writes just the
delta — new encodings, LSH codes and intervals for added tables, plus a
``tombstones`` list for removed ones — as ``<base>.seg-0001.npz``,
``<base>.seg-0002.npz``, … next to the base.  Snapshotting after an
incremental ``add_tables`` therefore costs O(delta), not O(index); an empty
delta writes nothing.  :func:`load_processor` replays segments in order
(tombstones first, then additions), so a restart — or a query worker picking
the snapshot up — sees exactly the state the last append recorded.
:func:`compact_snapshot` folds base + segments back into a single base
archive and deletes the segments (replay is idempotent, so a crash between
the rewrite and the deletes cannot corrupt the snapshot).  A *full*
``save_processor`` to a path that has segments deletes them: the new base
supersedes the whole lineage.

The format is versioned; loading checks the model's embedding dimension
*and numeric precision* against the snapshot so a service cannot silently
serve encodings produced by an incompatible model.  Unlike model
checkpoints (which load-and-cast, see :mod:`repro.nn.serialization`), a
dtype-mismatched snapshot is an **error**: cached encodings, LSH codes and
rankings were all produced under the recorded precision, and silently
casting them would serve scores the live model cannot reproduce.  The same
rule holds *within* a snapshot lineage — appending a segment under a
different precision than the base (or loading such a mix) is rejected.
Pre-policy snapshots carry no dtype field and are treated as float64.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fcm.model import FCMModel
from ..fcm.scorer import EncodedTable, FCMScorer
from ..index.hybrid import HybridQueryProcessor
from ..index.interval_tree import Interval, IntervalTree
from ..index.lsh import LSHConfig, RandomHyperplaneLSH

PathLike = Union[str, Path]

SNAPSHOT_VERSION = 1

#: Segment file name pattern: ``<base stem>.seg-<number>.npz`` next to the base.
_SEGMENT_SUFFIX = ".seg-{number:04d}.npz"
_SEGMENT_RE = re.compile(r"\.seg-(\d+)\.npz$")


# --------------------------------------------------------------------------- #
# Archive plumbing
# --------------------------------------------------------------------------- #
def _resolve_snapshot_path(path: PathLike) -> Path:
    """Resolve ``path`` to the on-disk archive (``np.savez`` appends .npz)."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _write_archive(path: Path, meta: dict, arrays: Dict[str, np.ndarray]) -> Path:
    """Write an archive atomically (write a sibling temp file, then rename).

    A crash mid-write can therefore never leave a truncated base or segment
    behind — the target either keeps its previous content or holds the
    complete new archive.
    """
    arrays = dict(arrays)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    if path.suffix != ".npz":  # np.savez appends .npz when missing
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)
    return path


def _read_meta(path: Path) -> dict:
    """Only the JSON ``__meta__`` entry (the arrays stay on disk)."""
    with np.load(path) as archive:
        return json.loads(bytes(archive["__meta__"]).decode("utf-8"))


def _read_archive(path: Path) -> Tuple[dict, Dict[str, np.ndarray]]:
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
    return meta, arrays


def _check_version(meta: dict, path: Path) -> None:
    if meta.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {meta.get('version')!r} in {path.name} "
            f"(expected {SNAPSHOT_VERSION})"
        )


def _check_segment(meta: dict, base_meta: dict, path: Path) -> None:
    _check_version(meta, path)
    if meta.get("kind") != "segment":
        raise ValueError(f"{path.name} is not a snapshot segment")
    if meta.get("embed_dim") != base_meta.get("embed_dim"):
        raise ValueError(
            f"segment {path.name} was built with embed_dim={meta.get('embed_dim')}, "
            f"the base snapshot has embed_dim={base_meta.get('embed_dim')}"
        )
    base_dtype = base_meta.get("dtype", "float64")
    segment_dtype = meta.get("dtype", "float64")
    if segment_dtype != base_dtype:
        raise ValueError(
            f"segment {path.name} was written under dtype={segment_dtype}, the "
            f"base snapshot records dtype={base_dtype}; a snapshot lineage must "
            f"be single-precision — rebuild or re-append under {base_dtype}"
        )
    if meta.get("lsh") is not None and meta["lsh"] != base_meta.get("lsh"):
        raise ValueError(
            f"segment {path.name} records LSH configuration {meta['lsh']}, the "
            f"base snapshot records {base_meta.get('lsh')}; codes hashed under "
            f"different hyperplanes cannot be mixed — write a fresh base"
        )


def snapshot_segments(path: PathLike) -> List[Path]:
    """The append-only segments of a snapshot, in replay order.

    Segments live next to the base as ``<base stem>.seg-<number>.npz`` and
    are replayed in ascending number; a base with no segments returns ``[]``.
    """
    base = _resolve_snapshot_path(path)
    numbered = []
    for candidate in base.parent.glob(base.stem + ".seg-*.npz"):
        match = _SEGMENT_RE.search(candidate.name)
        if match and candidate.name == base.stem + match.group(0):
            numbered.append((int(match.group(1)), candidate))
    return [segment for _, segment in sorted(numbered)]


# --------------------------------------------------------------------------- #
# Payload helpers
# --------------------------------------------------------------------------- #
def _fingerprint(representations: np.ndarray) -> str:
    """Content hash of one table's cached encoding (shape + dtype + bytes).

    Recorded per table in the snapshot metadata so an append can detect a
    table that was removed and re-added *with different content* under the
    same id — an id-level diff alone would call that an empty delta and
    silently keep the stale encoding.
    """
    digest = hashlib.sha1()
    digest.update(str(representations.shape).encode())
    digest.update(str(representations.dtype).encode())
    digest.update(np.ascontiguousarray(representations).tobytes())
    return digest.hexdigest()[:16]


def _lsh_payload(processor: HybridQueryProcessor) -> dict:
    return {
        "num_bits": processor.lsh_config.num_bits,
        "hamming_radius": processor.lsh_config.hamming_radius,
        "seed": processor.lsh_config.seed,
    }


def _tables_payload(
    processor: HybridQueryProcessor, table_ids: Sequence[str]
) -> Tuple[List[dict], Dict[str, np.ndarray]]:
    """Per-table meta entries + ``rep_<i>`` arrays for the given ids."""
    scorer = processor.scorer
    lsh = processor.lsh
    tables_meta: List[dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for position, table_id in enumerate(table_ids):
        encoded = scorer.encoded_table(table_id)
        arrays[f"rep_{position}"] = encoded.representations
        tables_meta.append(
            {
                "table_id": table_id,
                "column_names": list(encoded.column_names),
                "column_ranges": [
                    [float(lo), float(hi)] for lo, hi in encoded.column_ranges
                ],
                "codes": [int(code) for code in (lsh.codes_for(table_id) if lsh else [])],
                "fingerprint": _fingerprint(encoded.representations),
            }
        )
    return tables_meta, arrays


def _interval_payload(intervals: Sequence[Interval]) -> List[list]:
    return [
        [float(iv.low), float(iv.high), iv.table_id, iv.column_name]
        for iv in intervals
    ]


def _replay_tables(
    base_meta: dict, segment_metas: Sequence[dict]
) -> "OrderedDict[str, Optional[str]]":
    """Live ``table_id -> content fingerprint`` after replaying the segments.

    Fingerprints are ``None`` for entries written before fingerprints were
    recorded (those cannot be content-diffed and are treated as unchanged).
    """
    live: "OrderedDict[str, Optional[str]]" = OrderedDict()
    for entry in base_meta["tables"]:
        live[entry["table_id"]] = entry.get("fingerprint")
    for meta in segment_metas:
        for table_id in meta.get("tombstones", ()):
            live.pop(table_id, None)
        for entry in meta["tables"]:
            live.pop(entry["table_id"], None)
            live[entry["table_id"]] = entry.get("fingerprint")
    return live


def _merged_snapshot(
    path: PathLike,
) -> Tuple[Path, dict, "OrderedDict[str, Tuple[dict, np.ndarray]]", List[list]]:
    """Replay base + segments into one in-memory state (for load/compaction)."""
    base = _resolve_snapshot_path(path)
    base_meta, base_arrays = _read_archive(base)
    _check_version(base_meta, base)
    tables: "OrderedDict[str, Tuple[dict, np.ndarray]]" = OrderedDict()
    for position, entry in enumerate(base_meta["tables"]):
        tables[entry["table_id"]] = (entry, base_arrays[f"rep_{position}"])
    intervals: List[list] = [list(iv) for iv in base_meta["intervals"]]
    for segment in snapshot_segments(base):
        meta, arrays = _read_archive(segment)
        _check_segment(meta, base_meta, segment)
        dropped = set(meta.get("tombstones", ()))
        dropped.update(entry["table_id"] for entry in meta["tables"])
        if dropped:
            # Tombstones kill a table outright; re-added ids shed their stale
            # copy so replay stays idempotent (compaction crash safety).
            for table_id in dropped:
                tables.pop(table_id, None)
            intervals = [iv for iv in intervals if iv[2] not in dropped]
        for position, entry in enumerate(meta["tables"]):
            tables[entry["table_id"]] = (entry, arrays[f"rep_{position}"])
        intervals.extend(list(iv) for iv in meta["intervals"])
    return base, base_meta, tables, intervals


# --------------------------------------------------------------------------- #
# Save: full base or append-only segment
# --------------------------------------------------------------------------- #
def save_processor(
    processor: HybridQueryProcessor, path: PathLike, append: bool = False
) -> Path:
    """Snapshot a built :class:`HybridQueryProcessor` to ``path`` (``.npz``).

    With ``append=False`` (the default) this writes a full **base** archive:
    the cached encodings of every indexed table, the live interval-tree
    intervals and the LSH codes + configuration — and deletes any
    append-only segments a previous snapshot at this path accumulated (the
    fresh base supersedes them).  Model weights are *not* included — persist
    those separately with :func:`repro.nn.serialization.save_state_dict`.

    With ``append=True`` only the **delta** against the existing base (plus
    any earlier segments) is written, as a numbered segment file next to the
    base — new tables' encodings/codes/intervals and a tombstone list for
    removed ones.  The cost is O(delta): the base's representation arrays
    are neither read nor rewritten.  Returns the path written — the segment
    file, or the base path unchanged when the delta is empty (nothing is
    written).  Raises ``ValueError`` if no base exists at ``path`` or if the
    processor's precision/embedding dimension does not match it.
    """
    if append:
        return _append_segment(processor, path)
    table_ids = processor.table_ids
    tables_meta, arrays = _tables_payload(processor, table_ids)
    meta = {
        "version": SNAPSHOT_VERSION,
        "embed_dim": processor.scorer.config.embed_dim,
        "dtype": processor.scorer.config.numeric_dtype.name,
        "lsh": _lsh_payload(processor),
        "tables": tables_meta,
        "intervals": _interval_payload(processor.interval_tree.intervals),
    }
    # Retire a previous lineage's segments *before* replacing the base:
    # deleting newest-first keeps every intermediate crash state a
    # consistent (if stale) snapshot, whereas stale segments next to the
    # new base would replay over it and resurrect removed tables.
    for stale_segment in reversed(snapshot_segments(Path(path))):
        stale_segment.unlink()
    return _write_archive(Path(path), meta, arrays)


def _append_segment(processor: HybridQueryProcessor, path: PathLike) -> Path:
    base = _resolve_snapshot_path(path)
    if not base.exists():
        raise ValueError(
            f"append=True needs an existing base snapshot at {base}; write one "
            f"first with save_processor(..., append=False)"
        )
    base_meta = _read_meta(base)
    _check_version(base_meta, base)
    config = processor.scorer.config
    if base_meta["embed_dim"] != config.embed_dim:
        raise ValueError(
            f"snapshot was built with embed_dim={base_meta['embed_dim']}, "
            f"the processor has embed_dim={config.embed_dim}"
        )
    base_dtype = base_meta.get("dtype", "float64")
    live_dtype = config.numeric_dtype.name
    if base_dtype != live_dtype:
        raise ValueError(
            f"cannot append a {live_dtype} segment to a snapshot recorded under "
            f"dtype={base_dtype}; a snapshot lineage must be single-precision — "
            f"write a fresh base under {live_dtype} instead"
        )
    live_lsh = _lsh_payload(processor)
    if base_meta.get("lsh") != live_lsh:
        raise ValueError(
            f"cannot append to a snapshot recorded under LSH configuration "
            f"{base_meta.get('lsh')} from a processor configured with "
            f"{live_lsh}; codes hashed under different hyperplanes cannot be "
            f"mixed — write a fresh base instead"
        )

    segments = snapshot_segments(base)
    segment_metas = [_read_meta(segment) for segment in segments]
    for segment, meta in zip(segments, segment_metas):
        _check_segment(meta, base_meta, segment)
    covered = _replay_tables(base_meta, segment_metas)
    current = processor.table_ids
    current_set = set(current)
    # Content-aware delta: an id present on both sides whose recorded
    # fingerprint no longer matches the live encoding (removed + re-added
    # with different content) is rewritten — tombstone plus re-add in the
    # same segment.  The comparison hashes the live encodings (fast,
    # memory-bandwidth-bound); the recorded arrays are never read.
    changed = {
        table_id
        for table_id in current
        if covered.get(table_id) is not None
        and _fingerprint(
            processor.scorer.encoded_table(table_id).representations
        )
        != covered[table_id]
    }
    new_ids = [
        table_id
        for table_id in current
        if table_id not in covered or table_id in changed
    ]
    tombstones = [
        table_id
        for table_id in covered
        if table_id not in current_set or table_id in changed
    ]
    if not new_ids and not tombstones:
        return base  # empty delta: the snapshot already records this state

    numbers = [int(_SEGMENT_RE.search(s.name).group(1)) for s in segments]
    next_number = (max(numbers) + 1) if numbers else 1
    tables_meta, arrays = _tables_payload(processor, new_ids)
    meta = {
        "version": SNAPSHOT_VERSION,
        "kind": "segment",
        "segment": next_number,
        "embed_dim": config.embed_dim,
        "dtype": live_dtype,
        "lsh": live_lsh,
        "tables": tables_meta,
        "tombstones": tombstones,
        "intervals": _interval_payload(
            processor.interval_tree.intervals_for_tables(new_ids)
        ),
    }
    segment_path = base.parent / (
        base.stem + _SEGMENT_SUFFIX.format(number=next_number)
    )
    return _write_archive(segment_path, meta, arrays)


def compact_snapshot(path: PathLike) -> Path:
    """Fold a base + its append-only segments back into one base archive.

    Replays the segments, rewrites the base with the merged state and then
    deletes the segment files; loading the compacted snapshot is equivalent
    to loading the segmented one (``tests/test_serving.py`` pins this).  A
    snapshot with no segments is returned untouched.  Crash safety: the base
    is rewritten *before* the segments are deleted, and replaying a segment
    over the compacted base is idempotent, so an interruption between the
    two steps cannot corrupt the snapshot.
    """
    base = _resolve_snapshot_path(path)
    segments = snapshot_segments(base)
    if not segments:
        return base
    base, base_meta, tables, intervals = _merged_snapshot(base)
    tables_meta: List[dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for position, (table_id, (entry, representations)) in enumerate(tables.items()):
        arrays[f"rep_{position}"] = representations
        tables_meta.append(entry)
    meta = {
        "version": SNAPSHOT_VERSION,
        "embed_dim": base_meta["embed_dim"],
        "dtype": base_meta.get("dtype", "float64"),
        "lsh": base_meta["lsh"],
        "tables": tables_meta,
        "intervals": intervals,
    }
    base = _write_archive(base, meta, arrays)
    for segment in segments:
        segment.unlink()
    return base


# --------------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------------- #
def load_processor(
    model: FCMModel,
    path: PathLike,
    scorer: Optional[FCMScorer] = None,
) -> HybridQueryProcessor:
    """Rebuild a query processor from a snapshot, without re-encoding.

    The base archive is read and any append-only segments are replayed in
    order (tombstones applied, then additions), so the restored state is
    exactly what the last ``save_processor`` — full or append — recorded.
    The snapshot's cached encodings are injected into a fresh (or supplied)
    scorer, the interval tree is rebuilt from the saved intervals and the
    LSH from the saved codes — queries against the result are identical to
    the processor that was saved (``tests/test_serving.py`` pins the round
    trip).  Raises ``ValueError`` if the model's embedding dimension or
    numeric precision does not match the snapshot's.
    """
    base, meta, tables, interval_rows = _merged_snapshot(path)
    if meta["embed_dim"] != model.config.embed_dim:
        raise ValueError(
            f"snapshot was built with embed_dim={meta['embed_dim']}, "
            f"the model has embed_dim={model.config.embed_dim}"
        )
    snapshot_dtype = meta.get("dtype", "float64")  # pre-policy snapshots
    model_dtype = model.config.numeric_dtype.name
    if snapshot_dtype != model_dtype:
        raise ValueError(
            f"snapshot was built under dtype={snapshot_dtype}, the model runs "
            f"{model_dtype}; cached encodings cannot be cast without changing "
            f"scores — rebuild the index under {model_dtype} (or load with a "
            f"{snapshot_dtype} model, e.g. REPRO_DTYPE={snapshot_dtype})"
        )

    scorer = scorer or FCMScorer(model)
    lsh_config = LSHConfig(**meta["lsh"])
    processor = HybridQueryProcessor(scorer, lsh_config=lsh_config)
    lsh = RandomHyperplaneLSH(
        model.config.embed_dim, config=lsh_config, dtype=model.config.numeric_dtype
    )
    for table_id, (table_meta, representations) in tables.items():
        encoded = EncodedTable(
            table_id=table_id,
            representations=representations,
            column_names=list(table_meta["column_names"]),
            column_ranges=[(lo, hi) for lo, hi in table_meta["column_ranges"]],
            column_embeddings=representations.mean(axis=1),
        )
        scorer.add_encoded(encoded)
        lsh.add_codes(encoded.table_id, table_meta["codes"])
        processor.register_table(encoded.table_id)
    processor.lsh = lsh
    processor.interval_tree = IntervalTree(
        Interval(low=low, high=high, table_id=table_id, column_name=column_name)
        for low, high, table_id, column_name in interval_rows
    )
    return processor
