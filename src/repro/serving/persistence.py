"""Index snapshots: save/load everything a restarted service needs.

A snapshot is a **base** archive, optionally followed by numbered
**append-only segments** next to it.  Two base layouts exist:

* **v1** (the default) — a single ``.npz`` archive holding, per indexed
  table, the cached dataset-encoder representations (the expensive part —
  the reason a restart should not re-encode anything) as ``rep_0`` …
  arrays, plus a JSON ``__meta__`` entry with the column names/ranges, the
  LSH configuration and per-table codes, and the interval-tree intervals.
  Column embeddings are *not* stored: they are the mean of the
  representations over the segment axis and recomputing them on load is
  bit-identical to what was cached.
* **v2** (``layout="v2"``) — the base ``.npz`` holds the snapshot
  *metadata* only; the numeric payload lives in three flat ``.npy``
  sidecar files next to it: ``<stem>.gNNNN.reps.npy`` (every table's
  representations, concatenated flat), ``<stem>.gNNNN.colemb.npy`` (the
  per-column embeddings, pre-computed so a memory-mapped load never has to
  touch the representation pages just to take a mean) and
  ``<stem>.gNNNN.codes.npy`` (the LSH codes as ``uint64``).  The JSON
  ``__meta__`` entry stays O(1): everything per-table — ids, fingerprints,
  column names/ranges, offsets and shapes into the flat sidecars, the
  interval rows — is stored as plain array members of the base archive
  (``table_ids``, ``rep_offsets``, ``column_ranges``, …).  That matters at
  scale: loading the metadata of a 10⁵-table snapshot is a handful of
  C-speed array reads instead of one giant ``json.loads``, and a query
  worker preloading the snapshot pays no per-table dict churn.
  ``load_processor(..., mmap=True)`` opens the sidecars with
  ``np.load(mmap_mode="r")`` and hands every table a zero-copy read-only
  *view* — the index then lives in the kernel page cache, shared by every
  process that maps it, instead of being duplicated per worker.  ``gNNNN``
  is a generation token: a rewrite lands complete new sidecars under a
  fresh generation *before* the base archive is atomically replaced, so a
  crash at any point leaves the (old or new) base referencing complete,
  matching sidecars; stale generations are deleted only after the base
  rename.

Append-only segments
--------------------
``save_processor(processor, path, append=True)`` does **not** rewrite the
base: it reads only the ``__meta__`` entries of the base and any existing
segments (lazy ``.npz`` access — the representation arrays stay on disk),
diffs the recorded table set against the live processor, and writes just the
delta — new encodings, LSH codes and intervals for added tables, plus a
``tombstones`` list for removed ones — as ``<base>.seg-0001.npz``,
``<base>.seg-0002.npz``, … next to the base.  Snapshotting after an
incremental ``add_tables`` therefore costs O(delta), not O(index); an empty
delta writes nothing.  Segments always use the v1 single-archive format,
whatever the base layout: deltas are small, and keeping them self-contained
means an append never has to rewrite a sidecar.  :func:`load_processor`
replays segments in order (tombstones first, then additions), so a restart —
or a query worker picking the snapshot up — sees exactly the state the last
append recorded.  :func:`compact_snapshot` folds base + segments back into a
single base archive (optionally converting layout with ``layout=``) and
deletes the segments (replay is idempotent, so a crash between the rewrite
and the deletes cannot corrupt the snapshot).  A *full* ``save_processor``
to a path that has segments deletes them: the new base supersedes the whole
lineage.

The format is versioned; loading checks the model's embedding dimension
*and numeric precision* against the snapshot so a service cannot silently
serve encodings produced by an incompatible model.  Unlike model
checkpoints (which load-and-cast, see :mod:`repro.nn.serialization`), a
dtype-mismatched snapshot is an **error**: cached encodings, LSH codes and
rankings were all produced under the recorded precision, and silently
casting them would serve scores the live model cannot reproduce.  The same
rule holds *within* a snapshot lineage — appending a segment under a
different precision than the base (or loading such a mix) is rejected.
Pre-policy snapshots carry no dtype field and are treated as float64.

Corruption is reported as :class:`SnapshotError` (a ``ValueError``
subclass): a truncated archive, a missing or short sidecar, or metadata
pointing past the end of a flat array all fail with a message naming the
file, instead of surfacing a raw NumPy/zipfile exception.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ..fcm.fastpath import QuantizedTable, quantize_table
from ..fcm.model import FCMModel
from ..fcm.scorer import EncodedTable, FCMScorer
from ..index.hybrid import HybridQueryProcessor
from ..index.interval_tree import Interval, IntervalTree
from ..index.lsh import LSHConfig, RandomHyperplaneLSH
from ..obs import get_logger

_log = get_logger("repro.serving.persistence")

PathLike = Union[str, Path]

SNAPSHOT_VERSION = 1
SNAPSHOT_VERSION_V2 = 2

#: Segment file name pattern: ``<base stem>.seg-<number>.npz`` next to the base.
_SEGMENT_SUFFIX = ".seg-{number:04d}.npz"
_SEGMENT_RE = re.compile(r"\.seg-(\d+)\.npz$")

#: v2 sidecar name pattern: ``<base stem>.g<generation>.<kind>.npy``.
#: ``q8``/``qscale`` hold the int8 symmetric-quantized copy of the cached
#: encodings (codes flat next to ``reps`` — same element count, so the
#: ``rep_offsets`` geometry indexes both — and one float64 scale per table);
#: they feed the serving layer's quantized pre-filter without a rebuild.
_SIDECAR_KINDS = ("reps", "colemb", "codes", "q8", "qscale")
_SIDECAR_RE = re.compile(r"\.g(\d+)\.(reps|colemb|codes|q8|qscale)\.npy$")


class SnapshotError(ValueError):
    """A snapshot file is missing, truncated, or structurally corrupt.

    Subclasses ``ValueError`` so callers that already guard snapshot loads
    with ``except ValueError`` keep working; new code can catch
    ``SnapshotError`` to distinguish on-disk damage (restore from backup,
    rebuild the index) from configuration mismatches (wrong model/dtype),
    which stay plain ``ValueError``.
    """


# --------------------------------------------------------------------------- #
# Archive plumbing
# --------------------------------------------------------------------------- #
def _resolve_snapshot_path(path: PathLike) -> Path:
    """Resolve ``path`` to the on-disk archive (``np.savez`` appends .npz)."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _canonical_base(path: PathLike) -> Path:
    """The base archive path a write will land on (always ``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _write_archive(path: Path, meta: dict, arrays: Dict[str, np.ndarray]) -> Path:
    """Write an archive atomically (write a sibling temp file, then rename).

    A crash mid-write can therefore never leave a truncated base or segment
    behind — the target either keeps its previous content or holds the
    complete new archive.
    """
    arrays = dict(arrays)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path = _canonical_base(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)
    return path


def _write_npy(path: Path, array: np.ndarray) -> Path:
    """Atomically write one flat sidecar array (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp.npy")
    np.save(tmp, array)
    os.replace(tmp, path)
    return path


def _open_npz(path: Path):
    """``np.load`` with unreadable archives mapped to :class:`SnapshotError`."""
    if not path.exists():
        raise SnapshotError(f"no snapshot archive at {path}")
    try:
        return np.load(path)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise SnapshotError(
            f"snapshot archive {path.name} is unreadable — truncated or corrupt "
            f"({exc}); restore it from a backup or rebuild the index"
        ) from exc


def _archive_member(archive, name: str, path: Path) -> np.ndarray:
    try:
        return archive[name]
    except KeyError as exc:
        raise SnapshotError(
            f"snapshot archive {path.name} has no {name!r} entry — the archive "
            f"is incomplete or not a repro snapshot"
        ) from exc
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise SnapshotError(
            f"snapshot archive {path.name} is corrupt: entry {name!r} cannot be "
            f"read ({exc})"
        ) from exc


def _decode_meta(raw: np.ndarray, path: Path) -> dict:
    try:
        return json.loads(bytes(raw).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot archive {path.name} has a corrupt __meta__ entry ({exc})"
        ) from exc


def _read_meta(path: Path) -> dict:
    """Only the JSON ``__meta__`` entry (the arrays stay on disk)."""
    with _open_npz(path) as archive:
        return _decode_meta(_archive_member(archive, "__meta__", path), path)


def _read_archive(path: Path) -> Tuple[dict, Dict[str, np.ndarray]]:
    with _open_npz(path) as archive:
        arrays = {
            name: _archive_member(archive, name, path) for name in archive.files
        }
    if "__meta__" not in arrays:
        raise SnapshotError(
            f"snapshot archive {path.name} has no '__meta__' entry — the "
            f"archive is incomplete or not a repro snapshot"
        )
    meta = _decode_meta(arrays.pop("__meta__"), path)
    return meta, arrays


def _check_base_version(meta: dict, path: Path) -> None:
    if meta.get("version") not in (SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2):
        raise SnapshotError(
            f"unsupported snapshot version {meta.get('version')!r} in {path.name} "
            f"(expected {SNAPSHOT_VERSION} or {SNAPSHOT_VERSION_V2})"
        )


def _check_segment(meta: dict, base_meta: dict, path: Path) -> None:
    if meta.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {meta.get('version')!r} in {path.name} "
            f"(segments always use version {SNAPSHOT_VERSION})"
        )
    if meta.get("kind") != "segment":
        raise ValueError(f"{path.name} is not a snapshot segment")
    if meta.get("embed_dim") != base_meta.get("embed_dim"):
        raise ValueError(
            f"segment {path.name} was built with embed_dim={meta.get('embed_dim')}, "
            f"the base snapshot has embed_dim={base_meta.get('embed_dim')}"
        )
    base_dtype = base_meta.get("dtype", "float64")
    segment_dtype = meta.get("dtype", "float64")
    if segment_dtype != base_dtype:
        raise ValueError(
            f"segment {path.name} was written under dtype={segment_dtype}, the "
            f"base snapshot records dtype={base_dtype}; a snapshot lineage must "
            f"be single-precision — rebuild or re-append under {base_dtype}"
        )
    if meta.get("lsh") is not None and meta["lsh"] != base_meta.get("lsh"):
        raise ValueError(
            f"segment {path.name} records LSH configuration {meta['lsh']}, the "
            f"base snapshot records {base_meta.get('lsh')}; codes hashed under "
            f"different hyperplanes cannot be mixed — write a fresh base"
        )


def snapshot_segments(path: PathLike) -> List[Path]:
    """The append-only segments of a snapshot, in replay order.

    Segments live next to the base as ``<base stem>.seg-<number>.npz`` and
    are replayed in ascending number; a base with no segments returns ``[]``.
    """
    base = _resolve_snapshot_path(path)
    numbered = []
    for candidate in base.parent.glob(base.stem + ".seg-*.npz"):
        match = _SEGMENT_RE.search(candidate.name)
        if match and candidate.name == base.stem + match.group(0):
            numbered.append((int(match.group(1)), candidate))
    return [segment for _, segment in sorted(numbered)]


def snapshot_layout(path: PathLike) -> int:
    """The base layout version of the snapshot at ``path`` (1 or 2).

    Reads only the metadata entry.  Raises :class:`SnapshotError` when no
    snapshot exists there or the archive is unreadable.
    """
    base = _resolve_snapshot_path(path)
    meta = _read_meta(base)
    _check_base_version(meta, base)
    return int(meta["version"])


# --------------------------------------------------------------------------- #
# v2 sidecar plumbing
# --------------------------------------------------------------------------- #
def _sidecar_path(base: Path, generation: int, kind: str) -> Path:
    return base.parent / f"{base.stem}.g{generation:04d}.{kind}.npy"


def _sidecar_files(base: Path) -> List[Tuple[int, Path]]:
    found = []
    for candidate in base.parent.glob(base.stem + ".g*.npy"):
        match = _SIDECAR_RE.search(candidate.name)
        if match and candidate.name == base.stem + match.group(0):
            found.append((int(match.group(1)), candidate))
    return found


def _cleanup_sidecars(base: Path, keep_generation: Optional[int] = None) -> None:
    """Delete sidecar generations the base no longer references (best-effort)."""
    removed = 0
    for generation, candidate in _sidecar_files(base):
        if keep_generation is not None and generation == keep_generation:
            continue
        try:
            candidate.unlink()
            removed += 1
        except OSError:
            pass  # a mapped-but-deleted file stays readable; leftovers are inert
    if removed:
        _log.info(
            "sidecars_collected",
            base=str(base),
            removed=removed,
            kept_generation=keep_generation,
        )


def _next_generation(base: Path) -> int:
    current = 0
    if base.exists():
        try:
            current = int(_read_meta(base).get("generation", 0))
        except (SnapshotError, TypeError, ValueError):
            current = 0
    for generation, _ in _sidecar_files(base):
        current = max(current, generation)
    return current + 1


def _open_sidecar(base: Path, meta: dict, kind: str, mmap: bool) -> np.ndarray:
    info = (meta.get("sidecars") or {}).get(kind)
    if not info:
        raise SnapshotError(
            f"{base.name} is a v2 snapshot but records no {kind!r} sidecar — "
            f"the snapshot metadata is corrupt"
        )
    path = base.parent / str(info["file"])
    if not path.exists():
        raise SnapshotError(
            f"snapshot sidecar {info['file']} is missing next to {base.name}; "
            f"a v2 snapshot is the base archive plus its .npy sidecars — copy "
            f"or restore them together, or rebuild the index"
        )
    try:
        flat = np.load(path, mmap_mode="r" if mmap else None)
    except (ValueError, OSError, EOFError) as exc:
        raise SnapshotError(
            f"snapshot sidecar {path.name} is unreadable — truncated or "
            f"corrupt ({exc}); restore it from a backup or rebuild the index"
        ) from exc
    expected = int(info["elements"])
    if flat.ndim != 1 or int(flat.shape[0]) != expected:
        raise SnapshotError(
            f"snapshot sidecar {path.name} is truncated or does not match the "
            f"base metadata: expected {expected} flat elements, found shape "
            f"{tuple(flat.shape)}"
        )
    if kind == "codes":
        expected_dtype = np.dtype(np.uint64)
    elif kind == "q8":
        expected_dtype = np.dtype(np.int8)
    elif kind == "qscale":
        expected_dtype = np.dtype(np.float64)
    else:
        expected_dtype = np.dtype(meta.get("dtype", "float64"))
    if flat.dtype != expected_dtype:
        raise SnapshotError(
            f"snapshot sidecar {path.name} holds dtype {flat.dtype}, the base "
            f"metadata records {expected_dtype} — the files do not belong to "
            f"the same snapshot generation"
        )
    return flat


def _resolve_layout(layout: Union[str, int, None]) -> int:
    if layout is None:
        return SNAPSHOT_VERSION
    versions = {
        "v1": SNAPSHOT_VERSION,
        "v2": SNAPSHOT_VERSION_V2,
        SNAPSHOT_VERSION: SNAPSHOT_VERSION,
        SNAPSHOT_VERSION_V2: SNAPSHOT_VERSION_V2,
    }
    try:
        return versions[layout]
    except KeyError:
        raise ValueError(
            f"unknown snapshot layout {layout!r} (expected 'v1' or 'v2')"
        ) from None


# --------------------------------------------------------------------------- #
# Payload helpers
# --------------------------------------------------------------------------- #
class _TableState(NamedTuple):
    """One table's recorded (or live) snapshot state, layout-independent."""

    table_id: str
    column_names: List[str]
    column_ranges: List[list]
    codes: List[int]
    fingerprint: Optional[str]
    representations: np.ndarray
    column_embeddings: Optional[np.ndarray]  # None: recompute as mean on use
    quantized: Optional[QuantizedTable] = None  # None: requantize lazily on use


def _state_column_embeddings(state: _TableState) -> np.ndarray:
    if state.column_embeddings is not None:
        return state.column_embeddings
    return state.representations.mean(axis=1)


def _fingerprint(representations: np.ndarray) -> str:
    """Content hash of one table's cached encoding (shape + dtype + bytes).

    Recorded per table in the snapshot metadata so an append can detect a
    table that was removed and re-added *with different content* under the
    same id — an id-level diff alone would call that an empty delta and
    silently keep the stale encoding.
    """
    digest = hashlib.sha1()
    digest.update(str(representations.shape).encode())
    digest.update(str(representations.dtype).encode())
    digest.update(np.ascontiguousarray(representations).tobytes())
    return digest.hexdigest()[:16]


def _lsh_payload(processor: HybridQueryProcessor) -> dict:
    return {
        "num_bits": processor.lsh_config.num_bits,
        "hamming_radius": processor.lsh_config.hamming_radius,
        "seed": processor.lsh_config.seed,
    }


def _streams_payload(processor: HybridQueryProcessor) -> dict:
    """JSON-friendly streaming registry: parent -> segments + append state.

    A streaming table persists as its window-segment encodings (they are the
    real index entries); this payload carries the bookkeeping needed to
    recompose parents and continue appending after a restore — the ordered
    segment family, the window size, the row count and the rows of the
    unsealed tail window.  Written into every base *and* every append-only
    segment (full registry, last writer wins on replay), so a segment delta
    alone is enough to move the restored stream state forward.
    """
    payload: dict = {}
    for parent, segment_ids in getattr(processor, "streams", {}).items():
        state = processor.stream_states.get(parent) or {}
        payload[parent] = {
            "segments": list(segment_ids),
            "segment_rows": int(state.get("segment_rows", 0)),
            "total_rows": int(state.get("total_rows", 0)),
            "column_names": list(state.get("column_names", [])),
            "roles": {
                name: str(role)
                for name, role in (state.get("roles") or {}).items()
            },
            "tail": {
                name: [float(value) for value in np.asarray(values).ravel()]
                for name, values in (state.get("tail") or {}).items()
            },
        }
    return payload


def _persisted_ids(processor: HybridQueryProcessor) -> List[str]:
    """The ids whose encodings a snapshot carries (segments, not parents)."""
    ids = getattr(processor, "persisted_table_ids", None)
    return list(ids) if ids is not None else list(processor.table_ids)


def _live_state(processor: HybridQueryProcessor, table_id: str) -> _TableState:
    encoded = processor.scorer.encoded_table(table_id)
    lsh = processor.lsh
    return _TableState(
        table_id=table_id,
        column_names=list(encoded.column_names),
        column_ranges=[[float(lo), float(hi)] for lo, hi in encoded.column_ranges],
        codes=[int(code) for code in (lsh.codes_for(table_id) if lsh else [])],
        fingerprint=_fingerprint(encoded.representations),
        representations=encoded.representations,
        column_embeddings=encoded.column_embeddings,
        quantized=encoded.quantized,
    )


def _entry_state(entry: dict, representations: np.ndarray) -> _TableState:
    """State from a v1 base/segment meta entry + its archive array."""
    return _TableState(
        table_id=entry["table_id"],
        column_names=list(entry["column_names"]),
        column_ranges=[list(pair) for pair in entry["column_ranges"]],
        codes=[int(code) for code in entry["codes"]],
        fingerprint=entry.get("fingerprint"),
        representations=representations,
        column_embeddings=None,
    )


def _tables_payload(
    processor: HybridQueryProcessor, table_ids: Sequence[str]
) -> Tuple[List[dict], Dict[str, np.ndarray]]:
    """Per-table meta entries + ``rep_<i>`` arrays for the given ids."""
    scorer = processor.scorer
    lsh = processor.lsh
    tables_meta: List[dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for position, table_id in enumerate(table_ids):
        encoded = scorer.encoded_table(table_id)
        arrays[f"rep_{position}"] = encoded.representations
        tables_meta.append(
            {
                "table_id": table_id,
                "column_names": list(encoded.column_names),
                "column_ranges": [
                    [float(lo), float(hi)] for lo, hi in encoded.column_ranges
                ],
                "codes": [int(code) for code in (lsh.codes_for(table_id) if lsh else [])],
                "fingerprint": _fingerprint(encoded.representations),
            }
        )
    return tables_meta, arrays


def _interval_payload(intervals: Sequence[Interval]) -> List[list]:
    return [
        [float(iv.low), float(iv.high), iv.table_id, iv.column_name]
        for iv in intervals
    ]


# The base-archive array members that together replace per-table JSON
# metadata in the v2 layout (see the module docstring).  The lean worker
# path loads only the first group; codes and intervals never survive into
# :class:`EncodedTable`.
_V2_TABLE_ARRAYS = (
    "table_ids",
    "rep_offsets",
    "rep_shapes",
    "colemb_offsets",
    "column_offsets",
    "column_names",
    "column_ranges",
)
_V2_INDEX_ARRAYS = (
    "fingerprints",
    "codes_offsets",
    "codes_counts",
    "interval_bounds",
    "interval_table_ids",
    "interval_column_names",
)
_V2_META_ARRAYS = _V2_TABLE_ARRAYS + _V2_INDEX_ARRAYS


def _v2_meta_arrays(base: Path, archive, lean: bool) -> Dict[str, np.ndarray]:
    """Load the v2 metadata arrays from an open base archive.

    Presence of *every* member is always checked (cheap — the zip directory
    is already in memory), but with ``lean=True`` only the table-geometry
    group is actually read and decoded.
    """
    missing = [name for name in _V2_META_ARRAYS if name not in archive.files]
    if missing:
        raise SnapshotError(
            f"snapshot archive {base.name} is corrupt: v2 metadata array "
            f"{missing[0]!r} is missing"
        )
    wanted = _V2_TABLE_ARRAYS if lean else _V2_META_ARRAYS
    return {name: _archive_member(archive, name, base) for name in wanted}


def _base_fingerprints(
    base: Path, base_meta: dict
) -> "OrderedDict[str, Optional[str]]":
    """``table_id -> content fingerprint`` for the base archive alone.

    The v2 branch reads only the two id/fingerprint arrays from the archive —
    the append path must stay O(delta), never O(index).
    """
    live: "OrderedDict[str, Optional[str]]" = OrderedDict()
    if base_meta["version"] == SNAPSHOT_VERSION_V2:
        with _open_npz(base) as archive:
            table_ids = _archive_member(archive, "table_ids", base).tolist()
            fingerprints = _archive_member(archive, "fingerprints", base).tolist()
        for table_id, fingerprint in zip(table_ids, fingerprints):
            live[table_id] = fingerprint or None  # "" = recorded pre-fingerprint
    else:
        for entry in base_meta["tables"]:
            live[entry["table_id"]] = entry.get("fingerprint")
    return live


def _replay_tables(
    base: Path, base_meta: dict, segment_metas: Sequence[dict]
) -> "OrderedDict[str, Optional[str]]":
    """Live ``table_id -> content fingerprint`` after replaying the segments.

    Fingerprints are ``None`` for entries written before fingerprints were
    recorded (those cannot be content-diffed and are treated as unchanged).
    """
    live = _base_fingerprints(base, base_meta)
    for meta in segment_metas:
        for table_id in meta.get("tombstones", ()):
            live.pop(table_id, None)
        for entry in meta["tables"]:
            live.pop(entry["table_id"], None)
            live[entry["table_id"]] = entry.get("fingerprint")
    return live


def _v2_table_states(
    base: Path,
    meta: dict,
    arrays: Dict[str, np.ndarray],
    mmap: bool,
    lean: bool = False,
) -> "OrderedDict[str, _TableState]":
    """Per-table views into the flat sidecars (zero-copy when ``mmap``).

    With ``lean=True`` the codes sidecar is never opened and no per-table
    code lists or fingerprints are built — the worker load path
    (:func:`snapshot_encodings`) only needs what :class:`EncodedTable`
    carries.  The loop below is deliberately austere: everything numpy is
    converted to plain Python containers in single ``tolist()`` passes and
    the sidecars are re-viewed as base-class ndarrays, because per-table
    ``np.memmap`` view objects (each dragging an instance ``__dict__``) and
    per-element scalar boxing were the dominant private-dirty cost of a
    worker opening a large snapshot.
    """
    reps_flat = _open_sidecar(base, meta, "reps", mmap).view(np.ndarray)
    colemb_flat = _open_sidecar(base, meta, "colemb", mmap).view(np.ndarray)
    codes_flat = None if lean else _open_sidecar(base, meta, "codes", mmap)
    # Pre-q8 v2 snapshots record no quantized sidecars; their tables load
    # with quantized=None and the scorer requantizes lazily on first use.
    has_q8 = "q8" in (meta.get("sidecars") or {})
    q8_flat = (
        _open_sidecar(base, meta, "q8", mmap).view(np.ndarray) if has_q8 else None
    )
    qscale_flat = (
        _open_sidecar(base, meta, "qscale", mmap).view(np.ndarray)
        if has_q8
        else None
    )
    if q8_flat is not None and q8_flat.shape[0] != reps_flat.shape[0]:
        raise SnapshotError(
            f"{base.name} is corrupt: the q8 sidecar holds "
            f"{q8_flat.shape[0]} elements but the reps sidecar holds "
            f"{reps_flat.shape[0]} — the quantized copy must mirror the "
            f"representation geometry"
        )
    reps_total = reps_flat.shape[0]
    colemb_total = colemb_flat.shape[0]
    table_ids = arrays["table_ids"].tolist()
    num_tables = len(table_ids)
    if qscale_flat is not None and qscale_flat.shape[0] != num_tables:
        raise SnapshotError(
            f"{base.name} is corrupt: the qscale sidecar holds "
            f"{qscale_flat.shape[0]} scales for {num_tables} tables"
        )
    fingerprints = (
        [""] * num_tables if lean else arrays["fingerprints"].tolist()
    )
    rep_shapes = arrays["rep_shapes"]
    column_offsets = arrays["column_offsets"]
    names_flat = arrays["column_names"].tolist()
    ranges_flat = arrays["column_ranges"]
    if (
        rep_shapes.shape != (num_tables, 3)
        or len(fingerprints) != num_tables
        or any(
            arrays[member].shape != (num_tables,)
            for member in ("rep_offsets", "colemb_offsets")
        )
        or (
            not lean
            and any(
                arrays[member].shape != (num_tables,)
                for member in ("codes_offsets", "codes_counts")
            )
        )
        or column_offsets.shape != (num_tables + 1,)
        or int(column_offsets[-1]) != len(names_flat)
        or ranges_flat.shape != (len(names_flat), 2)
    ):
        raise SnapshotError(
            f"{base.name} is corrupt: v2 metadata arrays disagree on the "
            f"number of tables/columns"
        )
    rep_offsets = arrays["rep_offsets"].tolist()
    rep_shape_rows = rep_shapes.tolist()
    colemb_offsets = arrays["colemb_offsets"].tolist()
    codes_offsets = [] if lean else arrays["codes_offsets"].tolist()
    codes_counts = [] if lean else arrays["codes_counts"].tolist()
    column_bounds = column_offsets.tolist()
    # Lean states keep ranges as (NC, 2) float64 row views — the scorer's
    # y-filter only unpacks rows, and boxing every bound into Python floats
    # is measurable per-worker overhead.  The full path materialises plain
    # lists because compaction re-serialises ranges through JSON (v1).
    ranges_rows = ranges_flat if lean else ranges_flat.tolist()
    states: "OrderedDict[str, _TableState]" = OrderedDict()
    for index in range(num_tables):
        table_id = table_ids[index]
        shape = rep_shape_rows[index]
        size = shape[0] * shape[1] * shape[2]
        offset = rep_offsets[index]
        if offset + size > reps_total:
            raise SnapshotError(
                f"{base.name} is corrupt: table {table_id!r} points past the "
                f"end of the reps sidecar (offset {offset} + {size} elements "
                f"> {reps_total})"
            )
        representations = reps_flat[offset : offset + size].reshape(shape)
        num_columns, embed_dim = shape[0], shape[2]
        colemb_size = num_columns * embed_dim
        colemb_offset = colemb_offsets[index]
        if colemb_offset + colemb_size > colemb_total:
            raise SnapshotError(
                f"{base.name} is corrupt: table {table_id!r} points past the "
                f"end of the colemb sidecar"
            )
        column_embeddings = colemb_flat[
            colemb_offset : colemb_offset + colemb_size
        ].reshape(num_columns, embed_dim)
        codes: List[int] = []
        if codes_flat is not None:
            codes_offset = codes_offsets[index]
            codes_count = codes_counts[index]
            if codes_offset + codes_count > codes_flat.shape[0]:
                raise SnapshotError(
                    f"{base.name} is corrupt: table {table_id!r} points past "
                    f"the end of the codes sidecar"
                )
            codes = codes_flat[codes_offset : codes_offset + codes_count].tolist()
        quantized = None
        if q8_flat is not None:
            # The q8 sidecar mirrors the reps geometry exactly, so the same
            # offset/size index both; codes keep the (NC, N2, K) shape.
            quantized = QuantizedTable(
                codes=q8_flat[offset : offset + size].reshape(shape),
                scale=float(qscale_flat[index]),
            )
        columns_start = column_bounds[index]
        columns_end = column_bounds[index + 1]
        states[table_id] = _TableState(
            table_id=table_id,
            column_names=names_flat[columns_start:columns_end],
            column_ranges=ranges_rows[columns_start:columns_end],
            codes=codes,
            fingerprint=fingerprints[index] or None,
            representations=representations,
            column_embeddings=column_embeddings,
            quantized=quantized,
        )
    return states


def _v2_intervals(arrays: Dict[str, np.ndarray]) -> List[list]:
    bounds = arrays["interval_bounds"]
    interval_table_ids = arrays["interval_table_ids"].tolist()
    interval_column_names = arrays["interval_column_names"].tolist()
    return [
        [float(bounds[row, 0]), float(bounds[row, 1]), table_id, column_name]
        for row, (table_id, column_name) in enumerate(
            zip(interval_table_ids, interval_column_names)
        )
    ]


def _merged_snapshot(
    path: PathLike, mmap: bool = False, lean: bool = False
) -> Tuple[Path, dict, "OrderedDict[str, _TableState]", List[list]]:
    """Replay base + segments into one in-memory state (for load/compaction).

    ``lean=True`` (v2 worker path) skips LSH code lists and interval rows —
    neither survives into :class:`EncodedTable`.
    """
    base = _resolve_snapshot_path(path)
    tables: "OrderedDict[str, _TableState]" = OrderedDict()
    intervals: List[list] = []
    with _open_npz(base) as archive:
        base_meta = _decode_meta(_archive_member(archive, "__meta__", base), base)
        _check_base_version(base_meta, base)
        if base_meta["version"] == SNAPSHOT_VERSION_V2:
            base_arrays = _v2_meta_arrays(base, archive, lean=lean)
        else:
            base_arrays = {
                name: _archive_member(archive, name, base)
                for name in archive.files
                if name != "__meta__"
            }
    if base_meta["version"] == SNAPSHOT_VERSION_V2:
        tables = _v2_table_states(base, base_meta, base_arrays, mmap=mmap, lean=lean)
        if not lean:
            intervals = _v2_intervals(base_arrays)
    else:
        for position, entry in enumerate(base_meta["tables"]):
            try:
                representations = base_arrays[f"rep_{position}"]
            except KeyError:
                raise SnapshotError(
                    f"snapshot archive {base.name} is corrupt: array "
                    f"rep_{position} for table {entry['table_id']!r} is missing"
                ) from None
            tables[entry["table_id"]] = _entry_state(entry, representations)
        intervals = [list(iv) for iv in base_meta["intervals"]]
    streams_meta = base_meta.get("streams") or {}
    for segment in snapshot_segments(base):
        meta, arrays = _read_archive(segment)
        _check_segment(meta, base_meta, segment)
        if "streams" in meta:
            # Segments carry the *full* streaming registry at write time;
            # the newest copy wins (pre-streaming segments leave it alone).
            streams_meta = meta["streams"] or {}
        dropped = set(meta.get("tombstones", ()))
        dropped.update(entry["table_id"] for entry in meta["tables"])
        if dropped:
            # Tombstones kill a table outright; re-added ids shed their stale
            # copy so replay stays idempotent (compaction crash safety).
            for table_id in dropped:
                tables.pop(table_id, None)
            intervals = [iv for iv in intervals if iv[2] not in dropped]
        for position, entry in enumerate(meta["tables"]):
            try:
                representations = arrays[f"rep_{position}"]
            except KeyError:
                raise SnapshotError(
                    f"snapshot segment {segment.name} is corrupt: array "
                    f"rep_{position} for table {entry['table_id']!r} is missing"
                ) from None
            tables[entry["table_id"]] = _entry_state(entry, representations)
        intervals.extend(list(iv) for iv in meta["intervals"])
    base_meta = dict(base_meta)
    base_meta["streams"] = streams_meta
    return base, base_meta, tables, intervals


# --------------------------------------------------------------------------- #
# Base writers (v1 single archive / v2 meta + flat sidecars)
# --------------------------------------------------------------------------- #
def _write_v1_base(base: Path, header: dict, states: Sequence[_TableState]) -> Path:
    entries: List[dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for position, state in enumerate(states):
        arrays[f"rep_{position}"] = state.representations
        entry = {
            "table_id": state.table_id,
            "column_names": list(state.column_names),
            "column_ranges": [list(pair) for pair in state.column_ranges],
            "codes": [int(code) for code in state.codes],
        }
        if state.fingerprint is not None:
            entry["fingerprint"] = state.fingerprint
        entries.append(entry)
    meta = {
        "version": SNAPSHOT_VERSION,
        "embed_dim": header["embed_dim"],
        "dtype": header["dtype"],
        "lsh": header["lsh"],
        "tables": entries,
        "intervals": header["intervals"],
        "streams": header.get("streams") or {},
    }
    written = _write_archive(base, meta, arrays)
    _cleanup_sidecars(written)  # a v1 base references no sidecars at all
    return written


def _strings_array(values: Sequence[str]) -> np.ndarray:
    """A numpy unicode array (``<U1``-typed when empty, for round-tripping)."""
    if not values:
        return np.empty(0, dtype="<U1")
    return np.array(list(values), dtype=np.str_)


def _write_v2_base(base: Path, header: dict, states: Sequence[_TableState]) -> Path:
    base = _canonical_base(base)
    lsh = header.get("lsh") or {}
    if int(lsh.get("num_bits", 0)) > 64:
        raise ValueError(
            "the v2 layout stores LSH codes as uint64, which caps num_bits at "
            "64 — use layout='v1' for wider codes"
        )
    dtype = np.dtype(header["dtype"])
    table_ids: List[str] = []
    fingerprints: List[str] = []  # "" = not recorded (pre-fingerprint entry)
    rep_offsets: List[int] = []
    rep_shapes: List[Tuple[int, int, int]] = []
    colemb_offsets: List[int] = []
    codes_offsets: List[int] = []
    codes_counts: List[int] = []
    column_offsets: List[int] = [0]  # (N+1,) prefix sums into the flat columns
    names_flat: List[str] = []
    ranges_flat: List[Tuple[float, float]] = []
    rep_parts: List[np.ndarray] = []
    colemb_parts: List[np.ndarray] = []
    q8_parts: List[np.ndarray] = []
    qscales: List[float] = []
    all_codes: List[int] = []
    rep_offset = colemb_offset = 0
    for state in states:
        representations = np.ascontiguousarray(state.representations, dtype=dtype)
        column_embeddings = np.ascontiguousarray(
            _state_column_embeddings(state), dtype=dtype
        )
        # The int8 copy rides along so a restart (or a mapped worker) never
        # has to requantize: reuse the live scorer's quantization when the
        # state carries one, rebuild it when compacting a pre-q8 lineage.
        quantized = state.quantized or quantize_table(representations)
        table_ids.append(state.table_id)
        fingerprints.append(state.fingerprint or "")
        rep_offsets.append(rep_offset)
        rep_shapes.append(tuple(int(dim) for dim in representations.shape))
        colemb_offsets.append(colemb_offset)
        codes_offsets.append(len(all_codes))
        codes_counts.append(len(state.codes))
        names_flat.extend(state.column_names)
        ranges_flat.extend(
            (float(low), float(high)) for low, high in state.column_ranges
        )
        column_offsets.append(len(names_flat))
        rep_parts.append(representations.reshape(-1))
        rep_offset += representations.size
        colemb_parts.append(column_embeddings.reshape(-1))
        colemb_offset += column_embeddings.size
        q8_parts.append(np.ascontiguousarray(quantized.codes, dtype=np.int8).reshape(-1))
        qscales.append(float(quantized.scale))
        all_codes.extend(int(code) for code in state.codes)
    intervals = header["intervals"]
    arrays = {
        "table_ids": _strings_array(table_ids),
        "fingerprints": _strings_array(fingerprints),
        "rep_offsets": np.asarray(rep_offsets, dtype=np.int64),
        "rep_shapes": np.asarray(rep_shapes, dtype=np.int64).reshape(
            len(states), 3
        ),
        "colemb_offsets": np.asarray(colemb_offsets, dtype=np.int64),
        "codes_offsets": np.asarray(codes_offsets, dtype=np.int64),
        "codes_counts": np.asarray(codes_counts, dtype=np.int64),
        "column_offsets": np.asarray(column_offsets, dtype=np.int64),
        "column_names": _strings_array(names_flat),
        "column_ranges": np.asarray(ranges_flat, dtype=np.float64).reshape(
            len(names_flat), 2
        ),
        "interval_bounds": np.asarray(
            [[float(row[0]), float(row[1])] for row in intervals],
            dtype=np.float64,
        ).reshape(len(intervals), 2),
        "interval_table_ids": _strings_array([str(row[2]) for row in intervals]),
        "interval_column_names": _strings_array(
            [str(row[3]) for row in intervals]
        ),
    }
    reps_flat = (
        np.concatenate(rep_parts) if rep_parts else np.empty(0, dtype=dtype)
    )
    colemb_flat = (
        np.concatenate(colemb_parts) if colemb_parts else np.empty(0, dtype=dtype)
    )
    codes_flat = np.array(all_codes, dtype=np.uint64)
    q8_flat = (
        np.concatenate(q8_parts) if q8_parts else np.empty(0, dtype=np.int8)
    )
    qscale_flat = np.asarray(qscales, dtype=np.float64)
    generation = _next_generation(base)
    flats = {
        "reps": reps_flat,
        "colemb": colemb_flat,
        "codes": codes_flat,
        "q8": q8_flat,
        "qscale": qscale_flat,
    }
    sidecars = {
        kind: {
            "file": _sidecar_path(base, generation, kind).name,
            "elements": int(flats[kind].shape[0]),
        }
        for kind in _SIDECAR_KINDS
    }
    meta = {
        "version": SNAPSHOT_VERSION_V2,
        "generation": generation,
        "embed_dim": header["embed_dim"],
        "dtype": header["dtype"],
        "lsh": header["lsh"],
        "num_tables": len(states),
        "sidecars": sidecars,
        "streams": header.get("streams") or {},
    }
    # Sidecars land complete (atomic per-file) under a fresh generation
    # *before* the base archive is replaced; the base rename is the commit
    # point, after which older generations are garbage and deleted.
    for kind in _SIDECAR_KINDS:
        _write_npy(_sidecar_path(base, generation, kind), flats[kind])
    written = _write_archive(base, meta, arrays)
    _cleanup_sidecars(written, keep_generation=generation)
    return written


# --------------------------------------------------------------------------- #
# Save: full base or append-only segment
# --------------------------------------------------------------------------- #
def save_processor(
    processor: HybridQueryProcessor,
    path: PathLike,
    append: bool = False,
    layout: Union[str, int, None] = None,
) -> Path:
    """Snapshot a built :class:`HybridQueryProcessor` to ``path`` (``.npz``).

    With ``append=False`` (the default) this writes a full **base** archive:
    the cached encodings of every indexed table, the live interval-tree
    intervals and the LSH codes + configuration — and deletes any
    append-only segments a previous snapshot at this path accumulated (the
    fresh base supersedes them).  ``layout`` selects the base format:
    ``"v1"`` (default) writes the single self-contained ``.npz``; ``"v2"``
    writes a metadata-only base plus flat ``.npy`` sidecars that
    ``load_processor(..., mmap=True)`` can memory-map zero-copy (see the
    module docstring).  Model weights are *not* included — persist those
    separately with :func:`repro.nn.serialization.save_state_dict`.

    With ``append=True`` only the **delta** against the existing base (plus
    any earlier segments) is written, as a numbered segment file next to the
    base — new tables' encodings/codes/intervals and a tombstone list for
    removed ones.  The cost is O(delta): the base's representation arrays
    are neither read nor rewritten.  Segments always use the v1 archive
    format regardless of the base layout, so ``layout`` must be left at
    ``None``.  Returns the path written — the segment file, or the base
    path unchanged when the delta is empty (nothing is written).  Raises
    ``ValueError`` if no base exists at ``path`` or if the processor's
    precision/embedding dimension does not match it.
    """
    if append:
        if layout is not None:
            raise ValueError(
                "layout= applies to full saves; append-only segments always "
                "use the v1 archive format"
            )
        return _append_segment(processor, path)
    version = _resolve_layout(layout)
    states = [
        _live_state(processor, table_id) for table_id in _persisted_ids(processor)
    ]
    header = {
        "embed_dim": processor.scorer.config.embed_dim,
        "dtype": processor.scorer.config.numeric_dtype.name,
        "lsh": _lsh_payload(processor),
        "intervals": _interval_payload(processor.interval_tree.intervals),
        "streams": _streams_payload(processor),
    }
    # Retire a previous lineage's segments *before* replacing the base:
    # deleting newest-first keeps every intermediate crash state a
    # consistent (if stale) snapshot, whereas stale segments next to the
    # new base would replay over it and resurrect removed tables.
    for stale_segment in reversed(snapshot_segments(Path(path))):
        stale_segment.unlink()
    writer = _write_v2_base if version == SNAPSHOT_VERSION_V2 else _write_v1_base
    written = writer(Path(path), header, states)
    _log.info(
        "snapshot_saved",
        path=str(written),
        tables=len(states),
        layout="v2" if version == SNAPSHOT_VERSION_V2 else "v1",
    )
    return written


def _append_segment(processor: HybridQueryProcessor, path: PathLike) -> Path:
    base = _resolve_snapshot_path(path)
    if not base.exists():
        raise ValueError(
            f"append=True needs an existing base snapshot at {base}; write one "
            f"first with save_processor(..., append=False)"
        )
    base_meta = _read_meta(base)
    _check_base_version(base_meta, base)
    config = processor.scorer.config
    if base_meta["embed_dim"] != config.embed_dim:
        raise ValueError(
            f"snapshot was built with embed_dim={base_meta['embed_dim']}, "
            f"the processor has embed_dim={config.embed_dim}"
        )
    base_dtype = base_meta.get("dtype", "float64")
    live_dtype = config.numeric_dtype.name
    if base_dtype != live_dtype:
        raise ValueError(
            f"cannot append a {live_dtype} segment to a snapshot recorded under "
            f"dtype={base_dtype}; a snapshot lineage must be single-precision — "
            f"write a fresh base under {live_dtype} instead"
        )
    live_lsh = _lsh_payload(processor)
    if base_meta.get("lsh") != live_lsh:
        raise ValueError(
            f"cannot append to a snapshot recorded under LSH configuration "
            f"{base_meta.get('lsh')} from a processor configured with "
            f"{live_lsh}; codes hashed under different hyperplanes cannot be "
            f"mixed — write a fresh base instead"
        )

    segments = snapshot_segments(base)
    segment_metas = [_read_meta(segment) for segment in segments]
    for segment, meta in zip(segments, segment_metas):
        _check_segment(meta, base_meta, segment)
    covered = _replay_tables(base, base_meta, segment_metas)
    current = _persisted_ids(processor)
    current_set = set(current)
    # Content-aware delta: an id present on both sides whose recorded
    # fingerprint no longer matches the live encoding (removed + re-added
    # with different content) is rewritten — tombstone plus re-add in the
    # same segment.  The comparison hashes the live encodings (fast,
    # memory-bandwidth-bound); the recorded arrays are never read.
    changed = {
        table_id
        for table_id in current
        if covered.get(table_id) is not None
        and _fingerprint(
            processor.scorer.encoded_table(table_id).representations
        )
        != covered[table_id]
    }
    new_ids = [
        table_id
        for table_id in current
        if table_id not in covered or table_id in changed
    ]
    tombstones = [
        table_id
        for table_id in covered
        if table_id not in current_set or table_id in changed
    ]
    if not new_ids and not tombstones:
        _log.debug("segment_skipped_empty_delta", base=str(base))
        return base  # empty delta: the snapshot already records this state

    numbers = [int(_SEGMENT_RE.search(s.name).group(1)) for s in segments]
    next_number = (max(numbers) + 1) if numbers else 1
    tables_meta, arrays = _tables_payload(processor, new_ids)
    meta = {
        "version": SNAPSHOT_VERSION,
        "kind": "segment",
        "segment": next_number,
        "embed_dim": config.embed_dim,
        "dtype": live_dtype,
        "lsh": live_lsh,
        "tables": tables_meta,
        "tombstones": tombstones,
        "intervals": _interval_payload(
            processor.interval_tree.intervals_for_tables(new_ids)
        ),
        # Full streaming registry, not a delta: replay takes the newest
        # segment's copy, so a restored stream resumes from the latest
        # row-count/tail state this lineage recorded.
        "streams": _streams_payload(processor),
    }
    segment_path = base.parent / (
        base.stem + _SEGMENT_SUFFIX.format(number=next_number)
    )
    written = _write_archive(segment_path, meta, arrays)
    _log.info(
        "segment_saved",
        path=str(written),
        segment=next_number,
        added=len(new_ids),
        tombstones=len(tombstones),
    )
    return written


def compact_snapshot(path: PathLike, layout: Union[str, int, None] = None) -> Path:
    """Fold a base + its append-only segments back into one base archive.

    Replays the segments, rewrites the base with the merged state and then
    deletes the segment files; loading the compacted snapshot is equivalent
    to loading the segmented one (``tests/test_serving.py`` pins this).
    ``layout=None`` keeps the base's current layout; passing ``"v1"`` or
    ``"v2"`` rewrites into that layout — so
    ``compact_snapshot(path, layout="v2")`` is also the migration path that
    turns an existing v1 snapshot into a memory-mappable one, segments or
    not.  A snapshot that already has the requested layout and no segments
    is returned untouched.  Crash safety: the base is rewritten *before*
    the segments are deleted (v2 sidecars land under a fresh generation
    before the base rename commits them), and replaying a segment over the
    compacted base is idempotent, so an interruption between the steps
    cannot corrupt the snapshot.
    """
    base = _resolve_snapshot_path(path)
    current_version = snapshot_layout(base)
    target_version = (
        current_version if layout is None else _resolve_layout(layout)
    )
    segments = snapshot_segments(base)
    if not segments and target_version == current_version:
        return base
    base, base_meta, tables, intervals = _merged_snapshot(
        base, mmap=current_version == SNAPSHOT_VERSION_V2
    )
    header = {
        "embed_dim": base_meta["embed_dim"],
        "dtype": base_meta.get("dtype", "float64"),
        "lsh": base_meta["lsh"],
        "intervals": intervals,
        "streams": base_meta.get("streams") or {},
    }
    writer = (
        _write_v2_base if target_version == SNAPSHOT_VERSION_V2 else _write_v1_base
    )
    base = writer(base, header, list(tables.values()))
    for segment in segments:
        segment.unlink()
    _log.info(
        "snapshot_compacted",
        path=str(base),
        tables=len(tables),
        segments_folded=len(segments),
        layout="v2" if target_version == SNAPSHOT_VERSION_V2 else "v1",
    )
    return base


# --------------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------------- #
def _states_to_encoded(states: "OrderedDict[str, _TableState]") -> List[EncodedTable]:
    # The states are ephemeral (built by _merged_snapshot and discarded), so
    # the column-name lists are handed over rather than copied, and lean v2
    # range arrays pass through as-is — per-table copies and float boxing
    # are pure private-dirty overhead in a preloading worker.
    return [
        EncodedTable(
            table_id=state.table_id,
            representations=state.representations,
            column_names=state.column_names,
            column_ranges=(
                state.column_ranges
                if isinstance(state.column_ranges, np.ndarray)
                else [(low, high) for low, high in state.column_ranges]
            ),
            column_embeddings=_state_column_embeddings(state),
            quantized=state.quantized,
        )
        for state in states.values()
    ]


def snapshot_encodings(path: PathLike, mmap: bool = False) -> List[EncodedTable]:
    """The cached :class:`EncodedTable` entries a snapshot records.

    Replays append-only segments like :func:`load_processor`, but needs no
    model and rebuilds no index structures — this is the worker-side entry
    point: with ``mmap=True`` (v2 snapshots only) every table's arrays are
    zero-copy read-only views into the memory-mapped sidecars, so a pool of
    query workers opening the same snapshot shares one page-cache-backed
    copy of the encodings instead of each holding a private duplicate.
    """
    if mmap and snapshot_layout(path) != SNAPSHOT_VERSION_V2:
        base = _resolve_snapshot_path(path)
        raise SnapshotError(
            f"{base.name} is a v1 (single-archive) snapshot and cannot be "
            f"memory-mapped; rewrite it with compact_snapshot(path, "
            f"layout='v2') or save it with layout='v2'"
        )
    _, _, states, _ = _merged_snapshot(path, mmap=mmap, lean=True)
    return _states_to_encoded(states)


def load_processor(
    model: FCMModel,
    path: PathLike,
    scorer: Optional[FCMScorer] = None,
    mmap: bool = False,
) -> HybridQueryProcessor:
    """Rebuild a query processor from a snapshot, without re-encoding.

    The base archive is read and any append-only segments are replayed in
    order (tombstones applied, then additions), so the restored state is
    exactly what the last ``save_processor`` — full or append — recorded.
    The snapshot's cached encodings are injected into a fresh (or supplied)
    scorer, the interval tree is rebuilt from the saved intervals and the
    LSH from the saved codes — queries against the result are identical to
    the processor that was saved (``tests/test_serving.py`` pins the round
    trip).  With ``mmap=True`` (v2 snapshots only) the base encodings are
    read-only views into memory-mapped sidecar files instead of in-process
    copies; segment-recorded tables still load as copies (deltas are small
    by construction).  Raises ``ValueError`` if the model's embedding
    dimension or numeric precision does not match the snapshot's, and
    :class:`SnapshotError` if any file of the lineage is missing, truncated
    or corrupt.
    """
    base = _resolve_snapshot_path(path)
    if mmap and snapshot_layout(base) != SNAPSHOT_VERSION_V2:
        raise SnapshotError(
            f"{base.name} is a v1 (single-archive) snapshot and cannot be "
            f"memory-mapped; rewrite it with compact_snapshot(path, "
            f"layout='v2') or save it with layout='v2'"
        )
    base, meta, tables, interval_rows = _merged_snapshot(base, mmap=mmap)
    if meta["embed_dim"] != model.config.embed_dim:
        raise ValueError(
            f"snapshot was built with embed_dim={meta['embed_dim']}, "
            f"the model has embed_dim={model.config.embed_dim}"
        )
    snapshot_dtype = meta.get("dtype", "float64")  # pre-policy snapshots
    model_dtype = model.config.numeric_dtype.name
    if snapshot_dtype != model_dtype:
        raise ValueError(
            f"snapshot was built under dtype={snapshot_dtype}, the model runs "
            f"{model_dtype}; cached encodings cannot be cast without changing "
            f"scores — rebuild the index under {model_dtype} (or load with a "
            f"{snapshot_dtype} model, e.g. REPRO_DTYPE={snapshot_dtype})"
        )

    scorer = scorer or FCMScorer(model)
    lsh_config = LSHConfig(**meta["lsh"])
    processor = HybridQueryProcessor(scorer, lsh_config=lsh_config)
    lsh = RandomHyperplaneLSH(
        model.config.embed_dim, config=lsh_config, dtype=model.config.numeric_dtype
    )
    streams_meta = meta.get("streams") or {}
    segment_ids = {
        seg_id for entry in streams_meta.values() for seg_id in entry["segments"]
    }
    for encoded, state in zip(_states_to_encoded(tables), tables.values()):
        scorer.add_encoded(encoded)
        lsh.add_codes(encoded.table_id, state.codes)
        if encoded.table_id not in segment_ids:
            processor.register_table(encoded.table_id)
    processor.lsh = lsh
    processor.interval_tree = IntervalTree(
        Interval(low=low, high=high, table_id=table_id, column_name=column_name)
        for low, high, table_id, column_name in interval_rows
    )
    for parent, entry in streams_meta.items():
        missing = [s for s in entry["segments"] if s not in tables]
        if missing:
            raise SnapshotError(
                f"snapshot {base.name} is corrupt: stream {parent!r} references "
                f"unrecorded segments {missing}"
            )
        processor.register_stream(
            parent,
            entry["segments"],
            {
                "segment_rows": int(entry["segment_rows"]),
                "total_rows": int(entry["total_rows"]),
                "column_names": list(entry["column_names"]),
                "roles": dict(entry.get("roles") or {}),
                "tail": {
                    name: np.asarray(values, dtype=np.float64)
                    for name, values in (entry.get("tail") or {}).items()
                },
            },
        )
    _log.info(
        "snapshot_loaded",
        path=str(base),
        tables=len(tables),
        streams=len(streams_meta),
        mmap=mmap,
        dtype=snapshot_dtype,
    )
    return processor
