"""Index snapshots: save/load everything a restarted service needs.

A snapshot is a single ``.npz`` archive holding, per indexed table, the
cached dataset-encoder representations (the expensive part — the reason a
restart should not re-encode anything), plus a JSON ``__meta__`` entry with
the column names/ranges, the LSH configuration and per-table codes, and the
interval-tree intervals.  Column embeddings are *not* stored: they are the
mean of the representations over the segment axis and recomputing them on
load is bit-identical to what was cached.

The format is versioned; loading checks the model's embedding dimension
*and numeric precision* against the snapshot so a service cannot silently
serve encodings produced by an incompatible model.  Unlike model
checkpoints (which load-and-cast, see :mod:`repro.nn.serialization`), a
dtype-mismatched snapshot is an **error**: cached encodings, LSH codes and
rankings were all produced under the recorded precision, and silently
casting them would serve scores the live model cannot reproduce.
Pre-policy snapshots carry no dtype field and are treated as float64.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..fcm.model import FCMModel
from ..fcm.scorer import EncodedTable, FCMScorer
from ..index.hybrid import HybridQueryProcessor
from ..index.interval_tree import Interval, IntervalTree
from ..index.lsh import LSHConfig, RandomHyperplaneLSH

PathLike = Union[str, Path]

SNAPSHOT_VERSION = 1


def save_processor(processor: HybridQueryProcessor, path: PathLike) -> Path:
    """Snapshot a built :class:`HybridQueryProcessor` to ``path`` (``.npz``).

    Saves the cached encodings of every indexed table, the live interval-tree
    intervals and the LSH codes + configuration.  Model weights are *not*
    included — persist those separately with
    :func:`repro.nn.serialization.save_state_dict`.
    """
    scorer = processor.scorer
    table_ids = processor.table_ids
    tables_meta = []
    arrays = {}
    lsh_codes = processor.lsh.export_codes() if processor.lsh is not None else {}
    for position, table_id in enumerate(table_ids):
        encoded = scorer.encoded_table(table_id)
        arrays[f"rep_{position}"] = encoded.representations
        tables_meta.append(
            {
                "table_id": table_id,
                "column_names": list(encoded.column_names),
                "column_ranges": [[float(lo), float(hi)] for lo, hi in encoded.column_ranges],
                "codes": [int(code) for code in lsh_codes.get(table_id, [])],
            }
        )
    meta = {
        "version": SNAPSHOT_VERSION,
        "embed_dim": scorer.config.embed_dim,
        "dtype": scorer.config.numeric_dtype.name,
        "lsh": {
            "num_bits": processor.lsh_config.num_bits,
            "hamming_radius": processor.lsh_config.hamming_radius,
            "seed": processor.lsh_config.seed,
        },
        "tables": tables_meta,
        "intervals": [
            [float(iv.low), float(iv.high), iv.table_id, iv.column_name]
            for iv in processor.interval_tree.intervals
        ],
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    if path.suffix != ".npz":  # np.savez appends .npz when missing
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_processor(
    model: FCMModel,
    path: PathLike,
    scorer: Optional[FCMScorer] = None,
) -> HybridQueryProcessor:
    """Rebuild a query processor from a snapshot, without re-encoding.

    The snapshot's cached encodings are injected into a fresh (or supplied)
    scorer, the interval tree is rebuilt from the saved intervals and the
    LSH from the saved codes — queries against the result are identical to
    the processor that was saved (``tests/test_serving.py`` pins the round
    trip).  Raises ``ValueError`` if the model's embedding dimension does
    not match the snapshot's.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
    if meta.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {meta.get('version')!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    if meta["embed_dim"] != model.config.embed_dim:
        raise ValueError(
            f"snapshot was built with embed_dim={meta['embed_dim']}, "
            f"the model has embed_dim={model.config.embed_dim}"
        )
    snapshot_dtype = meta.get("dtype", "float64")  # pre-policy snapshots
    model_dtype = model.config.numeric_dtype.name
    if snapshot_dtype != model_dtype:
        raise ValueError(
            f"snapshot was built under dtype={snapshot_dtype}, the model runs "
            f"{model_dtype}; cached encodings cannot be cast without changing "
            f"scores — rebuild the index under {model_dtype} (or load with a "
            f"{snapshot_dtype} model, e.g. REPRO_DTYPE={snapshot_dtype})"
        )

    scorer = scorer or FCMScorer(model)
    lsh_config = LSHConfig(**meta["lsh"])
    processor = HybridQueryProcessor(scorer, lsh_config=lsh_config)
    lsh = RandomHyperplaneLSH(
        model.config.embed_dim, config=lsh_config, dtype=model.config.numeric_dtype
    )
    for position, table_meta in enumerate(meta["tables"]):
        representations = arrays[f"rep_{position}"]
        encoded = EncodedTable(
            table_id=table_meta["table_id"],
            representations=representations,
            column_names=list(table_meta["column_names"]),
            column_ranges=[(lo, hi) for lo, hi in table_meta["column_ranges"]],
            column_embeddings=representations.mean(axis=1),
        )
        scorer.add_encoded(encoded)
        lsh.add_codes(encoded.table_id, table_meta["codes"])
        processor.register_table(encoded.table_id)
    processor.lsh = lsh
    processor.interval_tree = IntervalTree(
        Interval(low=low, high=high, table_id=table_id, column_name=column_name)
        for low, high, table_id, column_name in meta["intervals"]
    )
    return processor
