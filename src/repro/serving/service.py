"""``SearchService`` — a long-lived, mutable, persistent chart-query service.

The paper treats the hybrid index as a one-shot batch build; this facade
keeps it alive as a *service*:

* **incremental maintenance** — :meth:`SearchService.add_tables` /
  :meth:`SearchService.remove_tables` mutate the interval tree, the LSH and
  the scorer's encoding cache in place, with query results provably
  identical to a from-scratch rebuild;
* **sharded builds** — :meth:`SearchService.build` can fan table encoding
  out across worker processes (:mod:`repro.serving.sharding`) and merge the
  caches;
* **persistence** — :meth:`SearchService.save_index` /
  :meth:`SearchService.load_index` snapshot cached encodings, LSH codes and
  interval data so a restart never re-encodes the repository;
* **serving ergonomics** — an LRU result cache invalidated on any index
  mutation, and per-strategy latency / candidate-count statistics.

Example
-------
>>> service = SearchService(model)
>>> service.build(repository.tables, num_workers=4)     # sharded encode
>>> service.query(chart, k=5).ranking                    # cold
>>> service.query(chart, k=5)                            # warm (cached)
>>> service.add_tables(new_tables)                       # incremental, cache invalidated
>>> service.save_index("index.npz")
>>> restarted = SearchService.load_index(model, "index.npz")
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..charts.rasterizer import LineChart
from ..data.table import Table
from ..fcm.model import FCMModel
from ..fcm.scorer import FCMScorer
from ..index.hybrid import (
    INDEXING_STRATEGIES,
    HybridQueryProcessor,
    IndexBuildStats,
    QueryResult,
)
from ..index.lsh import LSHConfig
from ..obs import (
    current_span,
    get_logger,
    get_registry,
    maybe_log_slow_query,
    span,
    start_trace,
)
from ..vision.extractor import VisualElementExtractor
from .persistence import (
    SNAPSHOT_VERSION_V2,
    PathLike,
    compact_snapshot,
    load_processor,
    save_processor,
    snapshot_layout,
)
from .sharding import ShardBuildReport, encode_tables_sharded
from .streaming import (
    AppendResult,
    StreamingConfig,
    SubscriptionEngine,
    SubscriptionEvent,
    append_stream_rows,
)
from .workers import QueryWorkerPool, split_shards

_log = get_logger("repro.serving.service")

#: The sticky fallback reason recorded by :meth:`SearchService.close`:
#: queries after ``close()`` serve in-process instead of silently
#: respawning a worker pool; :meth:`SearchService.reset_query_pool` re-arms.
CLOSED_FALLBACK_REASON = (
    "service closed (SearchService.close()); queries serve in-process — "
    "call reset_query_pool() to re-arm the worker pool"
)


@dataclass
class ServingConfig:
    """Knobs of the serving layer (index parameters live in ``LSHConfig``).

    Attributes
    ----------
    lsh_config:
        Parameters of the LSH index structure.
    result_cache_size:
        Number of ``(chart, k, strategy)`` results memoised between index
        mutations; ``0`` disables the cache.
    num_workers:
        Default worker-process count for :meth:`SearchService.build`
        (``<= 1`` encodes in-process).
    num_query_shards:
        When ``> 1``, candidate verification fans out over this many shards
        of the candidate set — one stacked matcher forward per shard —
        bounding the padded batch size on very large repositories.  Results
        are identical to the single-batch path.  With ``query_workers`` set,
        this is the number of shards scattered over the worker pool
        (``1`` means one shard per worker).
    query_workers:
        When ``>= 2``, candidate verification runs on a persistent
        process-level worker pool (:class:`repro.serving.workers.QueryWorkerPool`):
        each worker rehydrates the model once, receives incremental cache
        syncs, and scores a shard of the candidates per query.  Rankings and
        scores are identical to in-process serving; any pool failure falls
        back in-process (sticky — see :meth:`SearchService.reset_query_pool`).
        ``0`` (default) and ``1`` verify in-process.
    worker_timeout:
        Per-operation wall-clock guard (seconds) for the query worker pool —
        the start handshake, a sync broadcast and each per-query
        scatter/gather all honour it; on expiry the query is re-verified
        in-process and the pool is retired.  Defaults to ``30.0`` so a
        wedged worker can never block a query forever; ``None`` (explicit
        opt-in) waits indefinitely.
    build_timeout:
        Optional wall-clock guard (seconds) for a sharded build; on expiry
        the build falls back to the in-process encode.
    dtype:
        Expected numeric precision of the served model (``"float32"`` /
        ``"float64"``); ``None`` accepts whatever the model was built with.
        When set, :class:`SearchService` refuses a model of a different
        precision at construction — a deployment guard so a float64 service
        cannot silently restart on float32 weights (snapshots are
        additionally self-validating, see :mod:`repro.serving.persistence`).
    mmap_index:
        When ``True``, :meth:`SearchService.load_index` memory-maps a v2
        snapshot instead of copying it onto the heap (zero-copy read-only
        views into the ``.npy`` sidecars), query workers open the same
        mapping themselves at start instead of receiving pickled encodings,
        and :meth:`SearchService.save_index` defaults to writing the v2
        layout.  Rankings are identical to the copy path; worker-pool RSS
        stops scaling with O(workers × index) because every process shares
        the one page-cache copy.  A v1 snapshot still loads — as an
        in-process copy (the fallback; :attr:`SearchService.mmap_active`
        reports which path is live).  Default ``False`` (copy path).
    tracing:
        When ``True``, :meth:`SearchService.query` opens a trace root for
        every query served without an ambient trace (callers that already
        started one — the HTTP tier — keep their own root): the finished
        span tree lands on :attr:`SearchService.last_trace` and feeds the
        ``REPRO_SLOW_QUERY_MS`` slow-query log.  Rankings are unaffected;
        the instrumented stages cost a context-variable read each when
        tracing is off (the ≤5 % overhead bound is measured in
        ``benchmarks/test_serving_throughput.py``).  Default ``False``.
    fused:
        When ``True`` (default), candidate verification uses the fused
        inference kernels (:mod:`repro.fcm.fastpath`) — preallocated
        NumPy contractions that bypass Tensor-graph allocation.  Scores
        are bitwise identical to the graphed batched path; matcher
        architectures the kernel does not support fall back per call.
        ``False`` forces the graphed path everywhere (debugging aid).
    quantized_prefilter:
        When ``True``, queries first rank all LSH/interval candidates with
        the int8 symmetric-quantized encodings and keep only
        ``k * prefilter_overscan`` for exact float verification — trading
        a bounded recall risk for an order of magnitude less exact
        scoring on large candidate sets.  Default ``False`` (exact).
    prefilter_overscan:
        Overscan multiplier for the quantized pre-filter: exact scoring
        sees ``k * prefilter_overscan`` survivors.  Larger values push
        top-``k`` recall toward 1.0 at higher verification cost;
        ``8`` (default) holds recall ≥ 0.99 on the trained benchmark
        fixture.  Only meaningful with ``quantized_prefilter=True``.
    streaming:
        Knobs of the streaming ingest + subscription path
        (:class:`repro.serving.streaming.StreamingConfig`): window size of
        the segment decomposition, per-subscription event queue bound and
        the coarse-pass overscan used when notifying on ingest.  ``None``
        uses the defaults.
    """

    lsh_config: Optional[LSHConfig] = None
    result_cache_size: int = 128
    num_workers: int = 1
    num_query_shards: int = 1
    query_workers: int = 0
    worker_timeout: Optional[float] = 30.0
    build_timeout: Optional[float] = None
    dtype: Optional[str] = None
    mmap_index: bool = False
    tracing: bool = False
    fused: bool = True
    quantized_prefilter: bool = False
    prefilter_overscan: int = 8
    streaming: Optional[StreamingConfig] = None

    def __post_init__(self) -> None:
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        if self.num_query_shards < 1:
            raise ValueError("num_query_shards must be >= 1")
        if self.query_workers < 0:
            raise ValueError("query_workers must be >= 0")
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive (or None)")
        if self.build_timeout is not None and self.build_timeout <= 0:
            raise ValueError("build_timeout must be positive (or None)")
        if self.prefilter_overscan < 1:
            raise ValueError("prefilter_overscan must be >= 1")
        if self.dtype is not None:
            from ..nn import resolve_dtype

            self.dtype = resolve_dtype(self.dtype).name


@dataclass
class StrategyStats:
    """Accumulated query statistics for one indexing strategy."""

    queries: int = 0
    cache_hits: int = 0
    total_seconds: float = 0.0
    total_candidates: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.queries if self.queries else 0.0

    @property
    def mean_candidates(self) -> float:
        return self.total_candidates / self.queries if self.queries else 0.0


@dataclass
class ServiceStats:
    """Everything the service has done since construction."""

    per_strategy: Dict[str, StrategyStats] = field(
        default_factory=lambda: {s: StrategyStats() for s in INDEXING_STRATEGIES}
    )
    tables_added: int = 0
    tables_removed: int = 0
    invalidations: int = 0
    #: Queries whose verification stage ran on the process-level worker pool.
    worker_queries: int = 0
    #: Times the worker pool failed and verification fell back in-process.
    worker_fallbacks: int = 0
    #: Why queries currently verify in-process instead of on the pool
    #: (``None`` while the pool is usable).  Mirrors
    #: :attr:`SearchService.worker_fallback_reason`.
    worker_fallback_reason: Optional[str] = None
    #: ``"closed"`` when the reason is the deliberate seal set by
    #: :meth:`SearchService.close`, ``"failure"`` for crash-/timeout-induced
    #: retirement, ``None`` when no fallback is in effect — so an operator
    #: (or the ``/metrics`` payload) can tell a drained service from a
    #: broken one at a glance.
    worker_fallback_kind: Optional[str] = None
    #: Rows ingested through :meth:`SearchService.append_rows`.
    rows_appended: int = 0
    #: Ingest batches processed.
    append_batches: int = 0
    #: Window segments (re-)encoded across all ingest batches.
    segments_encoded: int = 0
    #: Subscription events fired across all ingest batches.
    subscription_events: int = 0

    def summary(self) -> Dict[str, Dict[str, float]]:
        """A plain-dict snapshot (JSON-friendly, used by the benchmarks)."""
        return {
            strategy: {
                "queries": stats.queries,
                "cache_hits": stats.cache_hits,
                "mean_seconds": stats.mean_seconds,
                "mean_candidates": stats.mean_candidates,
            }
            for strategy, stats in self.per_strategy.items()
            if stats.queries or stats.cache_hits
        }


class SearchService:
    """Facade over the scorer + index layers for serving chart queries."""

    def __init__(
        self,
        model: FCMModel,
        config: Optional[ServingConfig] = None,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> None:
        self.config = config or ServingConfig()
        model_dtype = model.config.numeric_dtype.name
        if self.config.dtype is not None and self.config.dtype != model_dtype:
            raise ValueError(
                f"ServingConfig expects a {self.config.dtype} model, got "
                f"{model_dtype}; construct the model under the matching "
                f"precision policy (e.g. REPRO_DTYPE={self.config.dtype})"
            )
        self.scorer = FCMScorer(model, extractor=extractor)
        self.scorer.fused = self.config.fused
        self.processor = HybridQueryProcessor(
            self.scorer, lsh_config=self.config.lsh_config
        )
        self.stats = ServiceStats()
        self.streaming = self.config.streaming or StreamingConfig()
        # Standing pattern queries, evaluated against each ingest batch's
        # dirty segments (see repro.serving.streaming).  In-memory serving
        # state: not persisted in snapshots.
        self._subscriptions = SubscriptionEngine(self.scorer, self.streaming)
        self.last_shard_report: Optional[ShardBuildReport] = None
        # Process-level query verification (config.query_workers >= 2): the
        # pool is created lazily on the first query, kept in sync with index
        # mutations by diffing table ids, and retired permanently on the
        # first failure (worker_fallback_reason records why).
        self._query_pool: Optional[QueryWorkerPool] = None
        self._pool_table_ids: set = set()
        # Ids removed since the last pool sync: a re-add under the same id
        # re-encodes the table, so workers must receive the fresh payload
        # even though the id-level diff looks unchanged.
        self._pool_removed_ids: set = set()
        # Set by load_index(..., mmap active): workers open this snapshot
        # themselves instead of receiving the base encodings over the pipe.
        self._mmap_snapshot_path: Optional[PathLike] = None
        # Ids removed since the snapshot was loaded: a freshly started pool
        # preloads *snapshot* content for them, so they must be re-shipped
        # even though _pool_removed_ids was cleared by an earlier sync or
        # pool retirement.  Monotonic on purpose — over-refreshing is just a
        # slightly larger first sync, under-refreshing would serve stale
        # encodings.
        self._mmap_dirty_ids: set = set()
        #: The serialised span tree of the most recent query that ran under a
        #: service-minted trace (``ServingConfig(tracing=True)``); ``None``
        #: until one completes.  HTTP-minted traces live on the HTTP tier.
        self.last_trace: Optional[Dict] = None
        # (chart content hash, k, strategy) -> QueryResult (same content-hash
        # idiom as FCMScorer.prepare_query): equal charts from different
        # objects share entries, and mutating a chart in place changes its
        # key, so a stale result can never be served.
        self._result_cache: "OrderedDict[Tuple[str, int, str], QueryResult]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    # Build + incremental maintenance
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> FCMModel:
        return self.scorer.model

    @property
    def num_tables(self) -> int:
        return len(self.processor.table_ids)

    @property
    def table_ids(self) -> List[str]:
        return self.processor.table_ids

    def build(
        self,
        tables: Iterable[Table],
        num_workers: Optional[int] = None,
    ) -> IndexBuildStats:
        """Encode and index a repository, optionally across worker processes.

        With ``num_workers > 1`` the table encodings are computed by a
        process pool (identical to the single-process cached encodings; see
        :func:`repro.serving.sharding.encode_tables_sharded`) and merged into
        the scorer cache; the interval tree and LSH are then built from the
        merged cache.  Falls back to the in-process encode if the pool
        cannot be used (reported on :attr:`last_shard_report`).
        """
        tables = list(tables)
        workers = self.config.num_workers if num_workers is None else num_workers
        if workers > 1 and len(tables) > 1:
            encoded, report = encode_tables_sharded(
                self.model, tables, num_workers=workers, timeout=self.config.build_timeout
            )
            self.last_shard_report = report
            for item in encoded:
                self.scorer.add_encoded(item)
        # The scorer skips already-encoded tables, so after a sharded merge
        # this only builds the interval tree and LSH.
        stats = self.processor.index_repository(tables)
        self._invalidate()
        _log.info(
            "index_built",
            tables=stats.num_tables,
            workers=workers,
            interval_seconds=stats.interval_seconds,
            lsh_seconds=stats.lsh_seconds,
            sharded=self.last_shard_report is not None
            and self.last_shard_report.used_processes,
        )
        return stats

    def add_tables(self, tables: Iterable[Table]) -> IndexBuildStats:
        """Incrementally index new tables (invalidates the result cache)."""
        tables = list(tables)
        stats = self.processor.add_tables(tables)
        self.stats.tables_added += len(tables)
        self._invalidate()
        _log.info("tables_added", count=len(tables), total=stats.num_tables)
        return stats

    def remove_tables(self, table_ids: Iterable[str]) -> int:
        """Drop tables from every structure (invalidates the result cache)."""
        table_ids = list(table_ids)
        known = set(self.processor.table_ids)
        removed = self.processor.remove_tables(table_ids)
        self.stats.tables_removed += removed
        if removed:
            gone = {t for t in table_ids if t in known}
            self._pool_removed_ids.update(gone)
            self._mmap_dirty_ids.update(gone)
            self._invalidate()
            _log.info("tables_removed", count=removed, total=self.num_tables)
        return removed

    # ------------------------------------------------------------------ #
    # Streaming ingest + subscriptions (repro.serving.streaming)
    # ------------------------------------------------------------------ #
    @property
    def subscriptions(self) -> SubscriptionEngine:
        """The standing-query engine (see :meth:`subscribe` / :meth:`poll`)."""
        return self._subscriptions

    def append_rows(
        self,
        table_id: str,
        rows: Dict[str, Sequence[float]],
        roles: Optional[Dict[str, str]] = None,
    ) -> AppendResult:
        """Append rows to a streaming table, re-encoding only dirty windows.

        The first append for an unknown ``table_id`` creates the stream
        (window size fixed from ``ServingConfig.streaming.segment_rows``);
        later appends must carry the same columns.  Only the window segments
        the batch touches are re-encoded — sealed windows keep their cached
        encodings, interval entries and LSH codes — and the post-append
        state is provably identical to replaying the full row history in one
        batch (``tests/test_streaming.py``).  After the index update, every
        standing subscription is notified against the dirty segments only
        (coarse int8 pass first on large batches) and the result cache is
        invalidated.

        Under ``ServingConfig(tracing=True)`` a trace root is minted per
        ingest batch when no ambient trace is active, mirroring
        :meth:`query`; the tree lands on :attr:`last_trace`.
        """
        if self.config.tracing and current_span() is None:
            with start_trace("append_rows", table_id=table_id) as root:
                result = self._append_impl(table_id, rows, roles)
            self.last_trace = root.to_dict()
            maybe_log_slow_query(self.last_trace)
            return result
        return self._append_impl(table_id, rows, roles)

    def _append_impl(
        self,
        table_id: str,
        rows: Dict[str, Sequence[float]],
        roles: Optional[Dict[str, str]],
    ) -> AppendResult:
        with span("append_rows", table_id=table_id) as sp:
            result = append_stream_rows(
                self.processor,
                table_id,
                rows,
                segment_rows=self.streaming.segment_rows,
                roles=roles,
            )
            if sp is not None:
                sp.attributes["rows"] = result.rows_appended
                sp.attributes["dirty_segments"] = len(result.dirty_segments)
                sp.attributes["segments_total"] = result.segments_total
                sp.attributes["created"] = result.created
        self.stats.rows_appended += result.rows_appended
        self.stats.append_batches += 1
        self.stats.segments_encoded += len(result.dirty_segments)
        if result.created:
            self.stats.tables_added += 1
        # Workers hold the composed parent entry under the parent id: the
        # mutation-after-map dirty-id protocol re-ships it on the next sync
        # (and forces preloaded mmap segment state to refresh).
        self._pool_removed_ids.add(table_id)
        self._mmap_dirty_ids.add(table_id)
        self._invalidate()
        registry = get_registry()
        registry.counter(
            "repro_ingest_rows_total", "Rows ingested via append_rows"
        ).inc(result.rows_appended)
        registry.counter(
            "repro_ingest_batches_total", "Ingest batches processed"
        ).inc()
        registry.histogram(
            "repro_ingest_reencode_fraction",
            "Fraction of a stream's segments re-encoded per ingest batch",
        ).observe(result.reencode_fraction)
        with span("notify", subscriptions=len(self._subscriptions)):
            result.events_fired = self._subscriptions.notify(
                {table_id: result.dirty_segments},
                {table_id: result.total_rows},
            )
        self.stats.subscription_events += result.events_fired
        _log.info(
            "rows_appended",
            table_id=table_id,
            rows=result.rows_appended,
            total_rows=result.total_rows,
            dirty_segments=len(result.dirty_segments),
            segments_total=result.segments_total,
            events=result.events_fired,
        )
        return result

    def subscribe(
        self,
        chart: LineChart,
        k: int = 1,
        threshold: float = 0.0,
        callback=None,
    ) -> str:
        """Register a standing pattern query; returns its subscription id.

        On every subsequent ingest batch the subscription scores that
        batch's dirty segments (coarse pass first when many are dirty) and
        fires up to ``k`` events with exact score ``>= threshold`` into its
        queue (drained by :meth:`poll`) and the optional ``callback``.
        Subscriptions are in-memory: re-subscribe after a snapshot restore.
        """
        return self._subscriptions.subscribe(
            chart, k=k, threshold=threshold, callback=callback
        )

    def unsubscribe(self, subscription_id: str) -> bool:
        """Drop a standing query; returns whether it existed."""
        return self._subscriptions.unsubscribe(subscription_id)

    def poll(
        self, subscription_id: str, max_events: Optional[int] = None
    ) -> List[SubscriptionEvent]:
        """Drain (up to ``max_events``) pending events of one subscription."""
        return self._subscriptions.poll(subscription_id, max_events=max_events)

    # ------------------------------------------------------------------ #
    # Process-level query verification (QueryWorkerPool)
    # ------------------------------------------------------------------ #
    @property
    def query_pool(self) -> Optional[QueryWorkerPool]:
        """The live worker pool, or ``None`` (not configured / not yet
        started / retired after a failure — see :attr:`worker_fallback_reason`)."""
        return self._query_pool

    @property
    def worker_fallback_reason(self) -> Optional[str]:
        """Why queries verify in-process instead of on the pool (sticky).

        ``None`` while the pool is usable.  Stored on :attr:`stats` together
        with :attr:`ServiceStats.worker_fallback_kind`, which distinguishes
        the deliberate :meth:`close` seal (``"closed"``) from crash-induced
        retirement (``"failure"``).
        """
        return self.stats.worker_fallback_reason

    @worker_fallback_reason.setter
    def worker_fallback_reason(self, reason: Optional[str]) -> None:
        self.stats.worker_fallback_reason = reason
        if reason is None:
            self.stats.worker_fallback_kind = None
        elif reason == CLOSED_FALLBACK_REASON:
            self.stats.worker_fallback_kind = "closed"
        else:
            self.stats.worker_fallback_kind = "failure"

    @property
    def mmap_active(self) -> bool:
        """``True`` when this service serves a memory-mapped v2 snapshot.

        Set by :meth:`load_index` under ``ServingConfig(mmap_index=True)``
        on a v2 snapshot; ``False`` for built-in-process indexes, copy-path
        loads, and v1 snapshots (which fall back to the copy path).
        """
        return self._mmap_snapshot_path is not None

    def _ensure_query_pool(self) -> Optional[QueryWorkerPool]:
        if self.config.query_workers < 2 or self.worker_fallback_reason is not None:
            return None
        if self._query_pool is None:
            try:
                pool = QueryWorkerPool(
                    self.model,
                    self.config.query_workers,
                    start_timeout=self.config.worker_timeout,
                    mmap_snapshot=self._mmap_snapshot_path,
                )
                pool.start()
            except Exception as exc:  # degrade, never fail the query
                self._retire_query_pool(f"{type(exc).__name__}: {exc}")
                return None
            self._query_pool = pool
            # Workers report what they mapped from the snapshot (exactly,
            # even if segments landed between our load and their start);
            # that is the sync baseline.  Anything mutated since the load
            # may be stale in the mapping and is queued for a re-ship.
            self._pool_table_ids = set(pool.preloaded_table_ids)
            self._pool_removed_ids |= self._mmap_dirty_ids & self._pool_table_ids
        return self._query_pool

    def _retire_query_pool(self, reason: str) -> None:
        self.worker_fallback_reason = reason
        self.stats.worker_fallbacks += 1
        _log.info("worker_pool_retired", reason=reason, kind="failure")
        if self._query_pool is not None:
            self._query_pool.close()
            self._query_pool = None
        self._pool_table_ids = set()
        self._pool_removed_ids = set()

    def reset_query_pool(self) -> None:
        """Forget a recorded pool failure so the next query retries the pool.

        The fallback is sticky by design — a broken pool should not add a
        spawn attempt to every query's latency — so an operator (or a test)
        that has fixed the underlying condition opts back in explicitly.
        This is also the only way to re-arm a service after
        :meth:`close` (the closed state is just another sticky reason).
        """
        self.worker_fallback_reason = None

    def _sync_query_pool(self, pool: QueryWorkerPool) -> None:
        """Ship the table-cache diff since the last sync to every worker.

        The diff is content-aware, not just id-aware: a table removed and
        re-added under the same id was re-encoded by the parent, so its id
        lands in ``_pool_removed_ids`` and the fresh payload is re-shipped
        (a worker-side ``add_encoded`` overwrites the stale entry).
        """
        current = set(self.processor.table_ids)
        refresh = current & self._pool_table_ids & self._pool_removed_ids
        added = sorted((current - self._pool_table_ids) | refresh)
        evicted = sorted(self._pool_table_ids - current)
        if added or evicted:
            pool.sync(
                [self.scorer.encoded_table(table_id) for table_id in added],
                evicted,
                timeout=self.config.worker_timeout,
            )
        self._pool_table_ids = current
        self._pool_removed_ids.clear()

    def _verify_with_workers(self, chart_input, ordered_ids, num_shards, fused=None):
        """Verification hook handed to :meth:`HybridQueryProcessor.query`.

        Returns the worker-pool scores, or ``None`` after retiring the pool
        on any failure (the processor then verifies in-process — the query
        always succeeds).  ``fused`` overrides the workers' fused-kernel
        default for this query (each worker scorer starts with
        ``ServingConfig.fused``).
        """
        pool = self._ensure_query_pool()
        if pool is None:
            return None
        try:
            self._sync_query_pool(pool)
            shards = split_shards(
                ordered_ids, num_shards if num_shards > 1 else pool.num_workers
            )
            with span(
                "scatter_gather", shards=len(shards), workers=pool.num_workers
            ):
                scores = pool.score(
                    chart_input,
                    shards,
                    timeout=self.config.worker_timeout,
                    fused=self.config.fused if fused is None else fused,
                )
        except Exception as exc:
            self._retire_query_pool(f"{type(exc).__name__}: {exc}")
            return None
        self.stats.worker_queries += 1
        return scores

    def close(self) -> None:
        """Release the query worker pool and seal the service against respawns.

        Idempotent and safe without a pool.  Closing does **not** stop the
        service from answering: subsequent queries are served in-process —
        but the closed state is explicit, recorded as a sticky fallback
        reason (:data:`CLOSED_FALLBACK_REASON`), so a query arriving after
        ``close()`` (or after the context manager exits) can never silently
        respawn a whole worker pool and leak processes.
        :meth:`reset_query_pool` is the one way to re-arm the pool on a
        service being brought back into use.
        """
        if self._query_pool is not None:
            self._query_pool.close()
            self._query_pool = None
        self._pool_table_ids = set()
        self._pool_removed_ids = set()
        if self.config.query_workers >= 2 and self.worker_fallback_reason is None:
            # Not counted in stats.worker_fallbacks: nothing failed.
            self.worker_fallback_reason = CLOSED_FALLBACK_REASON
            _log.info("service_closed", kind="closed")

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Query serving
    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        if self._result_cache:
            self.stats.invalidations += 1
        self._result_cache.clear()

    def query(
        self,
        chart: LineChart,
        k: int,
        strategy: str = "hybrid",
        fused: Optional[bool] = None,
    ) -> QueryResult:
        """Top-``k`` search with result caching and per-strategy statistics.

        Repeated queries for the same chart *content* (unmutated index) are
        served from an LRU cache — a re-rendered but pixel-identical chart
        hits the same entry; any :meth:`add_tables` / :meth:`remove_tables`
        / :meth:`build` call invalidates the cache.

        With ``ServingConfig(query_workers=N)`` the verification stage runs
        on the persistent process pool (identical scores; see
        :mod:`repro.serving.workers`); a pool failure silently re-verifies
        in-process and retires the pool.

        With ``ServingConfig(tracing=True)`` a trace root is minted here
        when no ambient trace is active (the HTTP tier mints its own at the
        boundary); the finished tree lands on :attr:`last_trace` and, past
        ``REPRO_SLOW_QUERY_MS``, in the slow-query log.

        ``fused`` overrides ``ServingConfig.fused`` for this call only
        (``None`` follows the config).  Fused scores are bitwise identical
        to the graphed path, so the override never changes the ranking and
        the result cache is shared between both paths.

        With ``ServingConfig(quantized_prefilter=True)`` the candidate set
        is first ranked by the int8 quantized encodings and only the top
        ``k * prefilter_overscan`` survive to exact verification
        (:attr:`QueryResult.prefiltered` reports the survivor count).
        """
        if self.config.tracing and current_span() is None:
            with start_trace("query", k=int(k), strategy=strategy) as root:
                result = self._query_impl(chart, k, strategy, fused)
            self.last_trace = root.to_dict()
            maybe_log_slow_query(self.last_trace)
            return result
        return self._query_impl(chart, k, strategy, fused)

    def _query_impl(
        self,
        chart: LineChart,
        k: int,
        strategy: str,
        fused: Optional[bool] = None,
    ) -> QueryResult:
        key = (chart.fingerprint(), int(k), strategy)
        with span("cache") as sp:
            hit = self._result_cache.get(key)
            if sp is not None:
                sp.attributes["hit"] = hit is not None
        if hit is not None:
            self._result_cache.move_to_end(key)
            self.stats.per_strategy[strategy].cache_hits += 1
            return hit

        verifier = None
        if self.config.query_workers >= 2 and self.worker_fallback_reason is None:

            def verifier(chart_input, ordered_ids, num_shards):
                return self._verify_with_workers(
                    chart_input, ordered_ids, num_shards, fused=fused
                )

        prefilter_keep = (
            int(k) * self.config.prefilter_overscan
            if self.config.quantized_prefilter
            else None
        )
        result = self.processor.query(
            chart,
            k,
            strategy=strategy,
            num_verify_shards=self.config.num_query_shards,
            verifier=verifier,
            prefilter_keep=prefilter_keep,
            fused=fused,
        )

        stats = self.stats.per_strategy[strategy]
        stats.queries += 1
        stats.total_seconds += result.seconds
        stats.total_candidates += result.candidates

        if self.config.result_cache_size > 0:
            self._result_cache[key] = result
            while len(self._result_cache) > self.config.result_cache_size:
                self._result_cache.popitem(last=False)
        return result

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_index(
        self,
        path: PathLike,
        append: bool = False,
        layout: Optional[str] = None,
    ) -> "PathLike":
        """Snapshot cached encodings + LSH codes + interval data to ``path``.

        ``append=True`` writes only the delta since the base snapshot (plus
        earlier segments) as a numbered append-only segment next to it —
        O(delta) instead of O(index), the right call after a small
        :meth:`add_tables` / :meth:`remove_tables` batch.  ``layout``
        selects the base format for a full save (``"v1"`` single archive,
        ``"v2"`` memory-mappable sidecars); ``None`` follows
        ``ServingConfig.mmap_index`` — a service configured for mmap
        serving writes mappable snapshots by default.  Returns the path
        written (the base for a full save or an empty delta, the new segment
        file otherwise).  See :func:`repro.serving.persistence.save_processor`.
        """
        if layout is None and not append and self.config.mmap_index:
            layout = "v2"
        return save_processor(self.processor, path, append=append, layout=layout)

    @staticmethod
    def compact_snapshot(path: PathLike, layout: Optional[str] = None) -> "PathLike":
        """Fold a snapshot's append-only segments back into its base archive.

        Convenience re-export of
        :func:`repro.serving.persistence.compact_snapshot` — run it when a
        snapshot has accumulated enough segments that replay cost (or file
        count) matters; loading is equivalent before and after.
        ``layout="v2"`` additionally migrates the base to the
        memory-mappable sidecar layout (``None`` keeps the current one).
        """
        return compact_snapshot(path, layout=layout)

    @classmethod
    def load_index(
        cls,
        model: FCMModel,
        path: PathLike,
        config: Optional[ServingConfig] = None,
        extractor: Optional[VisualElementExtractor] = None,
    ) -> "SearchService":
        """Restore a service from a snapshot without re-encoding any table.

        The snapshot's LSH configuration wins over ``config.lsh_config`` (the
        codes were produced under it); everything else of ``config`` applies.
        Under ``ServingConfig(mmap_index=True)`` a v2 snapshot is
        memory-mapped (zero-copy views; query workers open the same mapping
        at start) — a v1 snapshot falls back to the copy path, reported by
        :attr:`mmap_active`.
        """
        service = cls(model, config=config, extractor=extractor)
        use_mmap = (
            service.config.mmap_index
            and snapshot_layout(path) == SNAPSHOT_VERSION_V2
        )
        processor = load_processor(model, path, scorer=service.scorer, mmap=use_mmap)
        service.processor = processor
        if use_mmap:
            service._mmap_snapshot_path = path
        return service
