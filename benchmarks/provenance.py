"""Provenance stamp shared by every ``BENCH_*.json`` writer.

Benchmark numbers without their environment are not comparable: a sharded
build that "lost" on a 1-CPU container, a float32 run scored against a
float64 baseline, or a number from three commits ago all look like
regressions unless the JSON says where they came from.  Every benchmark
that writes a ``BENCH_*.json`` attaches :func:`provenance_stamp` under a
``"provenance"`` key, so the trajectory files are self-describing.

The stamp records:

* ``host`` / ``platform`` — where the run happened;
* ``os_cpu_count`` and ``single_cpu`` — whether multi-process numbers had
  any chance of winning, plus the standard caveat string when they did not
  (:data:`SINGLE_CPU_CAVEAT`);
* ``dtype`` — the active precision policy (``REPRO_DTYPE`` resolved through
  :func:`repro.nn.dtype.default_dtype`);
* ``git_rev`` — the commit the numbers were measured at (``None`` outside a
  work tree or when ``git`` is unavailable: the stamp never fails a run);
* ``recorded_at`` — UTC wall-clock of the stamp.

Stdlib + the repo only; safe to import from any benchmark or the load
generator.
"""

from __future__ import annotations

import datetime
import os
import platform
import socket
import subprocess
from pathlib import Path
from typing import Dict, Optional

from repro.nn.dtype import default_dtype

#: Attached to multi-process sections recorded on a host where process
#: parallelism cannot win; also reused by the stamp itself.
SINGLE_CPU_CAVEAT = (
    "recorded on a 1-CPU host: process-level numbers measure overhead "
    "only and say nothing about multi-core speedups"
)

_REPO_ROOT = Path(__file__).resolve().parent.parent


def git_revision(repo_root: Optional[Path] = None) -> Optional[str]:
    """The current commit hash, or ``None`` when it cannot be determined."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root or _REPO_ROOT),
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    rev = result.stdout.strip()
    return rev or None


def provenance_stamp() -> Dict:
    """The environment record every ``BENCH_*.json`` carries.

    Pure data, JSON-serialisable, and never raises: benchmarks must not
    fail because the host lacks ``git`` or a resolvable hostname.
    """
    try:
        host = socket.gethostname()
    except OSError:  # pragma: no cover - hostname always resolves in CI
        host = None
    single_cpu = (os.cpu_count() or 1) <= 1
    return {
        "host": host,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "os_cpu_count": os.cpu_count(),
        "single_cpu": single_cpu,
        "caveat": SINGLE_CPU_CAVEAT if single_cpu else None,
        "dtype": str(default_dtype()),
        "git_rev": git_revision(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def stamp_results(results: Dict) -> Dict:
    """Attach the provenance stamp to a results dict (in place) and return it."""
    results["provenance"] = provenance_stamp()
    return results
