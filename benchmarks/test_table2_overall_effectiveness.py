"""Table II — overall effectiveness, and the with/without-aggregation split.

Paper shape: FCM wins every section on both prec@50 and ndcg@50; CML is the
best baseline; every method drops on DA-based queries, FCM the least.  The
scaled run should preserve those orderings (FCM above the baselines overall,
and FCM's with-DA drop smaller than CML's).
"""

from __future__ import annotations

from repro.bench import format_method_comparison, paper_numbers, run_table2

METHOD_ORDER = ("CML", "DE-LN", "Opt-LN", "Qetch*", "FCM")


def test_table2_overall_effectiveness(benchmark, bench_data, all_methods, record_result):
    result = benchmark.pedantic(
        run_table2, args=(all_methods, bench_data), rounds=1, iterations=1
    )

    text = format_method_comparison(
        result,
        METHOD_ORDER,
        section_order=("overall", "with_da", "without_da"),
        title="Table II — effectiveness for all queries, with/without DA (measured)",
    )
    paper = format_method_comparison(
        paper_numbers.TABLE2,
        METHOD_ORDER,
        section_order=("overall", "with_da", "without_da"),
        title="Table II — paper-reported values (prec@50 / ndcg@50)",
    )
    record_result("table2", text + "\n\n" + paper)

    overall = result["overall"]
    # Sanity: every method produced valid metrics over every query.
    for name in METHOD_ORDER:
        assert 0.0 <= overall[name]["prec"] <= 1.0
        assert overall[name]["queries"] == len(bench_data.queries)
    # Paper shape: FCM is the strongest method overall.  At this reproduction
    # scale the trained model can land within noise of the best baseline, so
    # the hard requirement is "top two"; the printed table records the exact
    # ordering for EXPERIMENTS.md.
    ranking = sorted(METHOD_ORDER, key=lambda m: overall[m]["prec"], reverse=True)
    assert "FCM" in ranking[:2], f"FCM not in the top two overall: {overall}"
