"""Table VIII — indexing strategies: linear scan, interval tree, LSH, hybrid.

Paper shape: the interval tree halves the query time with *identical*
effectiveness (it never prunes true candidates); LSH prunes far more for a
small effectiveness drop; the hybrid of the two is the fastest.  The measured
run checks the same structure: candidate counts shrink monotonically and the
interval path matches the linear scan exactly.
"""

from __future__ import annotations

from repro.bench import format_table, paper_numbers, run_table8
from repro.index import LSHConfig

STRATEGIES = ("none", "interval", "lsh", "hybrid")


def test_table8_indexing_strategies(benchmark, bench_data, fcm_methods, record_result):
    result = benchmark.pedantic(
        run_table8,
        args=(fcm_methods["FCM"], bench_data),
        kwargs={"lsh_config": LSHConfig(num_bits=10, hamming_radius=1)},
        rounds=1,
        iterations=1,
    )

    headers = ["strategy", "prec", "ndcg", "query_seconds", "mean_candidates"]
    rows = [
        [s, result[s]["prec"], result[s]["ndcg"], result[s]["query_seconds"], result[s]["mean_candidates"]]
        for s in STRATEGIES
    ]
    paper_rows = [
        [s, paper_numbers.TABLE8[s]["prec"], paper_numbers.TABLE8[s]["ndcg"],
         paper_numbers.TABLE8[s]["query_seconds"], None]
        for s in STRATEGIES
    ]
    text = format_table(headers, rows, title="Table VIII — indexing strategies (measured)")
    paper = format_table(headers, paper_rows, title="Table VIII — paper-reported values")
    build = result["_build"]
    build_text = (
        f"index build: interval={build['interval_seconds']:.3f}s, "
        f"lsh={build['lsh_seconds']:.3f}s over {int(build['num_tables'])} tables"
    )
    record_result("table8", text + "\n" + build_text + "\n\n" + paper)

    # The interval tree never loses candidates, so its effectiveness equals
    # the linear scan's exactly.
    assert result["interval"]["prec"] == result["none"]["prec"]
    assert result["interval"]["ndcg"] == result["none"]["ndcg"]
    # Candidate counts shrink (or stay equal) as filters are added.
    assert result["interval"]["mean_candidates"] <= result["none"]["mean_candidates"]
    assert result["hybrid"]["mean_candidates"] <= result["interval"]["mean_candidates"] + 1e-9
    assert result["hybrid"]["mean_candidates"] <= result["lsh"]["mean_candidates"] + 1e-9
