"""Single-dtype probe for the paper-scale feasibility benchmark.

Run as a subprocess (one per precision) by ``test_paper_scale.py`` so each
dtype gets its own honest peak-RSS measurement::

    REPRO_DTYPE=float32 python benchmarks/paper_scale_probe.py --scale smoke

Prints one JSON object to stdout: per-stage timings and byte counts for the
quickstart-dims configuration (training steps/sec) and the paper-scale
configuration (``paper_scale_config()``: 768-dim, 12 layers — construct →
index → query → one training step), plus the process peak RSS.  Stages are
attempted in order and failures are recorded, not raised — the point is to
report *how far* the paper-scale configuration gets on this machine.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.charts import render_chart_for_table  # noqa: E402
from repro.data import CorpusConfig, filter_line_chart_records, generate_corpus  # noqa: E402
from repro.fcm import (  # noqa: E402
    FCMConfig,
    FCMModel,
    FCMScorer,
    FCMTrainer,
    TrainerConfig,
    build_training_data,
    paper_scale_config,
    relevance_matrix,
)
from repro.nn import default_dtype  # noqa: E402


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _encoded_cache_bytes(scorer: FCMScorer) -> int:
    total = 0
    for table_id in scorer.indexed_table_ids:
        encoded = scorer.encoded_table(table_id)
        total += encoded.representations.nbytes + encoded.column_embeddings.nbytes
    return total


def _quickstart_stats(records) -> dict:
    """Training throughput at the quickstart dims (the default FCMConfig)."""
    config = FCMConfig()
    data = build_training_data(records, config, aggregated_fraction=0.5, seed=0)
    relevance, order = relevance_matrix(data.examples, data.tables, max_points=24)
    model = FCMModel(config)
    trainer = FCMTrainer(
        model, TrainerConfig(epochs=1, batch_size=4, num_negatives=2)
    )
    start = time.perf_counter()
    trainer.train(data, relevance=relevance, table_order=order)
    seconds = time.perf_counter() - start
    num_batches = -(-len(data.examples) // 4)
    return {
        "embed_dim": config.embed_dim,
        "num_layers": config.num_layers,
        "param_bytes": model.parameter_nbytes(),
        "num_examples": len(data.examples),
        "epoch_seconds": seconds,
        "steps_per_sec": num_batches / seconds if seconds > 0 else None,
    }


def _paper_scale_stats(records, num_index_tables: int) -> dict:
    """How far the 768-dim, 12-layer configuration gets, stage by stage."""
    stats: dict = {"stages": {}}

    def stage(name, fn):
        start = time.perf_counter()
        try:
            result = fn()
        except MemoryError:
            stats["stages"][name] = {"status": "out-of-memory"}
            return None
        except Exception as exc:  # record, don't crash the probe
            stats["stages"][name] = {
                "status": f"failed: {type(exc).__name__}: {exc}"
            }
            return None
        stats["stages"][name] = {
            "status": "ok",
            "seconds": time.perf_counter() - start,
        }
        return result

    config = paper_scale_config()
    stats["embed_dim"] = config.embed_dim
    stats["num_layers"] = config.num_layers

    model = stage("construct", lambda: FCMModel(config))
    if model is None:
        return stats
    stats["num_parameters"] = model.num_parameters()
    stats["param_bytes"] = model.parameter_nbytes()

    scorer = FCMScorer(model)
    tables = [record.table for record in records[:num_index_tables]]

    def build_index():
        scorer.index_repository(tables)
        return scorer

    if stage("index", build_index) is not None:
        stats["num_indexed_tables"] = len(scorer.indexed_table_ids)
        stats["encoded_cache_bytes"] = _encoded_cache_bytes(scorer)
        stats["stages"]["index"]["seconds_per_table"] = (
            stats["stages"]["index"]["seconds"] / max(len(tables), 1)
        )

        record = records[0]
        chart = render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=config.chart_spec,
        )
        stage("query", lambda: scorer.score_chart_batch(chart))

    def one_training_step():
        data = build_training_data(records[:2], config, aggregated_fraction=0.0, seed=0)
        relevance, order = relevance_matrix(data.examples, data.tables, max_points=16)
        trainer = FCMTrainer(
            model, TrainerConfig(epochs=1, batch_size=2, num_negatives=1)
        )
        return trainer.train(data, relevance=relevance, table_order=order)

    if stage("train_step", one_training_step) is not None:
        stats["steps_per_sec_train"] = 1.0 / stats["stages"]["train_step"]["seconds"]
    return stats


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="default", choices=("default", "smoke"))
    args = parser.parse_args()
    smoke = args.scale == "smoke"

    records = filter_line_chart_records(
        generate_corpus(
            CorpusConfig(
                num_records=6 if smoke else 10, min_rows=60, max_rows=120, seed=11
            )
        )
    )
    report = {
        "dtype": np.dtype(default_dtype()).name,
        "scale": args.scale,
        "quickstart": _quickstart_stats(records[: 4 if smoke else 8]),
        "paper_scale": _paper_scale_stats(records, 2 if smoke else 4),
    }
    report["peak_rss_mb"] = _peak_rss_mb()
    json.dump(report, sys.stdout)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
