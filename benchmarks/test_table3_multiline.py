"""Table III — effectiveness versus the number of lines M in the query chart.

Paper shape: every method degrades as M grows; FCM stays ahead in every
bucket and its relative margin over CML widens with M.
"""

from __future__ import annotations

import math

from repro.bench import format_method_comparison, paper_numbers, run_table3
from repro.bench.experiments import LINE_BUCKETS

METHOD_ORDER = ("CML", "DE-LN", "Opt-LN", "Qetch*", "FCM")


def test_table3_multiline_queries(benchmark, bench_data, all_methods, record_result):
    result = benchmark.pedantic(
        run_table3, args=(all_methods, bench_data), rounds=1, iterations=1
    )

    text = format_method_comparison(
        result,
        METHOD_ORDER,
        section_order=LINE_BUCKETS,
        title="Table III — effectiveness vs number of lines M (measured)",
    )
    paper = format_method_comparison(
        paper_numbers.TABLE3,
        METHOD_ORDER,
        section_order=LINE_BUCKETS,
        title="Table III — paper-reported values",
    )
    record_result("table3", text + "\n\n" + paper)

    # Every populated bucket yields valid metrics for every method.
    for bucket in LINE_BUCKETS:
        for name in METHOD_ORDER:
            summary = result[bucket][name]
            if summary["queries"] == 0:
                continue
            assert 0.0 <= summary["prec"] <= 1.0
            assert 0.0 <= summary["ndcg"] <= 1.0

    # Paper shape: FCM leads in every bucket.  At this reproduction scale the
    # requirement is relaxed to "top two in at least half the populated
    # buckets"; the printed tables record the exact per-bucket ordering.
    populated = [b for b in LINE_BUCKETS if result[b]["FCM"]["queries"] > 0]
    top_two = 0
    for b in populated:
        ranking = sorted(METHOD_ORDER, key=lambda m: result[b][m]["prec"], reverse=True)
        if "FCM" in ranking[:2]:
            top_two += 1
    assert top_two >= math.ceil(len(populated) / 2), (
        f"FCM in the top two of only {top_two}/{len(populated)} line-count buckets"
    )
