"""Paper-scale feasibility: float32 vs float64 memory and throughput.

The ROADMAP's "paper-scale config feasibility" item: with the precision
policy in place (:mod:`repro.nn.dtype`), measure how far
``paper_scale_config()`` (768-dim, 12 layers) gets on this CPU and what the
float32 policy buys at quickstart and paper-scale dims.

One probe subprocess runs per precision (``paper_scale_probe.py`` with
``REPRO_DTYPE`` set) so each gets its own honest peak-RSS reading on this
machine; the merged numbers land in ``BENCH_paper_scale.json`` at the
repository root and ``benchmarks/results/paper_scale.txt``.

The asserted contract is the structural one — float32 cuts the paper-scale
parameter and encoded-cache footprint by ≥ 1.5x (it is exactly 2x by
construction; the measurement keeps the number honest) — while wall-clock
throughput is recorded without a threshold (1-CPU container timers are
noisy; see ``REPRO_SKIP_PERF_TESTS`` elsewhere).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_paper_scale.json"
PROBE = Path(__file__).resolve().parent / "paper_scale_probe.py"

from provenance import stamp_results  # noqa: E402

#: Per-probe wall-clock guard.
PROBE_TIMEOUT_SECONDS = 1200.0


def _scale() -> str:
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke":
        return "smoke"
    return "default"


def _run_probe(dtype: str, scale: str) -> dict:
    env = dict(os.environ, REPRO_DTYPE=dtype)
    env.pop("PYTHONPATH", None)  # the probe inserts src/ itself
    out = subprocess.run(
        [sys.executable, str(PROBE), "--scale", scale],
        capture_output=True,
        text=True,
        env=env,
        timeout=PROBE_TIMEOUT_SECONDS,
        cwd=REPO_ROOT,
    )
    assert out.returncode == 0, f"{dtype} probe failed:\n{out.stderr[-2000:]}"
    return json.loads(out.stdout.splitlines()[-1])


def _ratio(num, den):
    if not num or not den:
        return None
    return num / den


def test_paper_scale_feasibility(record_result):
    scale = _scale()
    per_dtype = {dtype: _run_probe(dtype, scale) for dtype in ("float64", "float32")}

    f64, f32 = per_dtype["float64"], per_dtype["float32"]
    reduction = {
        "paper_scale_param_bytes": _ratio(
            f64["paper_scale"].get("param_bytes"), f32["paper_scale"].get("param_bytes")
        ),
        "paper_scale_encoded_cache_bytes": _ratio(
            f64["paper_scale"].get("encoded_cache_bytes"),
            f32["paper_scale"].get("encoded_cache_bytes"),
        ),
        "peak_rss_mb": _ratio(f64.get("peak_rss_mb"), f32.get("peak_rss_mb")),
        "quickstart_param_bytes": _ratio(
            f64["quickstart"]["param_bytes"], f32["quickstart"]["param_bytes"]
        ),
    }
    report = {
        "benchmark": "paper_scale_feasibility",
        "scale": scale,
        "num_cpus": multiprocessing.cpu_count(),
        "per_dtype": per_dtype,
        "float64_over_float32": reduction,
    }
    BENCH_JSON.write_text(json.dumps(stamp_results(report), indent=2) + "\n")

    lines = [
        "Paper-scale feasibility (paper_scale_config: 768-dim, 12 layers)",
        f"  scale={scale}  cpus={report['num_cpus']}",
    ]
    for dtype in ("float64", "float32"):
        probe = per_dtype[dtype]
        ps = probe["paper_scale"]
        stages = ", ".join(
            f"{name}={info['status']}"
            + (f" {info['seconds']:.2f}s" if info.get("seconds") is not None else "")
            for name, info in ps["stages"].items()
        )
        lines.append(
            f"  {dtype}: params={ps.get('param_bytes', 0) / 1e6:.1f}MB "
            f"cache={ps.get('encoded_cache_bytes', 0) / 1e6:.2f}MB "
            f"peak_rss={probe['peak_rss_mb']:.0f}MB "
            f"quickstart={probe['quickstart']['steps_per_sec']:.2f} steps/s"
        )
        lines.append(f"    stages: {stages}")
    lines.append(
        "  float64/float32: "
        + ", ".join(
            f"{k}={v:.2f}x" for k, v in reduction.items() if v is not None
        )
    )
    record_result("paper_scale", "\n".join(lines))

    # Every stage the float64 run reaches, float32 must reach too.
    for name, info in f64["paper_scale"]["stages"].items():
        if info["status"] == "ok":
            assert f32["paper_scale"]["stages"][name]["status"] == "ok", name
    # The acceptance contract: >= 1.5x smaller at paper-scale dims.
    assert reduction["paper_scale_param_bytes"] is not None
    assert reduction["paper_scale_param_bytes"] >= 1.5
    if reduction["paper_scale_encoded_cache_bytes"] is not None:
        assert reduction["paper_scale_encoded_cache_bytes"] >= 1.5
