"""Table I — statistical properties of the benchmark.

Paper: 200 queries / 10,161 repository tables bucketed by the number of lines
M (1, 2-4, 5-7, >7), with single-line charts the largest bucket.  The scaled
benchmark keeps the same bucket structure and proportions.
"""

from __future__ import annotations

from repro.bench import format_table, run_table1


def test_table1_benchmark_statistics(benchmark, bench_data, record_result):
    stats = benchmark.pedantic(run_table1, args=(bench_data,), rounds=1, iterations=1)

    headers = ["set", "total", "1", "2-4", "5-7", ">7"]
    rows = [
        [name, stats[name]["total"], stats[name]["1"], stats[name]["2-4"],
         stats[name]["5-7"], stats[name][">7"]]
        for name in ("queries", "repository")
    ]
    record_result("table1", format_table(headers, rows, title="Table I — benchmark statistics (scaled)"))

    assert stats["queries"]["total"] == len(bench_data.queries)
    assert stats["repository"]["total"] == len(bench_data.repository)
    bucket_sum = sum(v for k, v in stats["queries"].items() if k != "total")
    assert bucket_sum == stats["queries"]["total"]
