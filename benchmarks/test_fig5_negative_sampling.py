"""Figure 5 — negative-sampling strategy versus convergence and effectiveness.

Paper shape: semi-hard negatives converge fastest and reach the best final
prec@50; random is a little behind; hard and easy negatives train poorly.
The scaled run trains one short-budget FCM per strategy and records the
per-epoch validation prec@k curve.
"""

from __future__ import annotations

from repro.bench import format_curves, paper_numbers, run_fig5

STRATEGIES = ("semi-hard", "random", "easy", "hard")


def test_fig5_negative_sampling_convergence(benchmark, bench_data, scale, record_result):
    curves = benchmark.pedantic(
        run_fig5,
        args=(bench_data, scale),
        kwargs={"strategies": STRATEGIES},
        rounds=1,
        iterations=1,
    )

    text = format_curves(curves, title="Figure 5 — prec@k per epoch by negative-sampling strategy (measured)")
    paper_text = "\n".join(
        f"paper: {name}: converges at epoch {paper_numbers.FIGURE5_CONVERGENCE_EPOCHS[name]}, "
        f"final prec@50 ≈ {paper_numbers.FIGURE5_FINAL_PREC[name]:.3f}"
        for name in STRATEGIES
    )
    record_result("fig5", text + "\n\n" + paper_text)

    assert set(curves) == set(STRATEGIES)
    for series in curves.values():
        assert len(series) == scale.sweep_epochs
        assert all(0.0 <= value <= 1.0 for value in series)
