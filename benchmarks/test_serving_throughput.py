"""Serving-layer throughput: adds, warm queries, sharded builds, workers, snapshots.

Six costs of running the hybrid index as a *service* rather than the
paper's one-shot batch build (Table VIII measures only the latter):

* **incremental add vs. full rebuild** — appending a handful of tables to a
  live :class:`~repro.serving.SearchService` against re-indexing the whole
  repository from scratch;
* **cold vs. warm query latency** — the LRU result cache on repeated
  queries;
* **single-process vs. sharded build** — fanning table encoding out across
  worker processes;
* **worker-pool vs. in-process query verification** — routing candidate
  scoring through the persistent process pool
  (``ServingConfig(query_workers=N)``), with a ranking-parity check;
* **append-only snapshot vs. full rewrite** — persisting a 1-table delta as
  a segment against rewriting the whole ``.npz`` archive;
* **tracing overhead on the warm query path** — the cost of the
  observability layer (``repro.obs``) both disabled (every instrumented
  call site still executes one no-op ``span()`` check) and enabled
  (recording a span tree per query), with a ranking-parity check between
  the traced and untraced services;
* **fused vs. graphed exhaustive verification** — the inference fast path
  (:mod:`repro.fcm.fastpath`, preallocated fused kernels) against the
  Tensor-graph batched matcher on a full-repository ``strategy="none"``
  scan, with a score-parity check (the kernels replicate the graphed op
  order exactly).

The multi-process numbers (sharded build, worker pool) only *win* on
multi-core hosts; ``os.cpu_count()`` and a ``single_cpu`` flag are recorded
in the JSON — and a caveat string attached to those sections — so a 1-CPU
container run is never misread as a multi-core result.

Results land in ``BENCH_serving.json`` at the repository root (the serving
perf trajectory) and ``benchmarks/results/serving_throughput.txt``.  An
*untrained* model is used throughout: every measured path is
weight-independent, and skipping training keeps the target minutes-free.

Speed assertions (incremental faster than rebuild, warm faster than cold,
append cheaper than rewrite) are skipped under ``REPRO_SKIP_PERF_TESTS=1``;
the numbers are recorded either way.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.charts import render_chart_for_table
from repro.data import CorpusConfig, filter_line_chart_records, generate_corpus
from repro.fcm import FCMConfig, FCMModel
from repro.index import LSHConfig
from repro.obs import span
from repro.serving import SearchService, ServingConfig, snapshot_segments

from provenance import stamp_results

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_serving.json"

#: Wall-clock guard for the multi-process build (falls back in-process).
SHARD_TIMEOUT_SECONDS = 600.0


def _skip_perf_assertions() -> bool:
    return os.environ.get("REPRO_SKIP_PERF_TESTS", "").lower() in ("1", "true", "yes")


def _serving_scale() -> dict:
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke":
        return {"name": "smoke", "num_records": 40, "num_queries": 3, "num_added": 4}
    return {"name": "default", "num_records": 120, "num_queries": 5, "num_added": 6}


def _build_service(model, tables, num_workers=1):
    service = SearchService(
        model,
        ServingConfig(
            lsh_config=LSHConfig(num_bits=10, hamming_radius=1),
            build_timeout=SHARD_TIMEOUT_SECONDS,
        ),
    )
    service.build(tables, num_workers=num_workers)
    return service


def test_serving_throughput(record_result):
    scale = _serving_scale()
    records = filter_line_chart_records(
        generate_corpus(
            CorpusConfig(
                num_records=scale["num_records"], min_rows=100, max_rows=200, seed=21
            )
        )
    )
    tables = [record.table for record in records]
    # Hold one table out of every build: the snapshot section appends it as
    # a 1-table delta against a base that has never seen it.
    tables, held_out = tables[:-1], tables[-1]
    # The default (32-dim, 2-layer) configuration: large enough that encode
    # time dominates process-pool overhead, so the sharded numbers mean
    # something on multi-core hosts.
    config = FCMConfig()
    model = FCMModel(config)
    charts = [
        render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=config.chart_spec,
        )
        for record in records[: scale["num_queries"]]
    ]

    # ------------------------------------------------------------------ #
    # 1. Full single-process build over all N tables
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    full_service = _build_service(model, tables)
    full_build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------ #
    # 2. Incremental add of m tables to a live service of N - m
    # ------------------------------------------------------------------ #
    num_added = scale["num_added"]
    base_tables, added_tables = tables[:-num_added], tables[-num_added:]
    incremental_service = _build_service(FCMModel(config), base_tables)
    start = time.perf_counter()
    incremental_service.add_tables(added_tables)
    incremental_add_seconds = time.perf_counter() - start
    assert sorted(incremental_service.table_ids) == sorted(full_service.table_ids)

    # Parity spot check: the mutated service ranks like the full rebuild.
    probe = charts[0]
    a = incremental_service.query(probe, k=5)
    b = full_service.query(probe, k=5)
    assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
    assert max(abs(x - y) for (_, x), (_, y) in zip(a.ranking, b.ranking)) < 1e-8

    # ------------------------------------------------------------------ #
    # 3. Cold vs. warm query latency (LRU result cache)
    # ------------------------------------------------------------------ #
    cold, warm = [], []
    for chart in charts:
        start = time.perf_counter()
        full_service.query(chart, k=10)
        cold.append(time.perf_counter() - start)
        start = time.perf_counter()
        full_service.query(chart, k=10)
        warm.append(time.perf_counter() - start)
    cold_mean = float(np.mean(cold))
    warm_mean = float(np.mean(warm))

    # ------------------------------------------------------------------ #
    # 4. Sharded multi-process build
    # ------------------------------------------------------------------ #
    num_cpus = multiprocessing.cpu_count()
    single_cpu = (os.cpu_count() or 1) <= 1
    multicore_caveat = (
        "recorded on a 1-CPU host: process-level numbers measure overhead "
        "only, not a parallel speed-up"
    )
    num_workers = max(2, min(4, num_cpus))
    start = time.perf_counter()
    sharded_service = _build_service(FCMModel(config), tables, num_workers=num_workers)
    sharded_build_seconds = time.perf_counter() - start
    report = sharded_service.last_shard_report
    sharded_used_processes = bool(report is not None and report.used_processes)
    c = sharded_service.query(probe, k=5)
    assert [t for t, _ in c.ranking] == [t for t, _ in b.ranking]

    # ------------------------------------------------------------------ #
    # 5. Worker-pool query verification vs. in-process
    # ------------------------------------------------------------------ #
    pooled_service = SearchService(
        FCMModel(config),
        ServingConfig(
            lsh_config=LSHConfig(num_bits=10, hamming_radius=1),
            query_workers=num_workers,
            worker_timeout=SHARD_TIMEOUT_SECONDS,
        ),
    )
    pooled_service.build(tables)
    pooled = []
    for chart in charts:
        start = time.perf_counter()
        pooled_result = pooled_service.query(chart, k=10)
        pooled.append(time.perf_counter() - start)
        # Parity: the pool must rank exactly like the in-process service.
        reference = full_service.query(chart, k=10)
        assert [t for t, _ in pooled_result.ranking] == [
            t for t, _ in reference.ranking
        ]
        assert (
            max(
                abs(x - y)
                for (_, x), (_, y) in zip(pooled_result.ranking, reference.ranking)
            )
            < 1e-8
        )
    pooled_mean = float(np.mean(pooled))
    pool_used = (
        pooled_service.worker_fallback_reason is None
        and pooled_service.stats.worker_queries == len(charts)
    )
    pooled_service.close()

    # ------------------------------------------------------------------ #
    # 6. Append-only snapshot segment vs. full rewrite
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        base_path = Path(tmp) / "bench_index.npz"
        start = time.perf_counter()
        full_service.save_index(base_path)
        full_save_seconds = time.perf_counter() - start

        full_service.add_tables([held_out])  # the 1-table delta
        start = time.perf_counter()
        segment_path = full_service.save_index(base_path, append=True)
        append_seconds = time.perf_counter() - start
        start = time.perf_counter()
        full_service.save_index(Path(tmp) / "bench_rewrite.npz")
        rewrite_seconds = time.perf_counter() - start

        assert snapshot_segments(base_path) == [Path(segment_path)]
        base_bytes = base_path.stat().st_size
        segment_bytes = Path(segment_path).stat().st_size

    # ------------------------------------------------------------------ #
    # 7. Tracing overhead on the warm query path
    # ------------------------------------------------------------------ #
    # Two distinct costs of the observability layer on the hot (cache-hit)
    # path.  The *off* cost — what every query pays just because the call
    # sites are instrumented — cannot be measured macroscopically (there is
    # no uninstrumented build to compare against), so it is bounded by
    # microbenchmarking a disabled ``span()`` and scaling by the number of
    # spans a warm traced query actually records.  The *on* cost is the
    # direct off-vs-on warm latency delta, measured interleaved so clock
    # drift hits both sides equally.
    traced_service = SearchService(
        FCMModel(config),
        ServingConfig(
            lsh_config=LSHConfig(num_bits=10, hamming_radius=1), tracing=True
        ),
    )
    traced_service.build(tables)

    tracing_rounds = 30
    for chart in charts:  # prime both result caches
        incremental_service.query(chart, k=10)
        traced_service.query(chart, k=10)
    off_samples, on_samples = [], []
    for _ in range(tracing_rounds):
        for chart in charts:
            start = time.perf_counter()
            off_result = incremental_service.query(chart, k=10)
            off_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            on_result = traced_service.query(chart, k=10)
            on_samples.append(time.perf_counter() - start)
            # Tracing must never change what is served.
            assert [t for t, _ in on_result.ranking] == [
                t for t, _ in off_result.ranking
            ]
            assert (
                max(
                    abs(x - y)
                    for (_, x), (_, y) in zip(on_result.ranking, off_result.ranking)
                )
                < 1e-8
            )
    warm_off_mean = float(np.mean(off_samples))
    warm_on_mean = float(np.mean(on_samples))

    # ------------------------------------------------------------------ #
    # 8. Fused vs. graphed exhaustive verification
    # ------------------------------------------------------------------ #
    # Measured through the processor (no result cache — its key does not
    # include the fused flag, because both paths score identically).  The
    # first pass warms the scratch-buffer pool and the padded-batch cache;
    # the timed passes are the steady serving state.
    processor = full_service.processor
    processor.query(probe, k=10, strategy="none")
    processor.query(probe, k=10, strategy="none", fused=False)
    fused_samples, graphed_samples = [], []
    for chart in charts:
        start = time.perf_counter()
        fused_result = processor.query(chart, k=10, strategy="none")
        fused_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        graphed_result = processor.query(chart, k=10, strategy="none", fused=False)
        graphed_samples.append(time.perf_counter() - start)
        assert [t for t, _ in fused_result.ranking] == [
            t for t, _ in graphed_result.ranking
        ]
        assert (
            max(
                abs(x - y)
                for (_, x), (_, y) in zip(
                    fused_result.ranking, graphed_result.ranking
                )
            )
            < 1e-8
        )
    fused_mean = float(np.mean(fused_samples))
    graphed_mean = float(np.mean(graphed_samples))

    trace_tree = traced_service.last_trace
    assert trace_tree is not None

    def _num_spans(node):
        return 1 + sum(_num_spans(child) for child in node.get("children", ()))

    warm_spans = _num_spans(trace_tree)

    null_span_iters = 50_000
    start = time.perf_counter()
    for _ in range(null_span_iters):
        with span("bench_disabled"):
            pass
    null_span_seconds = (time.perf_counter() - start) / null_span_iters
    tracing_off_overhead = null_span_seconds * warm_spans / warm_off_mean
    tracing_on_overhead = (warm_on_mean - warm_off_mean) / warm_off_mean
    traced_service.close()

    results = {
        "benchmark": "serving_throughput",
        "scale": scale["name"],
        "num_tables": len(tables),
        "num_cpus": num_cpus,
        "os_cpu_count": os.cpu_count(),
        "single_cpu": single_cpu,
        "build": {
            "single_process_seconds": full_build_seconds,
            "sharded_seconds": sharded_build_seconds,
            "sharded_num_workers": num_workers,
            "sharded_used_processes": sharded_used_processes,
            "sharded_speedup": full_build_seconds / sharded_build_seconds,
            "caveat": multicore_caveat if single_cpu else None,
        },
        "incremental": {
            "tables_added": num_added,
            "add_seconds": incremental_add_seconds,
            "full_rebuild_seconds": full_build_seconds,
            "speedup_vs_rebuild": full_build_seconds / incremental_add_seconds,
        },
        "query": {
            "num_queries": len(charts),
            "cold_seconds_mean": cold_mean,
            "warm_seconds_mean": warm_mean,
            "warm_speedup": cold_mean / warm_mean if warm_mean > 0 else float("inf"),
        },
        "worker_pool": {
            "query_workers": num_workers,
            "used_processes": pool_used,
            "fallback_reason": pooled_service.worker_fallback_reason,
            "pooled_cold_seconds_mean": pooled_mean,
            "in_process_cold_seconds_mean": cold_mean,
            "speedup_vs_in_process": cold_mean / pooled_mean if pooled_mean else 0.0,
            "caveat": multicore_caveat if single_cpu else None,
        },
        "snapshot": {
            "num_tables_in_base": len(tables),
            "full_save_seconds": full_save_seconds,
            "append_one_table_seconds": append_seconds,
            "full_rewrite_seconds": rewrite_seconds,
            "append_speedup_vs_rewrite": rewrite_seconds / append_seconds
            if append_seconds
            else float("inf"),
            "base_bytes": base_bytes,
            "segment_bytes": segment_bytes,
        },
        "fused": {
            "num_queries": len(charts),
            "strategy": "none (exhaustive verification)",
            "fused_seconds_mean": fused_mean,
            "graphed_seconds_mean": graphed_mean,
            "fused_speedup": graphed_mean / fused_mean if fused_mean else 0.0,
        },
        "tracing": {
            "rounds": tracing_rounds,
            "num_queries": len(charts),
            "warm_off_seconds_mean": warm_off_mean,
            "warm_on_seconds_mean": warm_on_mean,
            "on_overhead_fraction": tracing_on_overhead,
            "null_span_seconds": null_span_seconds,
            "spans_per_warm_traced_query": warm_spans,
            "off_overhead_fraction": tracing_off_overhead,
        },
    }
    BENCH_JSON.write_text(json.dumps(stamp_results(results), indent=2) + "\n")

    lines = [
        f"Serving throughput ({scale['name']} scale, {len(tables)} tables, "
        f"{num_cpus} CPU{' — single-CPU host' if single_cpu else ''})",
        f"  full build (1 process):      {full_build_seconds:8.3f}s",
        f"  sharded build ({num_workers} workers):   {sharded_build_seconds:8.3f}s"
        f"  ({results['build']['sharded_speedup']:.2f}x"
        f"{'' if sharded_used_processes else ', in-process fallback'})",
        f"  incremental add ({num_added} tables): {incremental_add_seconds:8.3f}s"
        f"  ({results['incremental']['speedup_vs_rebuild']:.1f}x vs rebuild)",
        f"  query cold / warm:           {cold_mean * 1e3:8.2f}ms / {warm_mean * 1e3:.3f}ms"
        f"  ({results['query']['warm_speedup']:.0f}x)",
        f"  worker-pool query ({num_workers} proc): {pooled_mean * 1e3:8.2f}ms"
        f"  ({'pool' if pool_used else 'in-process fallback'})",
        f"  snapshot append / rewrite:   {append_seconds * 1e3:8.2f}ms / "
        f"{rewrite_seconds * 1e3:.2f}ms"
        f"  ({results['snapshot']['append_speedup_vs_rewrite']:.1f}x, "
        f"segment {segment_bytes / 1024:.0f} KiB vs base {base_bytes / 1024:.0f} KiB)",
        f"  tracing off / on (warm):     {warm_off_mean * 1e6:8.1f}us / "
        f"{warm_on_mean * 1e6:.1f}us"
        f"  (off-cost {tracing_off_overhead * 100:.3f}%, "
        f"{warm_spans} spans/query)",
        f"  exhaustive fused / graphed:  {fused_mean * 1e3:8.2f}ms / "
        f"{graphed_mean * 1e3:.2f}ms"
        f"  ({results['fused']['fused_speedup']:.1f}x)",
        f"  -> {BENCH_JSON.name}",
    ]
    if single_cpu:
        lines.insert(1, f"  NOTE: {multicore_caveat}")
    record_result("serving_throughput", "\n".join(lines))

    if not _skip_perf_assertions():
        # Adding m << N tables must beat re-encoding all N from scratch.
        assert incremental_add_seconds < full_build_seconds, results["incremental"]
        # A cache hit must beat re-verifying candidates with the matcher.
        assert warm_mean < cold_mean, results["query"]
        # A 1-table delta must beat rewriting the whole archive.
        assert append_seconds < rewrite_seconds, results["snapshot"]
        # Disabled instrumentation must be invisible on the hot path.
        assert tracing_off_overhead <= 0.05, results["tracing"]
        # The fused kernels must beat the graphed batched matcher.
        assert fused_mean < graphed_mean, results["fused"]
        if num_cpus > 1 and sharded_used_processes:
            # Only assert a win where one is physically possible.
            assert sharded_build_seconds < full_build_seconds, results["build"]
        if num_cpus > 1 and pool_used:
            assert pooled_mean < cold_mean, results["worker_pool"]
