"""Kernel-fusion microbenchmark: graphed vs ``no_grad`` vs fused, and the
int8 prefilter end to end.

Two measurements feed ``BENCH_kernels.json``:

* **matcher-forward cost per stage of de-overheading** — the same padded
  candidate batch scored three ways: the full autograd-graphed matcher
  forward (what training pays), the same Tensor ops under
  ``Module.inference()`` (no graph, still per-op Tensor allocation — the
  pre-fastpath serving cost), and the fused kernels of
  :mod:`repro.fcm.fastpath` (preallocated NumPy contractions, no Tensor
  machinery at all).  A score-parity check runs across all three.
* **exact vs int8-prefilter+rescore query latency** — end-to-end
  ``strategy="none"`` (exhaustive verification) queries through
  :class:`SearchService` at 10³ and 10⁴ tables (smoke mode: 10³ only),
  with the quantized pre-filter's top-k recall against exact scoring.

The model is the deterministic trained fixture
(:mod:`repro.bench.fixture`), so prefilter recall is measured on a
calibrated embedding space.  ``os.cpu_count()`` and a ``single_cpu`` flag
ride along in the JSON — all numbers here are single-process.

Results land in ``BENCH_kernels.json`` at the repository root and
``benchmarks/results/kernel_fusion.txt``.  The ≥5× fused-vs-graphed floor
at the 10⁴ point is asserted unless ``REPRO_SKIP_PERF_TESTS=1``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.fixture import trained_fixture_model
from repro.data import SynthConfig, synth_query_charts, synth_tables
from repro.fcm import FCMConfig
from repro.index import LSHConfig
from repro.nn import Tensor
from repro.serving import SearchService, ServingConfig

from provenance import stamp_results

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"

TOP_K = 10
#: Minimum warm speedup of the full fast path (fused kernels + quantized
#: pre-filter) over graphed exhaustive verification at the 10⁴-table point
#: (asserted at default scale, recorded always).  The fused kernels alone
#: shave constant factors; the order-of-magnitude step comes from the
#: pre-filter scoring the prebuilt pooled int8 pack instead of re-padding
#: and exactly scoring every candidate.
FAST_PATH_SPEEDUP_FLOOR = 5.0

#: Same sweep model as benchmarks/test_scale_sweep.py — numbers line up.
KERNEL_FCM = FCMConfig(
    embed_dim=32,
    num_heads=2,
    num_layers=1,
    data_segment_size=32,
    max_data_segments=8,
    beta=2,
)


def _skip_perf_assertions() -> bool:
    return os.environ.get("REPRO_SKIP_PERF_TESTS", "").lower() in ("1", "true", "yes")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke"


def _corpus(num_tables: int) -> SynthConfig:
    return SynthConfig(
        num_tables=num_tables,
        num_rows=256,
        max_columns=3,
        num_clusters=16,
        seed=11,
    )


def _write_json(results: dict) -> None:
    BENCH_JSON.write_text(json.dumps(stamp_results(results), indent=2) + "\n")


def test_kernel_fusion(record_result):
    model = trained_fixture_model(KERNEL_FCM)
    rounds = 2 if _smoke() else 5
    batch_tables = 128 if _smoke() else 256

    # ------------------------------------------------------------------ #
    # 1. One padded matcher batch, three execution strategies
    # ------------------------------------------------------------------ #
    corpus = _corpus(batch_tables)
    service = SearchService(
        model, config=ServingConfig(lsh_config=LSHConfig(num_bits=16, seed=0))
    )
    service.build(synth_tables(corpus))
    chart = synth_query_charts(corpus, 1)[0][1]
    scorer = service.scorer
    chart_input = scorer.prepare_query(chart)
    ids = scorer.indexed_table_ids
    with model.inference():
        chart_repr = model.encode_chart(chart_input)
    chart_data = np.ascontiguousarray(chart_repr.numpy())
    batch, segment_mask, column_mask = scorer._padded_batch(
        ids, chart_input.y_range
    )
    kernel = scorer._fused_kernel()
    assert kernel is not None

    def _graphed():
        return model.match_batch(
            chart_repr,
            Tensor(batch, dtype=model.config.numeric_dtype),
            segment_mask,
            column_mask,
        ).numpy()

    def _no_grad():
        with model.inference():
            return _graphed()

    def _fused():
        return kernel.score_batch(chart_data, batch, segment_mask, column_mask)

    variants = {"graphed": _graphed, "no_grad": _no_grad, "fused": _fused}
    outputs, timings = {}, {}
    for name, fn in variants.items():
        outputs[name] = np.atleast_1d(fn())  # warmup (and parity sample)
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        timings[name] = float(np.mean(samples))
    parity = max(
        float(np.max(np.abs(outputs["graphed"] - outputs["no_grad"]))),
        float(np.max(np.abs(outputs["graphed"] - outputs["fused"]))),
    )
    assert parity < 1e-8, f"stage outputs diverge: {parity:.3e}"

    stage_results = {
        "batch_tables": len(ids),
        "rounds": rounds,
        "graphed_seconds": timings["graphed"],
        "no_grad_seconds": timings["no_grad"],
        "fused_seconds": timings["fused"],
        "no_grad_speedup_vs_graphed": timings["graphed"] / timings["no_grad"],
        "fused_speedup_vs_no_grad": timings["no_grad"] / timings["fused"],
        "fused_speedup_vs_graphed": timings["graphed"] / timings["fused"],
        "score_parity_max_abs_diff": parity,
    }

    # ------------------------------------------------------------------ #
    # 2. Exact vs int8-prefilter+rescore, end to end
    # ------------------------------------------------------------------ #
    scales = [1_000] if _smoke() else [1_000, 10_000]
    num_queries = 2 if _smoke() else 3
    per_scale = []
    for num_tables in scales:
        corpus = _corpus(num_tables)
        build_service = SearchService(
            model, config=ServingConfig(lsh_config=LSHConfig(num_bits=16, seed=0))
        )
        build_service.build(synth_tables(corpus))
        # Encode once, then load the timing services from a v2 snapshot —
        # which also routes the prefilter through the q8 sidecar path.  No
        # result cache: its key omits the fused flag (the paths score
        # identically), so a cached reply would time nothing.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "kernels_index.npz"
            build_service.save_index(path, layout="v2")
            del build_service
            exact_service = SearchService.load_index(
                model,
                path,
                config=ServingConfig(
                    lsh_config=LSHConfig(num_bits=16, seed=0),
                    result_cache_size=0,
                ),
            )
            prefilter_service = SearchService.load_index(
                model,
                path,
                config=ServingConfig(
                    lsh_config=LSHConfig(num_bits=16, seed=0),
                    result_cache_size=0,
                    quantized_prefilter=True,
                ),
            )
        charts = [c for _, c in synth_query_charts(corpus, num_queries)]
        # Warm pools, pad caches and the quantized pack.
        exact_service.query(charts[0], k=TOP_K, strategy="none")
        exact_service.query(charts[0], k=TOP_K, strategy="none", fused=False)
        prefilter_service.query(charts[0], k=TOP_K, strategy="none")
        fused_s, graphed_s, prefilter_s, recalls = [], [], [], []
        for chart in charts:
            # Per-chart warm pass so neither timed variant pays the pad-cache
            # misses for this chart's y-range (the first-timed path would
            # otherwise absorb them all).
            exact_service.query(chart, k=TOP_K, strategy="none")
            prefilter_service.query(chart, k=TOP_K, strategy="none")
            start = time.perf_counter()
            exact = exact_service.query(chart, k=TOP_K, strategy="none")
            fused_s.append(time.perf_counter() - start)
            start = time.perf_counter()
            exact_service.query(chart, k=TOP_K, strategy="none", fused=False)
            graphed_s.append(time.perf_counter() - start)
            start = time.perf_counter()
            approx = prefilter_service.query(chart, k=TOP_K, strategy="none")
            prefilter_s.append(time.perf_counter() - start)
            exact_ids = {t for t, _ in exact.ranking}
            recalls.append(
                len(exact_ids & {t for t, _ in approx.ranking})
                / max(len(exact_ids), 1)
            )
        per_scale.append(
            {
                "num_tables": num_tables,
                "num_queries": len(charts),
                "prefilter_overscan": prefilter_service.config.prefilter_overscan,
                "exact_fused_seconds_mean": float(np.mean(fused_s)),
                "exact_graphed_seconds_mean": float(np.mean(graphed_s)),
                "prefilter_seconds_mean": float(np.mean(prefilter_s)),
                "fused_speedup_vs_graphed": float(
                    np.mean(graphed_s) / np.mean(fused_s)
                ),
                "prefilter_speedup_vs_graphed": float(
                    np.mean(graphed_s) / np.mean(prefilter_s)
                ),
                "prefilter_speedup_vs_fused": float(
                    np.mean(fused_s) / np.mean(prefilter_s)
                ),
                "prefilter_topk_recall": float(np.mean(recalls)),
            }
        )

    results = {
        "benchmark": "kernel_fusion",
        "mode": "smoke" if _smoke() else "default",
        "num_cpus": os.cpu_count(),
        "single_cpu": (os.cpu_count() or 1) <= 1,
        "top_k": TOP_K,
        "fast_path_speedup_floor": FAST_PATH_SPEEDUP_FLOOR,
        "model": "trained fixture (repro.bench.fixture, pinned seed)",
        "matcher_forward": stage_results,
        "end_to_end": per_scale,
    }
    _write_json(results)

    lines = [
        f"Kernel fusion ({results['mode']} mode, trained fixture)",
        (
            f"  matcher forward x{stage_results['batch_tables']}: graphed "
            f"{timings['graphed'] * 1e3:.1f}ms, no_grad "
            f"{timings['no_grad'] * 1e3:.1f}ms "
            f"({stage_results['no_grad_speedup_vs_graphed']:.1f}x), fused "
            f"{timings['fused'] * 1e3:.1f}ms "
            f"({stage_results['fused_speedup_vs_graphed']:.1f}x vs graphed, "
            f"{stage_results['fused_speedup_vs_no_grad']:.1f}x vs no_grad)"
        ),
    ]
    for entry in per_scale:
        lines.append(
            f"  n={entry['num_tables']:>6}: exhaustive fused/graphed "
            f"{entry['exact_fused_seconds_mean'] * 1e3:.1f}/"
            f"{entry['exact_graphed_seconds_mean'] * 1e3:.1f}ms "
            f"({entry['fused_speedup_vs_graphed']:.1f}x), prefilter "
            f"{entry['prefilter_seconds_mean'] * 1e3:.1f}ms "
            f"({entry['prefilter_speedup_vs_graphed']:.1f}x vs graphed, "
            f"recall {entry['prefilter_topk_recall']:.2f} "
            f"@ overscan {entry['prefilter_overscan']})"
        )
    lines.append(f"  -> {BENCH_JSON.name}")
    record_result("kernel_fusion", "\n".join(lines))

    if not _skip_perf_assertions():
        assert timings["fused"] < timings["no_grad"] < timings["graphed"], (
            stage_results
        )
        big = [e for e in per_scale if e["num_tables"] >= 10_000]
        if big:
            assert (
                big[-1]["prefilter_speedup_vs_graphed"] >= FAST_PATH_SPEEDUP_FLOOR
            ), big[-1]
