"""Synthetic-corpus scale sweep: build → snapshot → load → query at 10²…10⁵.

The paper's retrieval experiments run against repositories of ~10⁵ tables;
this harness walks a deterministic synthetic corpus (:mod:`repro.data.synth`)
up in decades and records, per scale:

* **build time** — encoding + indexing through :class:`SearchService.build`;
* **snapshot size** — the v2 base archive plus its flat ``.npy`` sidecars;
* **load time, copy vs. mmap** — a full ``load_index`` with materialised
  arrays against the zero-copy memory-mapped path, with a strict ranking
  parity check between the two services;
* **query latency** — hybrid-strategy top-k over rendered synthetic charts;
* **fused vs. graphed exhaustive verification** — warm ``strategy="none"``
  latency with the fused inference kernels (:mod:`repro.fcm.fastpath`)
  against the graphed batched path, plus the int8 quantized-prefilter
  latency and its top-k recall against exact scoring;
* **LSH bucket recall vs. exhaustive scoring** — the fraction of the
  exhaustive (``strategy="none"``) top-k that survives LSH candidate
  pruning, plus the candidate fraction.

The model is the deterministic *trained* checkpoint fixture
(:func:`repro.bench.fixture.trained_fixture_model`, pinned seed, cached in
``tests/fixtures/``), so candidate pruning and the prefilter act on a
calibrated embedding space and the recorded recalls mean something; the
controlled-embedding recall pin additionally lives in
``tests/test_index.py::TestLSHBucketRecall``.

A second benchmark measures what the mmap layout is *for*: the per-worker
private memory cost of a :class:`QueryWorkerPool` that opens the snapshot
mapping (``mmap_snapshot=``) against one that receives pickled encodings.
Memory is read as ``Private_Dirty`` from ``/proc/<pid>/smaps_rollup`` —
robust against fork copy-on-write inheritance and against file-backed mmap
pages being charged to ``Pss``/``Private_Clean`` — and the parent warms the
snapshot-reading path before forking, as a service that loaded its index
would have.  At the default scale the mmap delta must stay under 10% of the
copy delta (skipped under ``REPRO_SKIP_PERF_TESTS=1``).

Scales: ``REPRO_BENCH_SCALE=smoke`` → 10²; default → 10², 10³, 10⁴;
``REPRO_BENCH_SCALE=full`` additionally runs the 10⁵ point (minutes of
encode time and ~1 GB of snapshot — deliberately opt-in).  Results land in
``BENCH_scale.json`` at the repository root and
``benchmarks/results/scale_sweep.txt``.
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.fixture import trained_fixture_model
from repro.data import SynthConfig, synth_query_charts, synth_tables
from repro.fcm import FCMConfig, FCMModel
from repro.index import LSHConfig
from repro.serving import SearchService, ServingConfig
from repro.serving.persistence import snapshot_encodings
from repro.serving.workers import QueryWorkerPool

from provenance import stamp_results

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_scale.json"

#: Max |score difference| between copy-loaded and mmap-loaded rankings.
PARITY_TOL = 1e-8
#: Per-worker Private_Dirty under mmap must stay below this fraction of copy.
RSS_RATIO_CEILING = 0.10
TOP_K = 10

#: Sweep model: small enough that the 10⁴ point builds in seconds, real
#: enough (multi-head, segment attention) that encode cost scales like FCM.
SWEEP_FCM = FCMConfig(
    embed_dim=32,
    num_heads=2,
    num_layers=1,
    data_segment_size=32,
    max_data_segments=8,
    beta=2,
)

#: RSS-parity model: fat per-table encodings (33 segments × 64 dims), so the
#: measured ratio reflects array payload, not Python fixed costs.
RSS_FCM = FCMConfig(
    embed_dim=64,
    num_heads=4,
    num_layers=1,
    data_segment_size=32,
    max_data_segments=32,
    beta=2,
)


def _skip_perf_assertions() -> bool:
    return os.environ.get("REPRO_SKIP_PERF_TESTS", "").lower() in ("1", "true", "yes")


def _bench_mode() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default").lower()


def _sweep_scales() -> list:
    if _bench_mode() == "smoke":
        return [100]
    if _bench_mode() == "full":
        return [100, 1_000, 10_000, 100_000]
    return [100, 1_000, 10_000]


def _sweep_corpus(num_tables: int) -> SynthConfig:
    return SynthConfig(
        num_tables=num_tables,
        num_rows=256,
        max_columns=3,
        num_clusters=16,
        seed=11,
    )


def _lsh_config() -> LSHConfig:
    return LSHConfig(num_bits=16, hamming_radius=2, seed=0)


def _snapshot_bytes(path: Path) -> int:
    """Base archive + every sidecar generation next to it."""
    return sum(
        candidate.stat().st_size
        for candidate in path.parent.glob(path.stem + "*")
        if candidate.suffix in (".npz", ".npy")
    )


def _rankings_match(a, b) -> None:
    assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
    if a.ranking:
        worst = max(
            abs(x - y) for (_, x), (_, y) in zip(a.ranking, b.ranking)
        )
        assert worst <= PARITY_TOL, f"copy/mmap score divergence {worst:.3e}"


def _num_queries(num_tables: int) -> int:
    return 2 if num_tables >= 100_000 else 3


def test_scale_sweep(record_result):
    scales = _sweep_scales()
    per_scale = []
    lines = [f"Scale sweep ({_bench_mode()} mode, scales {scales})"]
    for num_tables in scales:
        corpus = _sweep_corpus(num_tables)
        tables = synth_tables(corpus)  # lazy generator, built per scale
        model = trained_fixture_model(SWEEP_FCM)
        # Shard verification on big repositories so the padded candidate
        # batch stays bounded; scores (hence rankings) are unchanged.
        num_shards = max(1, num_tables // 2_000)
        config = ServingConfig(
            lsh_config=_lsh_config(), num_query_shards=num_shards
        )
        service = SearchService(model, config=config)
        start = time.perf_counter()
        service.build(tables)
        build_seconds = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "scale_index.npz"
            start = time.perf_counter()
            service.save_index(path, layout="v2")
            save_seconds = time.perf_counter() - start
            snapshot_bytes = _snapshot_bytes(path)

            # Best of two attempts per mode: single-CPU load times here
            # show multi-× noise spikes (allocator/page-cache hiccups), and
            # one spike must not decide the copy-vs-mmap comparison.  A
            # collection before each attempt puts both modes on equal
            # generational-GC footing.
            def _timed_load(load_config):
                best, instance = None, None
                for _ in range(2):
                    gc.collect()
                    start = time.perf_counter()
                    candidate = SearchService.load_index(
                        model, path, config=load_config
                    )
                    elapsed = time.perf_counter() - start
                    if best is None or elapsed < best:
                        best = elapsed
                    if instance is not None:
                        instance.close()
                    instance = candidate
                return best, instance

            copy_load_seconds, copy_service = _timed_load(config)
            mmap_load_seconds, mmap_service = _timed_load(
                ServingConfig(
                    lsh_config=_lsh_config(),
                    num_query_shards=num_shards,
                    mmap_index=True,
                )
            )
            assert mmap_service.mmap_active

            charts = [
                chart
                for _, chart in synth_query_charts(corpus, _num_queries(num_tables))
            ]
            latencies, recalls, fractions = [], [], []
            for chart in charts:
                start = time.perf_counter()
                mmap_hybrid = mmap_service.query(chart, k=TOP_K)
                latencies.append(time.perf_counter() - start)
                copy_hybrid = copy_service.query(chart, k=TOP_K)
                _rankings_match(copy_hybrid, mmap_hybrid)

                exhaustive = copy_service.query(chart, k=TOP_K, strategy="none")
                pruned = copy_service.query(chart, k=TOP_K, strategy="lsh")
                exhaustive_ids = {t for t, _ in exhaustive.ranking}
                pruned_ids = {t for t, _ in pruned.ranking}
                recalls.append(
                    len(exhaustive_ids & pruned_ids) / max(len(exhaustive_ids), 1)
                )
                fractions.append(pruned.candidates / max(pruned.total_tables, 1))

            # Fused vs. graphed exhaustive verification (warm) and the int8
            # prefilter — on cache-less services, because the result cache
            # is keyed without the fused flag (the paths score identically).
            timing_service = SearchService.load_index(
                model,
                path,
                config=ServingConfig(
                    lsh_config=_lsh_config(),
                    num_query_shards=num_shards,
                    result_cache_size=0,
                ),
            )
            prefilter_service = SearchService.load_index(
                model,
                path,
                config=ServingConfig(
                    lsh_config=_lsh_config(),
                    num_query_shards=num_shards,
                    result_cache_size=0,
                    quantized_prefilter=True,
                ),
            )
            overscan = prefilter_service.config.prefilter_overscan
            timing_service.query(charts[0], k=TOP_K, strategy="none")  # warm
            timing_service.query(charts[0], k=TOP_K, strategy="none", fused=False)
            prefilter_service.query(charts[0], k=TOP_K, strategy="none")
            fused_s, graphed_s, prefilter_s, prefilter_recalls = [], [], [], []
            for chart in charts:
                # Per-chart warm pass: neither timed variant should absorb
                # this chart's pad-cache misses.
                timing_service.query(chart, k=TOP_K, strategy="none")
                prefilter_service.query(chart, k=TOP_K, strategy="none")
                start = time.perf_counter()
                exact = timing_service.query(chart, k=TOP_K, strategy="none")
                fused_s.append(time.perf_counter() - start)
                start = time.perf_counter()
                timing_service.query(chart, k=TOP_K, strategy="none", fused=False)
                graphed_s.append(time.perf_counter() - start)
                start = time.perf_counter()
                approx = prefilter_service.query(chart, k=TOP_K, strategy="none")
                prefilter_s.append(time.perf_counter() - start)
                exact_ids = {t for t, _ in exact.ranking}
                approx_ids = {t for t, _ in approx.ranking}
                prefilter_recalls.append(
                    len(exact_ids & approx_ids) / max(len(exact_ids), 1)
                )
            # Drop the mapping before the TemporaryDirectory is removed.
            mmap_service.close()
            del mmap_service

        entry = {
            "num_tables": num_tables,
            "build_seconds": build_seconds,
            "build_ms_per_table": build_seconds * 1e3 / num_tables,
            "snapshot_bytes": snapshot_bytes,
            "snapshot_bytes_per_table": snapshot_bytes / num_tables,
            "save_seconds": save_seconds,
            "copy_load_seconds": copy_load_seconds,
            "mmap_load_seconds": mmap_load_seconds,
            "num_query_shards": num_shards,
            "query_seconds_mean": float(np.mean(latencies)),
            "lsh_topk_recall_vs_exhaustive": float(np.mean(recalls)),
            "lsh_candidate_fraction": float(np.mean(fractions)),
            "exhaustive_fused_seconds_mean": float(np.mean(fused_s)),
            "exhaustive_graphed_seconds_mean": float(np.mean(graphed_s)),
            "fused_speedup": float(np.mean(graphed_s) / np.mean(fused_s)),
            "prefilter_seconds_mean": float(np.mean(prefilter_s)),
            "prefilter_speedup_vs_graphed": float(
                np.mean(graphed_s) / np.mean(prefilter_s)
            ),
            "prefilter_topk_recall": float(np.mean(prefilter_recalls)),
            "prefilter_overscan": overscan,
        }
        per_scale.append(entry)
        lines.append(
            f"  n={num_tables:>6}: build {build_seconds:7.2f}s "
            f"({entry['build_ms_per_table']:.2f}ms/t), "
            f"snapshot {snapshot_bytes / 1e6:7.1f}MB, "
            f"load copy/mmap {copy_load_seconds:.2f}s/{mmap_load_seconds:.2f}s, "
            f"query {entry['query_seconds_mean'] * 1e3:.1f}ms, "
            f"LSH recall {entry['lsh_topk_recall_vs_exhaustive']:.2f} "
            f"@ {entry['lsh_candidate_fraction']:.2f} candidates, "
            f"exhaustive fused/graphed "
            f"{entry['exhaustive_fused_seconds_mean'] * 1e3:.1f}/"
            f"{entry['exhaustive_graphed_seconds_mean'] * 1e3:.1f}ms "
            f"({entry['fused_speedup']:.1f}x), prefilter "
            f"{entry['prefilter_seconds_mean'] * 1e3:.1f}ms "
            f"(recall {entry['prefilter_topk_recall']:.2f})"
        )

    results = {
        "benchmark": "scale_sweep",
        "mode": _bench_mode(),
        "num_cpus": os.cpu_count(),
        "single_cpu": (os.cpu_count() or 1) <= 1,
        "top_k": TOP_K,
        "recall_caveat": (
            "trained fixture weights (repro.bench.fixture, pinned seed): "
            "recalls reflect a calibrated embedding space; the "
            "controlled-embedding recall floor is additionally pinned in "
            "tests/test_index.py::TestLSHBucketRecall and the prefilter "
            "recall floor in tests/test_fastpath.py"
        ),
        "scales": per_scale,
    }
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except ValueError:
            existing = {}
    existing.update(results)
    BENCH_JSON.write_text(json.dumps(stamp_results(existing), indent=2) + "\n")
    lines.append(f"  -> {BENCH_JSON.name}")
    record_result("scale_sweep", "\n".join(lines))

    # The mmap load defers array reads to first touch: at the largest scale
    # it must not be meaningfully slower than materialising every array up
    # front.  With the page cache warm (the snapshot was just written) both
    # loads are dominated by the same per-table restore work, so the honest
    # claim is parity-within-noise, not strict victory — a 25% margin
    # absorbs single-CPU timer jitter on what is otherwise a dead heat.
    if not _skip_perf_assertions() and per_scale[-1]["num_tables"] >= 10_000:
        assert (
            per_scale[-1]["mmap_load_seconds"]
            <= per_scale[-1]["copy_load_seconds"] * 1.25
        ), per_scale[-1]


# --------------------------------------------------------------------------- #
# Per-worker memory: mmap-shared snapshot vs. pickled copies
# --------------------------------------------------------------------------- #
def _worker_private_dirty_kb(pid: int) -> int:
    with open(f"/proc/{pid}/smaps_rollup") as handle:
        for line in handle:
            if line.startswith("Private_Dirty:"):
                return int(line.split()[1])
    raise OSError(f"no Private_Dirty line for pid {pid}")


def _mean_pool_dirty_kb(model, mmap_snapshot=None, sync_encodings=None) -> float:
    pool = QueryWorkerPool(
        model, 2, start_timeout=120.0, mmap_snapshot=mmap_snapshot
    )
    pool.start()
    try:
        if sync_encodings is not None:
            pool.sync(sync_encodings, [], timeout=600.0)
        time.sleep(0.5)  # let allocator/page state settle before sampling
        samples = [_worker_private_dirty_kb(pid) for pid in pool.worker_pids]
    finally:
        pool.close()
    return sum(samples) / len(samples)


def test_mmap_worker_memory_parity(record_result):
    if not Path("/proc/self/smaps_rollup").exists():
        pytest.skip("needs /proc/<pid>/smaps_rollup (Linux)")
    smoke = _bench_mode() == "smoke"
    num_tables = 200 if smoke else 2_000
    corpus = SynthConfig(
        num_tables=num_tables,
        num_rows=1024,
        max_columns=3,
        num_clusters=16,
        seed=11,
    )
    model = FCMModel(RSS_FCM)
    service = SearchService(model, config=ServingConfig(lsh_config=_lsh_config()))
    service.build(synth_tables(corpus))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rss_index.npz"
        service.save_index(path, layout="v2")
        payload_bytes = sum(
            int(e.representations.nbytes) + int(e.column_embeddings.nbytes)
            for e in (service.scorer.encoded_table(t) for t in service.table_ids)
        )
        # Warm the parent's snapshot-reading path before any fork, as a
        # service that loaded its index before starting workers would be —
        # otherwise the first mmap worker is charged the one-off cost of
        # cold np.load machinery and the comparison is corpus-independent
        # noise, not layout signal.
        del service
        snapshot_encodings(path, mmap=True)

        baseline_kb = _mean_pool_dirty_kb(model)
        mmap_kb = _mean_pool_dirty_kb(model, mmap_snapshot=path)
        encodings = snapshot_encodings(path)  # materialised, as sync pickles
        copy_kb = _mean_pool_dirty_kb(model, sync_encodings=encodings)

    mmap_delta_kb = max(mmap_kb - baseline_kb, 0.0)
    copy_delta_kb = max(copy_kb - baseline_kb, 0.0)
    ratio = mmap_delta_kb / copy_delta_kb if copy_delta_kb else float("inf")
    results = {
        "worker_memory": {
            "num_tables": num_tables,
            "query_workers": 2,
            "encoding_payload_bytes": payload_bytes,
            "baseline_private_dirty_kb": baseline_kb,
            "mmap_delta_kb_per_worker": mmap_delta_kb,
            "copy_delta_kb_per_worker": copy_delta_kb,
            "mmap_over_copy_ratio": ratio,
            "ratio_ceiling": RSS_RATIO_CEILING,
            "asserted": not (smoke or _skip_perf_assertions()),
        }
    }
    existing = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text())
        except ValueError:
            existing = {}
    existing.update(results)
    BENCH_JSON.write_text(json.dumps(stamp_results(existing), indent=2) + "\n")
    record_result(
        "scale_worker_memory",
        (
            f"Worker memory ({num_tables} tables, payload "
            f"{payload_bytes / 1e6:.0f}MB): per-worker Private_Dirty delta "
            f"mmap {mmap_delta_kb / 1024:.1f}MB vs copy "
            f"{copy_delta_kb / 1024:.1f}MB (ratio {ratio:.3f}, "
            f"ceiling {RSS_RATIO_CEILING})"
        ),
    )

    # Smoke scale is dominated by fixed per-process costs, not per-table
    # payload — record the numbers but only hold the ceiling at full scale.
    if not smoke and not _skip_perf_assertions():
        assert ratio < RSS_RATIO_CEILING, results["worker_memory"]
