"""Table V — FCM versus FCM−HCMAN (the matcher ablation).

Paper shape: removing the hierarchical cross-modal attention matcher costs
~23% prec@50 and the gap widens as the number of lines grows.
"""

from __future__ import annotations

from repro.bench import format_method_comparison, paper_numbers, run_table5
from repro.bench.experiments import LINE_BUCKETS


def test_table5_hcman_ablation(benchmark, bench_data, fcm_methods, record_result):
    result = benchmark.pedantic(
        run_table5,
        args=(fcm_methods["FCM"], fcm_methods["FCM-HCMAN"], bench_data),
        rounds=1,
        iterations=1,
    )

    sections = ("overall", *LINE_BUCKETS)
    text = format_method_comparison(
        result, ("FCM", "FCM-HCMAN"), section_order=sections,
        title="Table V — FCM vs FCM-HCMAN (measured)",
    )
    paper = format_method_comparison(
        paper_numbers.TABLE5, ("FCM", "FCM-HCMAN"), section_order=sections,
        title="Table V — paper-reported values",
    )
    record_result("table5", text + "\n\n" + paper)

    overall = result["overall"]
    assert overall["FCM"]["queries"] == len(bench_data.queries)
    assert overall["FCM-HCMAN"]["queries"] == len(bench_data.queries)
    assert 0.0 <= overall["FCM"]["prec"] <= 1.0
    assert 0.0 <= overall["FCM-HCMAN"]["prec"] <= 1.0
    # Paper shape: the full matcher is not worse than the averaged ablation
    # (allowing a small noise margin at this scale).
    assert overall["FCM"]["prec"] >= overall["FCM-HCMAN"]["prec"] - 0.05
