"""Table VI — impact of the data-aggregation layers (FCM vs FCM−DA).

Paper shape: the DA layers matter almost exclusively for DA-based queries
(+120% prec there) while non-DA queries are unaffected.
"""

from __future__ import annotations

from repro.bench import format_method_comparison, paper_numbers, run_table6


def test_table6_da_layers_ablation(benchmark, bench_data, fcm_methods, record_result):
    result = benchmark.pedantic(
        run_table6,
        args=(fcm_methods["FCM"], fcm_methods["FCM-DA"], bench_data),
        rounds=1,
        iterations=1,
    )

    sections = ("overall", "with_da", "without_da")
    text = format_method_comparison(
        result, ("FCM", "FCM-DA"), section_order=sections,
        title="Table VI — impact of the DA layers (measured)",
    )
    paper = format_method_comparison(
        paper_numbers.TABLE6, ("FCM", "FCM-DA"), section_order=sections,
        title="Table VI — paper-reported values",
    )
    record_result("table6", text + "\n\n" + paper)

    for section in sections:
        for name in ("FCM", "FCM-DA"):
            assert 0.0 <= result[section][name]["prec"] <= 1.0
    assert result["with_da"]["FCM"]["queries"] == len(bench_data.queries_with_aggregation(True))
    assert result["without_da"]["FCM"]["queries"] == len(
        bench_data.queries_with_aggregation(False)
    )
