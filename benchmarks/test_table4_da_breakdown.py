"""Table IV — DA-based query breakdown by operator and window size.

Paper shape: FCM handles sum/avg aggregations better than min/max, and
performance degrades once the aggregation window exceeds the data-segment
size P2.  With the scaled benchmark only a subset of (operator, window)
cells is populated, so the assertions are structural.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench import format_table, paper_numbers, run_table4
from repro.bench.experiments import AGGREGATION_OPERATORS_ORDER, WINDOW_BUCKETS


def test_table4_da_breakdown(benchmark, bench_data, fcm_methods, record_result):
    result = benchmark.pedantic(
        run_table4, args=(fcm_methods["FCM"], bench_data), rounds=1, iterations=1
    )

    headers = ["operator", *WINDOW_BUCKETS]
    rows = [
        [op, *[result[op][bucket] for bucket in WINDOW_BUCKETS]]
        for op in AGGREGATION_OPERATORS_ORDER
    ]
    paper_rows = [
        [op, *[paper_numbers.TABLE4[op][bucket] for bucket in WINDOW_BUCKETS]]
        for op in AGGREGATION_OPERATORS_ORDER
    ]
    text = format_table(headers, rows, title="Table IV — DA breakdown, prec@k (measured)")
    paper = format_table(headers, paper_rows, title="Table IV — paper-reported prec@50")
    record_result("table4", text + "\n\n" + paper)

    populated = [
        result[op][bucket]
        for op in AGGREGATION_OPERATORS_ORDER
        for bucket in WINDOW_BUCKETS
        if not math.isnan(result[op][bucket])
    ]
    assert populated, "no DA queries were evaluated"
    assert all(0.0 <= v <= 1.0 for v in populated)
