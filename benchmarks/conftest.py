"""Session-scoped fixtures shared by every benchmark target.

The expensive artefacts — the benchmark dataset and the trained methods — are
built once per pytest session and reused by every table/figure target.  The
experiment scale can be shrunk via the ``REPRO_BENCH_SCALE=smoke`` environment
variable (useful for CI or quick sanity runs); the default is the reporting
scale recorded in ``EXPERIMENTS.md``.

Each target times its experiment once (``benchmark.pedantic(..., rounds=1)``)
and writes its formatted result table to ``benchmarks/results/<name>.txt`` so
the numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    build_benchmark,
    default_scale,
    smoke_scale,
    train_baseline_methods,
    train_fcm_methods,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def scale():
    if os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "smoke":
        return smoke_scale()
    return default_scale()


@pytest.fixture(scope="session")
def bench_data(scale):
    """The benchmark of Sec. VII-A (corpus, queries, ground truth)."""
    return build_benchmark(scale.benchmark)


@pytest.fixture(scope="session")
def fcm_methods(bench_data, scale):
    """The three trained FCM variants (full model + both ablations)."""
    return train_fcm_methods(bench_data, scale, variants=("FCM", "FCM-HCMAN", "FCM-DA"))


@pytest.fixture(scope="session")
def baseline_methods(bench_data, scale):
    """The four trained/indexed baselines: CML, DE-LN, Opt-LN, Qetch*."""
    return train_baseline_methods(bench_data, scale)


@pytest.fixture(scope="session")
def all_methods(fcm_methods, baseline_methods):
    return {**baseline_methods, "FCM": fcm_methods["FCM"]}


@pytest.fixture(scope="session")
def record_result():
    """Write a formatted result table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record
