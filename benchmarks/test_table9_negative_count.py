"""Table IX / Appendix D — impact of the number of negative samples N−.

Paper shape: effectiveness improves from N−=1 to N−=3 and then plateaus
(slightly degrading for very large N−).  The scaled sweep trains a
short-budget FCM per N− value.
"""

from __future__ import annotations

from repro.bench import format_table, paper_numbers, run_table9

NEGATIVE_COUNTS = (1, 2, 3, 6)


def test_table9_number_of_negatives(benchmark, bench_data, scale, record_result):
    result = benchmark.pedantic(
        run_table9,
        args=(bench_data, scale),
        kwargs={"negative_counts": NEGATIVE_COUNTS},
        rounds=1,
        iterations=1,
    )

    headers = ["N-", "prec", "ndcg"]
    rows = [[n, result[n]["prec"], result[n]["ndcg"]] for n in NEGATIVE_COUNTS]
    paper_rows = [
        [n, paper_numbers.TABLE9[n]["prec"], paper_numbers.TABLE9[n]["ndcg"]]
        for n in NEGATIVE_COUNTS
    ]
    text = format_table(headers, rows, title="Table IX — impact of N- (measured)")
    paper = format_table(headers, paper_rows, title="Table IX — paper-reported values")
    record_result("table9", text + "\n\n" + paper)

    assert set(result) == set(NEGATIVE_COUNTS)
    for summary in result.values():
        assert 0.0 <= summary["prec"] <= 1.0
        assert 0.0 <= summary["ndcg"] <= 1.0
