"""Table VII — impact of the segment sizes P1 (line) and P2 (data).

Paper shape: effectiveness peaks at moderate segment sizes (P1=60, P2=64) and
drops when segments are either very small (no local shape left) or very large
(no fine-grained matching).  The scaled sweep uses a 3×3 grid around that
peak with a short training budget per cell.
"""

from __future__ import annotations

from repro.bench import format_grid, paper_numbers, run_table7

P1_VALUES = (30, 60, 120)
P2_VALUES = (32, 64, 128)


def test_table7_segment_size_sweep(benchmark, bench_data, scale, record_result):
    grid = benchmark.pedantic(
        run_table7,
        args=(bench_data, scale),
        kwargs={"p1_values": P1_VALUES, "p2_values": P2_VALUES},
        rounds=1,
        iterations=1,
    )

    text = format_grid(grid, title="Table VII — prec@k over the P1 x P2 grid (measured)")
    paper_subset = {
        key: value for key, value in paper_numbers.TABLE7.items()
        if key[0] in P1_VALUES and key[1] in P2_VALUES
    }
    paper = format_grid(paper_subset, title="Table VII — paper-reported prec@50 (same cells)")
    record_result("table7", text + "\n\n" + paper)

    assert set(grid) == {(p1, p2) for p1 in P1_VALUES for p2 in P2_VALUES}
    assert all(0.0 <= value <= 1.0 for value in grid.values())
